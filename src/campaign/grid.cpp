#include "campaign/grid.hpp"

#include <sstream>
#include <unordered_set>

#include "core/error.hpp"
#include "core/table.hpp"

namespace otis::campaign {

std::string cell_id(const TopologySpec& topology,
                    sim::Arbitration arbitration, const TrafficSpec& traffic,
                    double load, std::int64_t wavelengths,
                    sim::RouteTable routes, const sim::TimingConfig& timing,
                    const WorkloadSpec& workload, std::uint64_t seed) {
  std::ostringstream os;
  os << topology.label() << "|" << sim::arbitration_name(arbitration) << "|"
     << traffic.label() << "|load="
     << core::format_double(load, 6) << "|w=" << wavelengths
     << "|routes=" << sim::route_table_name(routes)
     << "|timing=" << timing.label()
     << "|workload=" << workload.label() << "|seed=" << seed;
  return os.str();
}

std::vector<CampaignCell> expand_grid(const CampaignSpec& spec) {
  spec.validate();
  std::vector<CampaignCell> cells;
  cells.reserve(static_cast<std::size_t>(spec.cell_count()));
  std::int64_t index = 0;
  for (std::size_t t = 0; t < spec.topologies.size(); ++t) {
    // Execution knobs are per topology: spec defaults, then every
    // matching override layered in order (later entries win per field).
    // A pinned route table replaces the whole routes axis for that
    // topology -- its cells collapse to the one pinned value.
    sim::Engine engine = spec.engine;
    int engine_threads = spec.engine_threads;
    std::vector<sim::RouteTable> route_axis = spec.route_tables;
    for (const CellOverride& override : spec.overrides) {
      if (override.topology != spec.topologies[t].label()) {
        continue;
      }
      if (override.engine) {
        engine = *override.engine;
      }
      if (override.engine_threads) {
        engine_threads = *override.engine_threads;
      }
      if (override.route_table) {
        route_axis.assign(1, *override.route_table);
      }
    }
    for (sim::Arbitration arbitration : spec.arbitrations) {
      for (const TrafficSpec& traffic : spec.traffics) {
        for (double load : spec.loads) {
          for (std::int64_t w : spec.wavelengths) {
            for (sim::RouteTable routes : route_axis) {
              for (const sim::TimingConfig& timing : spec.timings) {
                for (const WorkloadSpec& workload : spec.workloads) {
                  for (std::uint64_t seed : spec.seeds) {
                    CampaignCell cell;
                    cell.index = index++;
                    cell.id =
                        cell_id(spec.topologies[t], arbitration, traffic,
                                load, w, routes, timing, workload, seed);
                    cell.topology = t;
                    cell.arbitration = arbitration;
                    cell.traffic = traffic;
                    cell.load = load;
                    cell.wavelengths = w;
                    cell.routes = routes;
                    cell.timing = timing;
                    cell.workload = workload;
                    cell.seed = seed;
                    // Sub-slot skew needs timed events: such cells run
                    // on an async engine whatever the spec-level engine
                    // is -- the parallel one when the spec asked for a
                    // parallel engine, so skewed cells stop serializing
                    // sharded campaigns.
                    cell.engine =
                        timing.is_slot_aligned()
                            ? engine
                            : (engine == sim::Engine::kSharded ||
                                       engine == sim::Engine::kAsyncSharded
                                   ? sim::Engine::kAsyncSharded
                                   : sim::Engine::kAsync);
                    cell.engine_threads = engine_threads;
                    cells.push_back(std::move(cell));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  // IDs are what the manifest keys on; a collision (e.g. loads closer
  // than the ID's 6-decimal formatting, or a repeated axis value) would
  // make resume silently drop cells, so refuse the grid instead.
  std::unordered_set<std::string> ids;
  ids.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    OTIS_REQUIRE(ids.insert(cell.id).second,
                 "expand_grid: duplicate cell ID " + cell.id +
                     " (axis values too close or repeated)");
  }
  return cells;
}

}  // namespace otis::campaign
