# Empty dependencies file for test_hypergraph.
# This may be replaced when dependencies are built.
