// Unit tests for the digraph layer: CSR construction, distances,
// connectivity, Eulerian/Hamiltonian detection, line digraph operator and
// isomorphism checking.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/isomorphism.hpp"
#include "graph/line_digraph.hpp"

namespace otis::graph {
namespace {

Digraph directed_cycle(Vertex n) {
  std::vector<Arc> arcs;
  for (Vertex v = 0; v < n; ++v) {
    arcs.push_back(Arc{v, (v + 1) % n});
  }
  return Digraph::from_arcs(n, arcs);
}

TEST(Digraph, EmptyGraph) {
  Digraph g(5);
  EXPECT_EQ(g.order(), 5);
  EXPECT_EQ(g.size(), 0);
  EXPECT_EQ(g.out_degree(0), 0);
  EXPECT_EQ(g.in_degree(4), 0);
}

TEST(Digraph, FromArcsPreservesMultiplicityAndOrder) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {0, 1}, {2, 0}, {0, 2}});
  EXPECT_EQ(g.size(), 4);
  EXPECT_EQ(g.arc_multiplicity(0, 1), 2);
  EXPECT_EQ(g.arc_multiplicity(0, 2), 1);
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.in_degree(1), 2);
  // CSR order: arcs of tail 0 in insertion order.
  auto n0 = g.out_neighbors(0);
  EXPECT_EQ(n0, (std::vector<Vertex>{1, 1, 2}));
}

TEST(Digraph, TailHeadRoundTrip) {
  Digraph g = Digraph::from_arcs(4, {{1, 2}, {0, 3}, {1, 0}, {3, 3}});
  for (ArcId a = 0; a < g.size(); ++a) {
    const Arc arc = g.arc(a);
    EXPECT_GE(arc.tail, 0);
    EXPECT_LT(arc.tail, 4);
    bool found = false;
    for (ArcId b = g.out_begin(arc.tail); b < g.out_end(arc.tail); ++b) {
      if (b == a) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Digraph, LoopsCounted) {
  Digraph g = Digraph::from_arcs(3, {{0, 0}, {1, 1}, {1, 2}});
  EXPECT_EQ(g.loop_count(), 2);
}

TEST(Digraph, RejectsOutOfRangeVertices) {
  EXPECT_THROW(Digraph::from_arcs(2, {{0, 2}}), core::Error);
  EXPECT_THROW(Digraph::from_arcs(2, {{-1, 0}}), core::Error);
}

TEST(Digraph, SameArcsIgnoresInsertionOrder) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {1, 2}, {2, 0}});
  Digraph h = Digraph::from_arcs(3, {{2, 0}, {0, 1}, {1, 2}});
  EXPECT_TRUE(g.same_arcs(h));
  Digraph k = Digraph::from_arcs(3, {{0, 1}, {1, 2}, {2, 1}});
  EXPECT_FALSE(g.same_arcs(k));
}

TEST(Digraph, IsRegular) {
  EXPECT_TRUE(directed_cycle(5).is_regular(1));
  EXPECT_FALSE(directed_cycle(5).is_regular(2));
}

TEST(Algorithms, BfsDistancesOnCycle) {
  Digraph g = directed_cycle(6);
  auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(Algorithms, BfsUnreachableMarked) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}});
  auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Algorithms, ShortestPathEndpointsIncluded) {
  Digraph g = directed_cycle(4);
  auto path = shortest_path(g, 1, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<Vertex>{1, 2, 3}));
  EXPECT_TRUE(is_walk(g, *path));
}

TEST(Algorithms, ShortestPathToSelfIsTrivial) {
  Digraph g = directed_cycle(4);
  auto path = shortest_path(g, 2, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(Algorithms, ShortestPathAvoidingBlocksVertices) {
  // Diamond: 0 -> {1, 2} -> 3.
  Digraph g = Digraph::from_arcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto unrestricted = shortest_path(g, 0, 3);
  ASSERT_TRUE(unrestricted.has_value());
  auto avoiding = shortest_path_avoiding(g, 0, 3, {1});
  ASSERT_TRUE(avoiding.has_value());
  EXPECT_EQ(*avoiding, (std::vector<Vertex>{0, 2, 3}));
  auto blocked = shortest_path_avoiding(g, 0, 3, {1, 2});
  EXPECT_FALSE(blocked.has_value());
}

TEST(Algorithms, DistanceStatsOnCycle) {
  DistanceStats stats = distance_stats(directed_cycle(5));
  EXPECT_TRUE(stats.strongly_connected);
  EXPECT_EQ(stats.diameter, 4);
  EXPECT_EQ(stats.radius, 4);
  EXPECT_DOUBLE_EQ(stats.mean_distance, (1 + 2 + 3 + 4) / 4.0);
}

TEST(Algorithms, DiameterThrowsWhenDisconnected) {
  Digraph g = Digraph::from_arcs(2, {{0, 1}});
  EXPECT_THROW((void)diameter(g), core::Error);
}

TEST(Algorithms, StrongConnectivity) {
  EXPECT_TRUE(is_strongly_connected(directed_cycle(7)));
  EXPECT_FALSE(is_strongly_connected(Digraph::from_arcs(2, {{0, 1}})));
  EXPECT_TRUE(is_strongly_connected(Digraph(0)));
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
}

TEST(Algorithms, EulerianCycleGraph) {
  EXPECT_TRUE(is_eulerian(directed_cycle(4)));
  // Unbalanced vertex breaks it.
  EXPECT_FALSE(is_eulerian(Digraph::from_arcs(3, {{0, 1}, {1, 2}, {2, 0},
                                                  {0, 2}})));
}

TEST(Algorithms, HamiltonianCycleFoundOnCycle) {
  auto cycle = find_hamiltonian_cycle(directed_cycle(6));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 6u);
}

TEST(Algorithms, HamiltonianAbsentOnPath) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(find_hamiltonian_cycle(g).has_value());
}

TEST(Algorithms, GirthIgnoringLoops) {
  Digraph g = Digraph::from_arcs(4, {{0, 0}, {0, 1}, {1, 2}, {2, 0}, {2, 3},
                                     {3, 2}});
  auto girth = girth_ignoring_loops(g);
  ASSERT_TRUE(girth.has_value());
  EXPECT_EQ(*girth, 2);  // 2 <-> 3
}

TEST(Algorithms, GirthOfAcyclicIsNull) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(girth_ignoring_loops(g).has_value());
}

TEST(LineDigraph, CycleIsInvariant) {
  // L(C_n) is C_n again.
  Digraph g = directed_cycle(5);
  LineDigraph line = line_digraph(g);
  EXPECT_EQ(line.graph.order(), 5);
  EXPECT_EQ(line.graph.size(), 5);
  EXPECT_TRUE(find_isomorphism(g, line.graph).has_value());
}

TEST(LineDigraph, ArcCountFormula) {
  // |A(L(G))| = sum_v indeg(v) * outdeg(v).
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
  LineDigraph line = line_digraph(g);
  EXPECT_EQ(line.graph.order(), 4);
  std::int64_t expected = 0;
  for (Vertex v = 0; v < g.order(); ++v) {
    expected += g.in_degree(v) * g.out_degree(v);
  }
  EXPECT_EQ(line.graph.size(), expected);
}

TEST(LineDigraph, ArcOfTracksOriginalArcs) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {1, 2}});
  LineDigraph line = line_digraph(g);
  ASSERT_EQ(line.arc_of.size(), 2u);
  EXPECT_EQ(line.arc_of[0], (Arc{0, 1}));
  EXPECT_EQ(line.arc_of[1], (Arc{1, 2}));
  EXPECT_TRUE(line.graph.has_arc(0, 1));
}

TEST(LineDigraph, IteratedMatchesRepeatedApplication) {
  Digraph g = directed_cycle(4);
  Digraph twice = iterated_line_digraph(g, 2);
  Digraph manual = line_digraph(line_digraph(g).graph).graph;
  EXPECT_TRUE(twice.same_arcs(manual));
}

TEST(Isomorphism, VerifyAcceptsIdentity) {
  Digraph g = directed_cycle(4);
  EXPECT_TRUE(verify_isomorphism(g, g, {0, 1, 2, 3}));
}

TEST(Isomorphism, VerifyAcceptsRotation) {
  Digraph g = directed_cycle(4);
  EXPECT_TRUE(verify_isomorphism(g, g, {1, 2, 3, 0}));
}

TEST(Isomorphism, VerifyRejectsNonBijection) {
  Digraph g = directed_cycle(3);
  EXPECT_FALSE(verify_isomorphism(g, g, {0, 0, 1}));
}

TEST(Isomorphism, VerifyRejectsWrongMap) {
  Digraph g = Digraph::from_arcs(3, {{0, 1}, {1, 2}, {2, 0}});
  Digraph h = Digraph::from_arcs(3, {{0, 2}, {2, 1}, {1, 0}});
  // h is the reversed cycle; the identity is NOT an isomorphism...
  EXPECT_FALSE(verify_isomorphism(g, h, {0, 1, 2}));
  // ...but swapping 1 and 2 is.
  EXPECT_TRUE(verify_isomorphism(g, h, {0, 2, 1}));
}

TEST(Isomorphism, FindDistinguishesCycleLengths) {
  Digraph two_triangles = Digraph::from_arcs(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  Digraph hexagon = directed_cycle(6);
  EXPECT_FALSE(find_isomorphism(two_triangles, hexagon).has_value());
}

TEST(Isomorphism, FindProducesVerifiableWitness) {
  Digraph g = Digraph::from_arcs(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  // Relabel vertices by the permutation (0 1 2 3) -> (2 3 0 1).
  Digraph h = Digraph::from_arcs(4, {{2, 3}, {3, 0}, {0, 1}, {1, 2}, {2, 0}});
  auto witness = find_isomorphism(g, h);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(verify_isomorphism(g, h, *witness));
}

}  // namespace
}  // namespace otis::graph
