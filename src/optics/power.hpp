#pragma once
/// \file power.hpp
/// Optical power budget model.
///
/// The paper leans on the technology argument that OPS couplers are
/// passive (no power source) and low loss [14, 20], and that free-space
/// optics beat electrical wiring on power [12]. The architectural
/// consequence is a feasibility constraint: a degree-s beam-splitter
/// divides the signal s ways, costing 10*log10(s) dB, so the stacking
/// factor s of a multi-OPS network is bounded by the link budget. This
/// model makes that bound computable (used by bench/perf3_power_budget).
///
/// Default constants are representative mid-1990s free-space values
/// (VCSEL arrays ~0 dBm, PIN receivers ~ -30 dBm sensitivity at Gb/s,
/// fractions of a dB per passive element); they are parameters, not
/// claims.

#include <cstdint>

namespace otis::optics {

/// Per-component insertion losses in dB (excess loss only; the 1/s
/// splitting loss of a beam-splitter is added separately).
struct LossModel {
  double transmitter_coupling_db = 0.5;  ///< laser -> system coupling
  double multiplexer_db = 1.0;           ///< OPS input half
  double splitter_excess_db = 0.5;       ///< OPS output half, excess only
  double otis_lens_pair_db = 1.0;        ///< two lenslet planes + path
  double fiber_db = 0.2;                 ///< short guided link
  double receiver_coupling_db = 0.5;     ///< system -> detector coupling

  /// Splitting loss of a 1:s beam-splitter: 10*log10(s) + excess.
  [[nodiscard]] double beam_splitter_db(std::int64_t fan_out) const;
};

/// End-to-end link budget.
struct PowerBudget {
  double transmit_power_dbm = 0.0;        ///< laser output
  double receiver_sensitivity_dbm = -30;  ///< detector threshold
  double system_margin_db = 3.0;          ///< safety margin

  /// Maximum tolerable path loss: P_tx - (S_rx + margin).
  [[nodiscard]] double loss_allowance_db() const {
    return transmit_power_dbm - receiver_sensitivity_dbm - system_margin_db;
  }

  /// True if a path with the given loss closes the link.
  [[nodiscard]] bool feasible(double path_loss_db) const {
    return path_loss_db <= loss_allowance_db();
  }
};

/// Largest OPS degree s such that a canonical multi-OPS hop
/// (transmitter -> group OTIS -> multiplexer -> interconnect OTIS ->
/// 1:s beam-splitter -> group OTIS -> receiver) still closes the link.
/// Returns 0 if even s = 1 fails.
[[nodiscard]] std::int64_t max_stacking_factor(const PowerBudget& budget,
                                               const LossModel& model);

/// The loss of that canonical multi-OPS hop for a given s.
[[nodiscard]] double canonical_hop_loss_db(const LossModel& model,
                                           std::int64_t s);

}  // namespace otis::optics
