// Async timing layer tests:
//  - the calendar queue orders events exactly like the priority-queue
//    EventQueue (time order, FIFO tie-break, past-scheduling rejection);
//  - TimingConfig/TimingModel compile the skew profiles correctly
//    (constant, per-level, trace-derived);
//  - THE parity suite: the AsyncEngine with a slot-aligned (all-zero)
//    timing model is bit-identical to the phased engine on SK, SII and
//    POPS, with dense AND compressed route tables, for every arbitration
//    policy, including drain, finite queues, WDM and coupler successes;
//  - skewed runs behave physically: tuning delay raises latency,
//    propagation skew defers deliveries, guard bands cost a slot, and
//    skewed runs stay deterministic in the seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "designs/builders.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/timing_model.hpp"
#include "sim/traffic.hpp"

namespace otis::sim {
namespace {

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

constexpr Arbitration kAllPolicies[] = {Arbitration::kTokenRoundRobin,
                                        Arbitration::kRandomWinner,
                                        Arbitration::kSlottedAloha};

// ------------------------------------------------------- calendar queue

TEST(CalendarQueueTest, PopsInTimeOrderAcrossBucketsAndYears) {
  CalendarQueue<int> q(/*bucket_width=*/4, /*initial_buckets=*/4);
  // Times spanning several calendar years (bucket wrap-arounds).
  const std::vector<SimTime> times = {37, 2, 18, 5, 90, 2, 41, 0, 17};
  for (std::size_t i = 0; i < times.size(); ++i) {
    q.push(times[i], static_cast<int>(i));
  }
  EXPECT_EQ(q.pending(), times.size());
  SimTime last = -1;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const auto entry = q.pop();
    if (!first && entry.time == last) {
      EXPECT_GT(entry.seq, last_seq) << "FIFO tie-break at equal times";
    }
    EXPECT_GE(entry.time, last);
    last = entry.time;
    last_seq = entry.seq;
    first = false;
  }
  EXPECT_EQ(q.now(), 90);
}

TEST(CalendarQueueTest, MatchesEventQueueOrderOnRandomWorkload) {
  // Differential test: same pushes, identical pop order as the
  // priority-queue EventQueue semantics (time, then schedule order).
  CalendarQueue<int> calendar(kTicksPerSlot);
  struct Ref {
    SimTime time;
    int id;
  };
  std::vector<Ref> reference;
  core::Rng rng(99);
  SimTime now = 0;
  int id = 0;
  for (int round = 0; round < 2000; ++round) {
    const SimTime at =
        now + static_cast<SimTime>(rng.uniform(20 * kTicksPerSlot));
    calendar.push(at, id);
    reference.push_back(Ref{at, id});
    ++id;
    if (round % 3 == 0 && !calendar.empty()) {
      const auto entry = calendar.pop();
      // Reference: earliest (time, insertion order) entry.
      std::size_t best = 0;
      for (std::size_t i = 1; i < reference.size(); ++i) {
        if (reference[i].time < reference[best].time) {
          best = i;
        }
      }
      EXPECT_EQ(entry.time, reference[best].time);
      EXPECT_EQ(entry.payload, reference[best].id);
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(best));
      now = entry.time;
    }
  }
  while (!calendar.empty()) {
    const auto entry = calendar.pop();
    std::size_t best = 0;
    for (std::size_t i = 1; i < reference.size(); ++i) {
      if (reference[i].time < reference[best].time) {
        best = i;
      }
    }
    EXPECT_EQ(entry.payload, reference[best].id);
    reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(best));
  }
  EXPECT_TRUE(reference.empty());
}

TEST(CalendarQueueTest, RejectsPastScheduling) {
  CalendarQueue<int> q;
  q.push(5 * kTicksPerSlot, 1);
  (void)q.pop();
  EXPECT_EQ(q.now(), 5 * kTicksPerSlot);
  EXPECT_THROW(q.push(kTicksPerSlot, 2), core::Error);
}

// --------------------------------------------------------- timing model

TEST(TimingConfigTest, LabelsAndValidation) {
  TimingConfig none;
  EXPECT_TRUE(none.is_slot_aligned());
  EXPECT_EQ(none.label(), "none");
  EXPECT_NO_THROW(none.validate());

  TimingConfig constant;
  constant.profile = SkewProfile::kConstant;
  constant.tuning_ticks = 256;
  constant.propagation_ticks = 128;
  EXPECT_FALSE(constant.is_slot_aligned());
  EXPECT_EQ(constant.label(), "const(t256,p128,g0)");
  EXPECT_NO_THROW(constant.validate());

  TimingConfig level = constant;
  level.profile = SkewProfile::kPerLevel;
  level.level_skew_ticks = 64;
  EXPECT_EQ(level.label(), "level(t256,p128,l64,g0)");
  EXPECT_NO_THROW(level.validate());

  TimingConfig bad_none;
  bad_none.tuning_ticks = 1;
  EXPECT_THROW(bad_none.validate(), core::Error);
  TimingConfig negative = constant;
  negative.propagation_ticks = -1;
  EXPECT_THROW(negative.validate(), core::Error);
  TimingConfig wide_guard = constant;
  wide_guard.guard_ticks = kTicksPerSlot;
  EXPECT_THROW(wide_guard.validate(), core::Error);
  TimingConfig stray_level = constant;
  stray_level.level_skew_ticks = 8;
  EXPECT_THROW(stray_level.validate(), core::Error);
}

TEST(TimingModelTest, CompilesConstantAndPerLevelProfiles) {
  hypergraph::StackKautz sk(3, 2, 2);
  const auto& stack = sk.stack();

  TimingConfig constant;
  constant.profile = SkewProfile::kConstant;
  constant.tuning_ticks = 100;
  constant.propagation_ticks = 40;
  const TimingModel uniform = TimingModel::compile(stack, constant);
  EXPECT_FALSE(uniform.slot_aligned());
  EXPECT_EQ(uniform.coupler_count(),
            stack.hypergraph().hyperarc_count());
  for (hypergraph::HyperarcId h = 0; h < uniform.coupler_count(); ++h) {
    EXPECT_EQ(uniform.tuning(h), 100);
    EXPECT_EQ(uniform.propagation(h), 40);
  }

  TimingConfig leveled = constant;
  leveled.profile = SkewProfile::kPerLevel;
  leveled.level_skew_ticks = 10;
  const TimingModel skewed = TimingModel::compile(stack, leveled);
  bool found_skew = false;
  SimTime largest = 0;
  for (hypergraph::HyperarcId h = 0; h < skewed.coupler_count(); ++h) {
    const graph::ArcId arc = stack.arc_of_coupler(h);
    const SimTime level =
        std::abs(stack.base().head(arc) - stack.base().tail(arc));
    EXPECT_EQ(skewed.propagation(h), 40 + 10 * level);
    largest = std::max(largest, skewed.propagation(h));
    found_skew |= skewed.propagation(h) != skewed.propagation(0);
  }
  EXPECT_TRUE(found_skew) << "per-level skew must differentiate couplers";
  EXPECT_EQ(skewed.max_propagation(), largest);

  const TimingModel zero = TimingModel::compile(stack, TimingConfig{});
  EXPECT_TRUE(zero.slot_aligned());
  EXPECT_EQ(zero.max_propagation(), 0);
}

TEST(TimingModelTest, TraceDerivedSkewFollowsTheOptics) {
  // SK(2,2,2): the optical design exists (Fig. 12 construction); every
  // coupler's delay comes from its worst traced component chain.
  hypergraph::StackKautz sk(2, 2, 2);
  const designs::NetworkDesign design = designs::stack_kautz_design(2, 2, 2);
  const TimingModel model =
      TimingModel::from_trace(sk.stack(), design, /*ticks_per_component=*/8.0,
                              /*tuning_ticks=*/16);
  EXPECT_FALSE(model.slot_aligned());
  EXPECT_EQ(model.coupler_count(), sk.coupler_count());
  for (hypergraph::HyperarcId h = 0; h < model.coupler_count(); ++h) {
    EXPECT_EQ(model.tuning(h), 16);
    // Every lightpath crosses at least tx -> ... -> rx components.
    EXPECT_GE(model.propagation(h), 3 * 8);
  }
  // Doubling the per-component scale doubles every delay.
  const TimingModel doubled =
      TimingModel::from_trace(sk.stack(), design, 16.0, 16);
  for (hypergraph::HyperarcId h = 0; h < model.coupler_count(); ++h) {
    EXPECT_EQ(doubled.propagation(h), 2 * model.propagation(h));
  }
}

// --------------------------------------------------- zero-delay parity

enum class Table { kDense, kCompressed };

template <class Network, class CompileDense, class CompileCompressed>
RunMetrics run_case(Network& network, CompileDense compile_dense,
                    CompileCompressed compile_compressed,
                    std::int64_t processors, Engine engine, Arbitration arb,
                    Table table, const TimingConfig& timing,
                    std::vector<std::int64_t>* successes,
                    std::int64_t queue_capacity = 0,
                    std::int64_t wavelengths = 1, bool drain = false) {
  SimConfig config;
  config.arbitration = arb;
  config.warmup_slots = 40;
  config.measure_slots = 400;
  config.seed = 23;
  config.engine = engine;
  config.queue_capacity = queue_capacity;
  config.wavelengths = wavelengths;
  config.drain = drain;
  config.timing = timing;
  auto traffic = std::make_unique<UniformTraffic>(processors, 0.45);
  RunMetrics metrics;
  if (table == Table::kDense) {
    OpsNetworkSim sim(network.stack(), compile_dense(), std::move(traffic),
                      config);
    metrics = sim.run();
    if (successes != nullptr) {
      *successes = sim.coupler_successes();
    }
  } else {
    OpsNetworkSim sim(network.stack(), compile_compressed(),
                      std::move(traffic), config);
    metrics = sim.run();
    if (successes != nullptr) {
      *successes = sim.coupler_successes();
    }
  }
  return metrics;
}

/// Runs (engine, arb, table, timing) on one of the three paper
/// topologies by index: 0 = SK(4,3,2), 1 = POPS(6,12), 2 = SII(4,2,12).
RunMetrics run_topology(int topology, Engine engine, Arbitration arb,
                        Table table, const TimingConfig& timing = {},
                        std::vector<std::int64_t>* successes = nullptr,
                        std::int64_t queue_capacity = 0,
                        std::int64_t wavelengths = 1, bool drain = false) {
  switch (topology) {
    case 0: {
      hypergraph::StackKautz sk(4, 3, 2);
      return run_case(
          sk, [&] { return routing::compile_stack_kautz_routes(sk); },
          [&] { return routing::compress_stack_kautz_routes(sk); },
          sk.processor_count(), engine, arb, table, timing, successes,
          queue_capacity, wavelengths, drain);
    }
    case 1: {
      hypergraph::Pops pops(6, 12);
      return run_case(
          pops, [&] { return routing::compile_pops_routes(pops); },
          [&] { return routing::compress_pops_routes(pops); },
          pops.processor_count(), engine, arb, table, timing, successes,
          queue_capacity, wavelengths, drain);
    }
    default: {
      hypergraph::StackImaseItoh sii(4, 2, 12);
      return run_case(
          sii, [&] { return routing::compile_stack_imase_itoh_routes(sii); },
          [&] { return routing::compress_stack_imase_itoh_routes(sii); },
          sii.processor_count(), engine, arb, table, timing, successes,
          queue_capacity, wavelengths, drain);
    }
  }
}

TEST(AsyncEngineParity, SlotAlignedMatchesPhasedOnAllTopologiesAndTables) {
  const char* names[] = {"SK(4,3,2)", "POPS(6,12)", "SII(4,2,12)"};
  for (int topology = 0; topology < 3; ++topology) {
    for (Arbitration arb : kAllPolicies) {
      for (Table table : {Table::kDense, Table::kCompressed}) {
        SCOPED_TRACE(std::string(names[topology]) + "/" +
                     arbitration_name(arb) + "/" +
                     (table == Table::kDense ? "dense" : "compressed"));
        std::vector<std::int64_t> phased_successes;
        std::vector<std::int64_t> async_successes;
        const RunMetrics phased = run_topology(
            topology, Engine::kPhased, arb, table, {}, &phased_successes);
        const RunMetrics async = run_topology(
            topology, Engine::kAsync, arb, table, {}, &async_successes);
        expect_identical(phased, async);
        EXPECT_EQ(phased_successes, async_successes);
      }
    }
  }
}

TEST(AsyncEngineParity, SlotAlignedMatchesPhasedWithQueuesWdmAndDrain) {
  for (int topology = 0; topology < 3; ++topology) {
    for (Arbitration arb : kAllPolicies) {
      SCOPED_TRACE(std::string("topology ") + std::to_string(topology) + "/" +
                   arbitration_name(arb));
      const RunMetrics phased =
          run_topology(topology, Engine::kPhased, arb, Table::kDense, {},
                       nullptr, /*queue_capacity=*/3, /*wavelengths=*/2,
                       /*drain=*/true);
      const RunMetrics async =
          run_topology(topology, Engine::kAsync, arb, Table::kDense, {},
                       nullptr, 3, 2, true);
      expect_identical(phased, async);
      EXPECT_EQ(async.backlog, 0) << "drain must empty the network";
    }
  }
}

TEST(AsyncEngineParity, ExplicitZeroTimingModelStillCollapses) {
  // A slot-aligned model built through the kConstant profile with all
  // zeros must behave exactly like the default-constructed config.
  TimingConfig zero;
  zero.profile = SkewProfile::kConstant;
  const RunMetrics a = run_topology(0, Engine::kAsync,
                                    Arbitration::kTokenRoundRobin,
                                    Table::kDense, zero);
  const RunMetrics b = run_topology(0, Engine::kPhased,
                                    Arbitration::kTokenRoundRobin,
                                    Table::kDense);
  expect_identical(a, b);
}

// ----------------------------------------------------- skewed behaviour

TimingConfig constant_timing(SimTime tuning, SimTime propagation,
                             SimTime guard = 0) {
  TimingConfig config;
  config.profile = SkewProfile::kConstant;
  config.tuning_ticks = tuning;
  config.propagation_ticks = propagation;
  config.guard_ticks = guard;
  return config;
}

TEST(AsyncEngineSkew, TuningDelayRaisesLatencyAndLowersThroughput) {
  const RunMetrics aligned = run_topology(
      0, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense);
  // 2.5 slots of tuning: every hop waits out at least 3 slot boundaries.
  const RunMetrics tuned = run_topology(
      0, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense,
      constant_timing(5 * kTicksPerSlot / 2, 0));
  EXPECT_EQ(aligned.offered_packets, tuned.offered_packets)
      << "generation is timing-independent";
  EXPECT_GT(tuned.latency.mean(), aligned.latency.mean() + 2.0);
  EXPECT_LT(tuned.delivered_packets, aligned.delivered_packets);
}

TEST(AsyncEngineSkew, PropagationSkewDefersDeliveriesNotThroughput) {
  const RunMetrics aligned = run_topology(
      1, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense);
  // Single-hop POPS with 1.5 slots of propagation: packets arrive late
  // (higher latency) but the coupler schedule is unchanged.
  const RunMetrics skewed = run_topology(
      1, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense,
      constant_timing(0, 3 * kTicksPerSlot / 2));
  EXPECT_EQ(aligned.coupler_transmissions, skewed.coupler_transmissions);
  EXPECT_GT(skewed.latency.mean(), aligned.latency.mean() + 0.9);
}

TEST(AsyncEngineSkew, GuardBandCostsOneSlotPerHop) {
  const RunMetrics aligned = run_topology(
      1, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense);
  // A packet generated at the boundary misses its own slot's guard and
  // waits for the next one: +1 slot latency on single-hop POPS.
  const RunMetrics guarded = run_topology(
      1, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense,
      constant_timing(0, 0, kTicksPerSlot / 4));
  EXPECT_NEAR(guarded.latency.mean(), aligned.latency.mean() + 1.0, 0.35);
}

TEST(AsyncEngineSkew, SkewedRunsAreDeterministicAndSeedSensitive) {
  const TimingConfig timing = constant_timing(300, 700);
  auto run = [&](std::uint64_t seed) {
    hypergraph::StackKautz sk(4, 3, 2);
    SimConfig config;
    config.engine = Engine::kAsync;
    config.timing = timing;
    config.seed = seed;
    config.warmup_slots = 20;
    config.measure_slots = 300;
    config.arbitration = Arbitration::kRandomWinner;
    OpsNetworkSim sim(
        sk.stack(), routing::compile_stack_kautz_routes(sk),
        std::make_unique<UniformTraffic>(sk.processor_count(), 0.4), config);
    return sim.run();
  };
  const RunMetrics a = run(11);
  const RunMetrics b = run(11);
  const RunMetrics c = run(12);
  expect_identical(a, b);
  EXPECT_NE(a.offered_packets, c.offered_packets);
}

TEST(AsyncEngineSkew, PerLevelSkewChangesOutcomesOnMultiHop) {
  TimingConfig leveled;
  leveled.profile = SkewProfile::kPerLevel;
  leveled.propagation_ticks = 100;
  leveled.level_skew_ticks = 400;
  const RunMetrics flat = run_topology(
      0, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense,
      constant_timing(0, 100));
  const RunMetrics skewed = run_topology(
      0, Engine::kAsync, Arbitration::kTokenRoundRobin, Table::kDense,
      leveled);
  EXPECT_GT(skewed.latency.mean(), flat.latency.mean());
}

TEST(AsyncEngineSkew, TraceDerivedModelRunsEndToEnd) {
  hypergraph::StackKautz sk(2, 2, 2);
  const designs::NetworkDesign design = designs::stack_kautz_design(2, 2, 2);
  auto timing = std::make_shared<const TimingModel>(TimingModel::from_trace(
      sk.stack(), design, /*ticks_per_component=*/kTicksPerSlot / 16.0));
  SimConfig config;
  config.engine = Engine::kAsync;
  config.warmup_slots = 20;
  config.measure_slots = 400;
  config.seed = 5;
  OpsNetworkSim sim(
      sk.stack(), routing::compile_stack_kautz_routes(sk),
      std::make_unique<UniformTraffic>(sk.processor_count(), 0.3), config);
  sim.set_timing_model(timing);
  const RunMetrics skewed = sim.run();
  EXPECT_GT(skewed.delivered_packets, 0);
  EXPECT_GT(skewed.latency.mean(), 1.0)
      << "optical path lengths must introduce visible delay";
}

TEST(AsyncEngineSkew, SlottedEnginesRejectSkewedTimingConfigs) {
  hypergraph::Pops pops(2, 2);
  SimConfig config;
  config.engine = Engine::kPhased;
  config.timing = constant_timing(64, 0);
  EXPECT_THROW(OpsNetworkSim(pops.stack(), routing::compile_pops_routes(pops),
                             std::make_unique<SaturationTraffic>(4), config),
               core::Error);
  config.engine = Engine::kAsync;
  EXPECT_NO_THROW(
      OpsNetworkSim(pops.stack(), routing::compile_pops_routes(pops),
                    std::make_unique<SaturationTraffic>(4), config));
}

TEST(AsyncEngineSkew, PacketConservationExactUnderSkew) {
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    hypergraph::StackKautz sk(4, 3, 2);
    SimConfig config;
    config.engine = Engine::kAsync;
    config.arbitration = arb;
    config.warmup_slots = 0;
    config.measure_slots = 300;
    config.seed = 7;
    config.queue_capacity = 4;
    config.timing = constant_timing(200, 900, 100);
    OpsNetworkSim sim(
        sk.stack(), routing::compile_stack_kautz_routes(sk),
        std::make_unique<UniformTraffic>(sk.processor_count(), 0.5), config);
    const RunMetrics m = sim.run();
    EXPECT_GT(m.offered_packets, 0);
    EXPECT_EQ(m.offered_packets,
              m.delivered_packets + m.dropped_packets + m.backlog);
  }
}

}  // namespace
}  // namespace otis::sim
