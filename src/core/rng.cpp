#include "core/rng.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace otis::core {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : state_) {
    lane = splitmix64(sm);
  }
  // xoshiro must not start at the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
  std::uint64_t sm = seed;
  std::uint64_t mixed = splitmix64(sm) ^ (stream_id * 0xda942042e4dd58b5ULL);
  return Rng(mixed);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = i;
  }
  shuffle(values);
  return values;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  OTIS_REQUIRE(k <= n, "sample_without_replacement: k exceeds n");
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
    std::swap(values[i], values[j]);
  }
  values.resize(k);
  return values;
}

}  // namespace otis::core
