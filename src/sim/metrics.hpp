#pragma once
/// \file metrics.hpp
/// Measurement collection for the network simulator.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

namespace otis::core {
class BlobWriter;
class BlobReader;
}  // namespace otis::core

namespace otis::sim {

/// Cap on up-front LatencyStats reservations (8 MiB of samples). The
/// engines reserve min(delivery bound, cap): the bound is measure_slots
/// x nodes (or the workload's packet count), which over-states real
/// delivery counts by 1/load or more, so the cap keeps huge cells from
/// paying for memory they will never touch while still giving the
/// common case a reallocation-free hot loop.
inline constexpr std::int64_t kLatencyReserveCap = std::int64_t{1} << 20;

/// Online latency statistics: full-sample percentiles by default, or a
/// fixed-footprint HDR-style sketch when use_sketch() is called.
///
/// Full mode stores every sample -- O(delivered packets) memory, exact
/// percentiles. Sketch mode keeps log-spaced buckets with
/// kSketchSubBits sub-buckets per octave: values below 2^kSketchSubBits
/// land in exact unit buckets, larger values share a bucket with
/// relative width 2^-kSketchSubBits, so percentile() answers within a
/// 1/32 relative error bound in ~15 KiB regardless of how many packets
/// were delivered (the 10^6-node cells' requirement). The count, sum
/// (hence mean), min and max are tracked exactly in both modes, and
/// merge() stays an order-independent fold, so the sharded engines'
/// per-worker stats fold identically whichever mode is active.
class LatencyStats {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave, bounding
  /// the sketch's relative percentile error by 2^-5 = 3.125%.
  static constexpr int kSketchSubBits = 5;
  /// One block of 2^kSketchSubBits buckets per value octave (values are
  /// nonnegative 63-bit slot counts).
  static constexpr std::size_t kSketchBuckets =
      std::size_t{64 - kSketchSubBits} << kSketchSubBits;
  /// The sketch's worst-case relative percentile error.
  static constexpr double kSketchRelativeError = 1.0 / 32.0;

  /// Inline: called once per delivered packet in every engine hot loop
  /// (one predictable mode branch).
  void record(std::int64_t latency_slots) {
    if (sketch_) {
      record_sketch(latency_slots);
      return;
    }
    samples_.push_back(latency_slots);
    sorted_ = false;
  }

  /// Switches to sketch mode (idempotent). Any samples recorded so far
  /// are folded into the buckets; engines call this before recording.
  void use_sketch();

  [[nodiscard]] bool sketch() const noexcept { return sketch_; }

  /// Pre-sizes the sample buffer so the hot loop's record() never
  /// reallocates mid-run; engines call this once with their delivery
  /// bound clamped to kLatencyReserveCap. A no-op in sketch mode (the
  /// buckets are the whole footprint).
  void reserve(std::int64_t samples) {
    if (!sketch_ && samples > 0) {
      samples_.reserve(static_cast<std::size_t>(samples));
    }
  }

  /// Folds `other` into this (used to fold per-shard stats). Every
  /// statistic below depends only on the recorded multiset -- the mean
  /// is an exact integer sum, full-mode percentiles sort, sketch-mode
  /// percentiles walk cumulative bucket counts -- so merged results are
  /// identical for any merge order. Mixed-mode merges promote this
  /// object to a sketch first.
  void merge(const LatencyStats& other);

  [[nodiscard]] std::int64_t count() const noexcept { return count_impl(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t max() const;
  /// q in [0, 1]; nearest-rank percentile. 0 samples -> 0. In sketch
  /// mode the result is the containing bucket's lower bound clamped to
  /// [min, max]: never above the exact value, and within
  /// kSketchRelativeError of it relative.
  [[nodiscard]] std::int64_t percentile(double q) const;

  /// Checkpoint support: byte-stable state round-trip (mode included).
  void serialize(core::BlobWriter& out) const;
  void deserialize(core::BlobReader& in);

 private:
  void record_sketch(std::int64_t v) {
    ++buckets_[bucket_index(v)];
    ++sketch_count_;
    sketch_sum_ += v;
    sketch_min_ = std::min(sketch_min_, v);
    sketch_max_ = std::max(sketch_max_, v);
  }

  /// Log-linear bucket of nonnegative `v` (negatives clamp to 0):
  /// exact below 2^kSketchSubBits, then kSketchSubBits mantissa bits.
  [[nodiscard]] static std::size_t bucket_index(std::int64_t v) noexcept {
    const std::uint64_t u = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    if (u < (std::uint64_t{1} << kSketchSubBits)) {
      return static_cast<std::size_t>(u);
    }
    const int e = std::bit_width(u) - 1;
    const int shift = e - kSketchSubBits;
    return (static_cast<std::size_t>(shift + 1) << kSketchSubBits) +
           static_cast<std::size_t>((u >> shift) -
                                    (std::uint64_t{1} << kSketchSubBits));
  }

  /// Lower bound of bucket `idx` (the inverse of bucket_index).
  [[nodiscard]] static std::int64_t bucket_floor(std::size_t idx) noexcept {
    const std::size_t block = idx >> kSketchSubBits;
    if (block <= 1) {
      return static_cast<std::int64_t>(idx);
    }
    const std::size_t off = idx & ((std::size_t{1} << kSketchSubBits) - 1);
    return static_cast<std::int64_t>(
        (std::uint64_t{1} << (kSketchSubBits + block - 1)) +
        (static_cast<std::uint64_t>(off) << (block - 1)));
  }

  [[nodiscard]] std::int64_t count_impl() const noexcept {
    return sketch_ ? sketch_count_
                   : static_cast<std::int64_t>(samples_.size());
  }

  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
  bool sketch_ = false;
  std::vector<std::int64_t> buckets_;  ///< kSketchBuckets when sketching
  std::int64_t sketch_count_ = 0;
  std::int64_t sketch_sum_ = 0;
  std::int64_t sketch_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t sketch_max_ = std::numeric_limits<std::int64_t>::min();
};

/// Aggregate counters of one simulation run.
struct RunMetrics {
  std::int64_t slots = 0;             ///< measured slots (after warmup)
  std::int64_t offered_packets = 0;   ///< generated during measurement
  std::int64_t delivered_packets = 0; ///< reached destination
  std::int64_t coupler_transmissions = 0;  ///< successful slot-coupler uses
  std::int64_t collisions = 0;        ///< slot-couplers lost to contention
  std::int64_t dropped_packets = 0;   ///< lost to finite queues (if any)
  std::int64_t backlog = 0;           ///< packets still queued at the end
  /// Closed-loop (workload-driven) runs only: slots from the start of
  /// the run to the last workload delivery, the simulated completion
  /// time of the collective/kernel/trace. 0 for open-loop runs.
  std::int64_t makespan_slots = 0;
  /// True only when a checkpoint_stop_at drill cut the run short right
  /// after a checkpoint write: the counters above cover just the slots
  /// executed before the stop, and the blob on disk is the live
  /// continuation. Uninterrupted runs (including ones that wrote
  /// checkpoints along the way) never set this.
  bool interrupted = false;
  LatencyStats latency;

  /// Delivered packets per processor per slot.
  [[nodiscard]] double throughput_per_node(std::int64_t nodes) const;
  /// Fraction of coupler-slots carrying a successful transmission.
  [[nodiscard]] double coupler_utilization(std::int64_t couplers) const;
};

}  // namespace otis::sim
