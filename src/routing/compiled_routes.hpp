#pragma once
/// \file compiled_routes.hpp
/// Compiled routing tables for the slot-synchronous simulator.
///
/// The simulator's inner loop used to route every packet hop through a
/// std::function pair (RoutingHooks). CompiledRoutes bakes those
/// callbacks once per (topology, routing-policy) pair into three dense
/// int32 tables:
///   - next_slot(node, dest)    : the VOQ slot `node` queues into,
///   - next_coupler(node, dest) : the coupler that slot feeds,
///   - relay(coupler, dest)     : the node that picks the packet up.
/// After baking, a hop is two array loads -- no virtual dispatch, no
/// std::function, no std::find. Memory is O(N^2 + H*N) int32 entries,
/// fine for paper-scale networks (N up to a few thousand); beyond that
/// use the group-factored CompressedRoutes (compressed_routes.hpp),
/// which stores the same decisions in O(G^2 + H) and is bit-identical
/// in simulation. Both tables model the RouteView concept
/// (route_view.hpp) the phased engines are templated over.
///
/// Adapters cover every router shipped by the library: the Kautz label
/// router (via StackKautzRouter), the Imase-Itoh arithmetic router (via
/// its stack network), the generic-stack router and the dense
/// TableRouter it wraps.

#include <cstdint>
#include <functional>
#include <vector>

#include "hypergraph/stack_graph.hpp"

namespace otis::core {
class WorkStealingPool;
}  // namespace otis::core

namespace otis::hypergraph {
class Pops;
class StackImaseItoh;
class StackKautz;
}  // namespace otis::hypergraph

namespace otis::routing {

/// Dense per-node next-coupler and per-coupler relay tables.
class CompiledRoutes {
 public:
  using NextCouplerFn =
      std::function<hypergraph::HyperarcId(hypergraph::Node, hypergraph::Node)>;
  using RelayFn =
      std::function<hypergraph::Node(hypergraph::HyperarcId, hypergraph::Node)>;

  /// Bakes tables by evaluating the callbacks for every (node, dest) pair
  /// with node != dest. Validates that every chosen coupler is feedable
  /// by its node and that the relay of every chosen coupler is one of the
  /// coupler's targets.
  ///
  /// With `pool` set, the next-coupler/next-slot rows are filled in
  /// parallel over source nodes (row v owns [v*N, (v+1)*N)) and the
  /// relay table in a second pass over destination columns (column dest
  /// owns relay_[h*N + dest] for every h), so no two workers ever touch
  /// the same entry and the result is bit-identical to serial. The
  /// callbacks must be const-thread-safe.
  static CompiledRoutes compile(const hypergraph::StackGraph& network,
                                const NextCouplerFn& next_coupler,
                                const RelayFn& relay_on,
                                core::WorkStealingPool* pool = nullptr);

  /// Nodes covered by the node-indexed tables.
  [[nodiscard]] std::int64_t node_count() const noexcept { return nodes_; }
  /// Couplers covered by the relay table.
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return couplers_;
  }

  /// Coupler a packet at `node` heading to `dest` transmits on (-1 on
  /// the diagonal node == dest).
  [[nodiscard]] hypergraph::HyperarcId next_coupler(
      hypergraph::Node node, hypergraph::Node dest) const noexcept {
    return next_coupler_[index(node, dest)];
  }

  /// VOQ slot (position in out_hyperarcs(node)) of that coupler.
  [[nodiscard]] std::int32_t next_slot(hypergraph::Node node,
                                       hypergraph::Node dest) const noexcept {
    return next_slot_[index(node, dest)];
  }

  /// Node that consumes a packet for `dest` heard on `coupler`.
  [[nodiscard]] hypergraph::Node relay(hypergraph::HyperarcId coupler,
                                       hypergraph::Node dest) const noexcept {
    return relay_[static_cast<std::size_t>(coupler) *
                      static_cast<std::size_t>(nodes_) +
                  static_cast<std::size_t>(dest)];
  }

  /// Hints the cache toward the relay entry of (coupler, dest). The
  /// winner loops issue these for a whole batch of winners before
  /// walking the deliveries: the dense relay row is H*N wide, so
  /// consecutive winners' entries share no cache line and each lookup
  /// is otherwise a cold miss.
  void prefetch_relay(hypergraph::HyperarcId coupler,
                      hypergraph::Node dest) const noexcept {
    __builtin_prefetch(relay_.data() +
                       static_cast<std::size_t>(coupler) *
                           static_cast<std::size_t>(nodes_) +
                       static_cast<std::size_t>(dest));
  }

  /// Bytes held by the baked tables (the O(N^2 + H*N) footprint).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (next_coupler_.size() + next_slot_.size() + relay_.size()) *
           sizeof(std::int32_t);
  }

  /// What a dense table for `nodes` nodes and `couplers` couplers would
  /// occupy, without building it -- for memory-model reporting at sizes
  /// where the dense table cannot (or should not) be allocated.
  [[nodiscard]] static std::size_t dense_bytes(std::int64_t nodes,
                                               std::int64_t couplers) noexcept {
    const std::size_t n = static_cast<std::size_t>(nodes);
    const std::size_t h = static_cast<std::size_t>(couplers);
    return (n * n * 2 + h * n) * sizeof(std::int32_t);
  }

  /// The baked tables re-exposed as callbacks, for code that still wants
  /// the hook interface (e.g. the legacy event-queue engine). The
  /// callbacks capture `this`: they are valid only while this object
  /// stays alive and unmoved (hold it via shared_ptr, as OpsNetworkSim
  /// does, when the callbacks outlive the current scope).
  [[nodiscard]] NextCouplerFn next_coupler_fn() const;
  [[nodiscard]] RelayFn relay_fn() const;

 private:
  [[nodiscard]] std::size_t index(hypergraph::Node node,
                                  hypergraph::Node dest) const noexcept {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(nodes_) +
           static_cast<std::size_t>(dest);
  }

  std::int64_t nodes_ = 0;
  std::int64_t couplers_ = 0;
  std::vector<std::int32_t> next_coupler_;  // [node][dest]
  std::vector<std::int32_t> next_slot_;     // [node][dest]
  std::vector<std::int32_t> relay_;         // [coupler][dest]
};

/// Kautz label routing on SK(s, d, k), compiled. A non-null `pool`
/// parallelizes the table fill (bit-identical output).
[[nodiscard]] CompiledRoutes compile_stack_kautz_routes(
    const hypergraph::StackKautz& network,
    core::WorkStealingPool* pool = nullptr);

/// Single-hop POPS routing (relay is always the destination), compiled.
[[nodiscard]] CompiledRoutes compile_pops_routes(
    const hypergraph::Pops& network, core::WorkStealingPool* pool = nullptr);

/// Table-driven shortest-path routing for any stack-graph (BFS tables on
/// the base digraph via GenericStackRouter / TableRouter), compiled.
[[nodiscard]] CompiledRoutes compile_generic_stack_routes(
    const hypergraph::StackGraph& network,
    core::WorkStealingPool* pool = nullptr);

/// Shortest-path routing on SII(s, d, n); the Imase-Itoh arithmetic
/// router is exact but per-call, so the compiled table is built from the
/// generic shortest-path tables (they agree on distances by construction).
[[nodiscard]] CompiledRoutes compile_stack_imase_itoh_routes(
    const hypergraph::StackImaseItoh& network,
    core::WorkStealingPool* pool = nullptr);

}  // namespace otis::routing
