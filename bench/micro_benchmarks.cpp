// Microbenchmarks for the hot paths of the library: topology
// construction, the Kautz word bijection, label/arithmetic routing, line
// digraph iteration, design construction + verification, and -- the
// headline -- the simulator's slot rate per engine.
//
// The simulator section times every (topology, arbitration) pair on the
// legacy event-queue engine, on the phased engine with dense and with
// compressed routing tables, and on the async engine in its slot-aligned
// limit (plus a sharded run), prints slots/sec AND the bytes each route
// table occupies, and writes the results to BENCH_sim.json so future PRs
// have a machine-readable perf trajectory in both dimensions. A
// route-table memory section sizes dense vs compressed tables per
// topology -- including a >= 10^4-processor stack-Kautz whose dense
// table is only ever computed arithmetically. An event-queue section
// races the calendar queue against std::priority_queue on a 10^6-event
// hold workload. An async-parallel section measures the threads-vs-1
// scaling of the sharded calendar-queue engine on SK(10,10,3) under
// constant skew. Exit status checks the acceptance bars: phased >= 6x
// event-queue slots/sec on SK(4,3,2), calendar >= 3x priority-queue
// event rate at 10^6 pending events, async-sharded >= 2.5x its own
// 1-thread run at 8 threads (judged only on hosts with >= 8 cores;
// recorded as a null verdict with a skip reason otherwise), and the
// attached-but-disabled obs layers -- deterministic telemetry on the
// serial phased loop, the runtime-stats channel on the sharded loop --
// each within 2% of their no-obs baselines. Bars are
// judged on the BEST
// ratio over kAcceptanceRounds back-to-back paired rounds (contender
// then baseline inside each round): shared-container host speed swings
// ~3x across seconds-long windows, so pairing keeps the two sides of a
// ratio in the same speed window, and the best round -- like min-time
// benchmarking -- is the one least contaminated by a mid-pair shift.
//
// A phase-breakdown section (always written to the JSON; printed with
// --phase-breakdown, exported standalone with --phases-out PATH) times
// the serial phased engine's three slot phases separately -- ns/slot
// for generate / arbitrate / receive per topology -- and names the hot
// functions behind each phase, so a perf regression in a future PR
// points at a phase, not just a total.
//
// Self-contained chrono harness (no external benchmark dependency): each
// measurement is the best of `kReps` runs, which is the right estimator
// for a noisy single-core container. Simulator cells time sim.run()
// only -- construction (route sharing, arena/index setup) happens
// before the clock starts, per rep.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "collectives/pops_collectives.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/args.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/work_pool.hpp"
#include "obs/runtime_stats.hpp"
#include "obs/telemetry.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/line_digraph.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/generic_stack_routing.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/kautz_routing.hpp"
#include "routing/stack_routing.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/ops_network.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"
#include "workload/schedule_workload.hpp"

namespace {

constexpr int kReps = 3;

/// Best-of-kReps wall time of `fn()` in seconds.
double time_best(const std::function<void()>& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

/// One classic micro-benchmark row: `iters` calls of `fn`, ns/op.
void micro(otis::core::Table& table, const std::string& name,
           std::int64_t iters, const std::function<void()>& fn) {
  const double seconds = time_best([&] {
    for (std::int64_t i = 0; i < iters; ++i) {
      fn();
    }
  });
  table.add(name, iters,
            otis::core::format_double(seconds / static_cast<double>(iters) *
                                          1e9,
                                      1));
}

// ------------------------------------------------------------- sim bench

struct SimBenchCase {
  std::string topology;
  const otis::hypergraph::StackGraph* stack;
  /// The pre-refactor call pattern: per-packet routing callbacks into
  /// the real router. Drives the event-queue baseline.
  otis::sim::RoutingHooks hooks;
  /// The compiled tables driving the phased/sharded engines.
  std::shared_ptr<const otis::routing::CompiledRoutes> routes;
  /// The group-factored tables (bit-identical results, O(G^2) memory).
  std::shared_ptr<const otis::routing::CompressedRoutes> compressed;
  /// Rebuilds the compressed table from scratch, for compile timing.
  std::function<std::size_t()> recompile;
  std::int64_t nodes;
};

struct SimBenchResult {
  std::string topology;
  std::string arbitration;
  std::string engine;
  std::int64_t slots;
  double slots_per_sec;
  double packets_per_sec;
  std::int64_t route_table_bytes;  ///< 0 for the hook-routed baseline
};

constexpr std::int64_t kSimSlots = 2000;
constexpr double kSimLoad = 0.3;

/// Per-phase cost of the serial phased engine on one topology, ns/slot
/// averaged over every instrumented slot (kReps runs' worth).
struct PhaseRow {
  std::string topology;
  std::int64_t slots;
  double generate_ns;
  double arbitrate_ns;
  double receive_ns;
};

/// The functions that dominate each phase of the restructured hot path
/// (from perf annotation of the serial phased engine; kept next to the
/// breakdown so a regressing phase points straight at its code).
struct HotPhase {
  const char* phase;
  const char* functions;
};
constexpr HotPhase kHotFunctions[] = {
    {"generate",
     "\"TrafficGenerator::demand_batch_senders (compact sender list, "
     "BernoulliThreshold integer gate)\", \"core::Rng::operator()\", "
     "\"VoqArenaT::push\", \"RouteView::next_slot\""},
    {"arbitrate",
     "\"detail::pick_single_token (request-mask rotate+ctz scan)\", "
     "\"VoqArenaT::pop_front\", \"RouteView::relay (inline final "
     "deliveries)\", \"OccupancyMasks::mark_empty\""},
    {"receive",
     "\"VoqArenaT::push (relay re-enqueue)\", "
     "\"OccupancyMasks::mark_nonempty\", \"LatencyStats::record\""},
};

/// The telemetry overhead modes of the BENCH telemetry rows: no
/// telemetry attached (the null-pointer fast path every production run
/// takes by default), attached with an all-defaults config (pays only
/// the per-slot pointer/period tests -- the enforced <= 2% bar), and
/// sampling every 64 slots into a discarding writer (the amortized
/// probe-fill cost, reported but not enforced).
enum class TelemetryMode { kOff, kDisabled, kSampling };

/// The runtime-channel overhead modes of the BENCH runtime_stats rows,
/// measured on the SHARDED phased loop (the only loop the channel
/// instruments): no session attached (the production null-pointer
/// path), attached with a default config whose active() is false (one
/// pointer+flag test before the worker loop -- the enforced <= 2%
/// bar), and collecting into a discarding row counter (the timed
/// barriers' full price, reported but not enforced).
enum class RuntimeStatsMode { kOff, kDisabled, kCollecting };

/// One timed simulator run: construction (route-table sharing, arena
/// and feed-index setup) happens before the clock starts; only
/// sim.run() is timed. Returns wall seconds.
double time_sim_run(const SimBenchCase& c, otis::sim::Arbitration arb,
                    otis::sim::Engine engine, int threads,
                    bool compressed_routes,
                    otis::sim::PhaseBreakdown* breakdown,
                    otis::sim::RunMetrics* metrics_out = nullptr,
                    TelemetryMode telemetry = TelemetryMode::kOff,
                    RuntimeStatsMode runtime = RuntimeStatsMode::kOff) {
  otis::sim::SimConfig config;
  config.arbitration = arb;
  config.warmup_slots = 0;
  config.measure_slots = kSimSlots;
  config.seed = 1;
  config.engine = engine;
  config.threads = threads;
  // Accumulates across reps; callers divide by the accumulated slots.
  config.phase_breakdown = breakdown;
  if (telemetry == TelemetryMode::kDisabled) {
    config.telemetry = otis::obs::Telemetry::create({});
  } else if (telemetry == TelemetryMode::kSampling) {
    otis::obs::TelemetryConfig tc;
    tc.sample_period = 64;  // empty timeseries_path: rows counted, not written
    config.telemetry = otis::obs::Telemetry::create(tc);
  }
  if (runtime == RuntimeStatsMode::kDisabled) {
    config.runtime_stats = otis::obs::RuntimeStats::create({});
  } else if (runtime == RuntimeStatsMode::kCollecting) {
    otis::obs::RuntimeStatsConfig rc;
    rc.collect = true;  // empty path: rows counted, not written
    config.runtime_stats = otis::obs::RuntimeStats::create(rc);
  }
  auto traffic =
      std::make_unique<otis::sim::UniformTraffic>(c.nodes, kSimLoad);
  std::unique_ptr<otis::sim::OpsNetworkSim> sim;
  if (engine == otis::sim::Engine::kEventQueue) {
    // Baseline: the seed's end-to-end path -- callback routing on the
    // event-queue loop, no compiled tables anywhere.
    sim = std::make_unique<otis::sim::OpsNetworkSim>(
        *c.stack, c.hooks, std::move(traffic), config);
  } else if (compressed_routes) {
    sim = std::make_unique<otis::sim::OpsNetworkSim>(
        *c.stack, c.compressed, std::move(traffic), config);
  } else {
    sim = std::make_unique<otis::sim::OpsNetworkSim>(
        *c.stack, c.routes, std::move(traffic), config);
  }
  const auto start = std::chrono::steady_clock::now();
  const otis::sim::RunMetrics metrics = sim->run();
  const auto stop = std::chrono::steady_clock::now();
  if (metrics_out != nullptr) {
    *metrics_out = metrics;
  }
  return std::chrono::duration<double>(stop - start).count();
}

SimBenchResult run_sim_bench(const SimBenchCase& c,
                             otis::sim::Arbitration arb,
                             otis::sim::Engine engine, int threads,
                             bool compressed_routes = false,
                             otis::sim::PhaseBreakdown* breakdown = nullptr) {
  otis::sim::RunMetrics metrics;
  double seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    seconds = std::min(seconds, time_sim_run(c, arb, engine, threads,
                                             compressed_routes, breakdown,
                                             &metrics));
  }
  SimBenchResult r;
  r.topology = c.topology;
  r.arbitration = otis::sim::arbitration_name(arb);
  r.engine = otis::sim::engine_name(engine);
  if (engine == otis::sim::Engine::kSharded) {
    r.engine += "(" + std::to_string(threads) + ")";
  }
  if (compressed_routes) {
    r.engine += "+cr";
  }
  r.slots = kSimSlots;
  r.slots_per_sec = static_cast<double>(kSimSlots) / seconds;
  r.packets_per_sec =
      static_cast<double>(metrics.delivered_packets) / seconds;
  r.route_table_bytes =
      engine == otis::sim::Engine::kEventQueue
          ? 0
          : static_cast<std::int64_t>(compressed_routes
                                          ? c.compressed->memory_bytes()
                                          : c.routes->memory_bytes());
  return r;
}

/// One row of the route-table memory model: measured or (for instances
/// whose dense table should never be allocated) computed dense bytes
/// next to the compressed table's real footprint.
struct RouteTableRow {
  std::string topology;
  std::int64_t nodes;
  std::int64_t dense_bytes;
  std::int64_t compressed_bytes;
  double compile_seconds;  ///< compressed-table compile time
};

// -------------------------------------------- event-queue hold model

/// One collectives makespan datapoint: the simulated completion time of
/// a compiled schedule workload on the phased engine (token, W = 1, no
/// background load). Deterministic per topology, so compare_bench.py
/// treats ANY growth against the previous run as a regression.
struct CollectiveBenchRow {
  std::string topology;
  std::string operation;
  std::int64_t makespan_slots;
  std::int64_t analytic_slots;
};

CollectiveBenchRow run_collective_bench(
    const std::string& topology, const std::string& operation,
    const otis::hypergraph::StackGraph& stack,
    std::shared_ptr<const otis::routing::CompiledRoutes> routes,
    const otis::collectives::SlotSchedule& schedule) {
  std::shared_ptr<otis::workload::Workload> load =
      otis::workload::schedule_workload(stack, schedule);
  otis::sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: workload runs go to completion
  config.workload = load;
  otis::sim::OpsNetworkSim sim(
      stack, std::move(routes),
      std::make_unique<otis::sim::UniformTraffic>(stack.node_count(), 0.0),
      config);
  const otis::sim::RunMetrics metrics = sim.run();
  return CollectiveBenchRow{topology, operation, metrics.makespan_slots,
                            schedule.slot_count()};
}

/// One pending-event-set datapoint: events/sec on the classic hold
/// workload (pop the minimum, push a replacement a random span ahead)
/// with `pending` events resident -- Brown's benchmark for calendar
/// queues, and exactly the async engine's steady state.
struct QueueBenchResult {
  std::string queue;
  std::int64_t pending;
  double events_per_sec;
};

/// One telemetry-overhead datapoint: the phased SK(4,3,2)/token case
/// with the obs layer in one of the TelemetryMode states.
struct TelemetryBenchRow {
  std::string mode;
  double slots_per_sec;
};

/// One runtime-channel overhead datapoint: the SHARDED phased
/// SK(4,3,2)/token case (1 shard, so the numbers isolate channel cost
/// from scaling) in one of the RuntimeStatsMode states.
struct RuntimeStatsBenchRow {
  std::string mode;
  double slots_per_sec;
};

constexpr std::int64_t kQueuePending = 1'000'000;
constexpr std::int64_t kQueueHoldOps = 2'000'000;
/// Replacement spans are uniform over ~10^4 slots, so events spread over
/// many calendar days (the async engine's propagation horizon is a few
/// slots; this is the harder, more scattered case).
constexpr std::int64_t kQueueSpanSlots = 10'000;

/// One timed hold run: `prefill(queue)` runs untimed (building the
/// resident set is setup, not the steady state), the hold loop is
/// timed. Returns wall seconds for kQueueHoldOps operations.
template <class Queue, class Prefill, class HoldOp>
double hold_seconds_once(Prefill prefill, HoldOp hold_op) {
  Queue queue;
  otis::core::Rng rng(7);
  prefill(queue, rng);
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < kQueueHoldOps; ++i) {
    hold_op(queue, rng);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

otis::sim::SimTime random_span(otis::core::Rng& rng) {
  return static_cast<otis::sim::SimTime>(
      rng.uniform(kQueueSpanSlots * otis::sim::kTicksPerSlot));
}

double calendar_hold_seconds_once() {
  using Queue = otis::sim::CalendarQueue<std::int64_t>;
  return hold_seconds_once<Queue>(
      [](Queue& queue, otis::core::Rng& rng) {
        for (std::int64_t i = 0; i < kQueuePending; ++i) {
          queue.push(random_span(rng), i);
        }
      },
      [](Queue& queue, otis::core::Rng& rng) {
        const auto entry = queue.pop();
        queue.push(entry.time + 1 + random_span(rng), entry.payload);
      });
}

double priority_hold_seconds_once() {
  struct Entry {
    otis::sim::SimTime time;
    std::uint64_t seq;
    std::int64_t payload;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  struct Queue {
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::uint64_t seq = 0;
  };
  return hold_seconds_once<Queue>(
      [](Queue& queue, otis::core::Rng& rng) {
        for (std::int64_t i = 0; i < kQueuePending; ++i) {
          queue.heap.push(Entry{random_span(rng), queue.seq++, i});
        }
      },
      [](Queue& queue, otis::core::Rng& rng) {
        const Entry entry = queue.heap.top();
        queue.heap.pop();
        queue.heap.push(Entry{entry.time + 1 + random_span(rng),
                              queue.seq++, entry.payload});
      });
}

// ------------------------------------- parallel async acceptance case

/// Slots of one parallel-async acceptance run. The case is SK(10,10,3)
/// -- 11000 processors, the route-table section's scale-up topology --
/// under constant skew with multi-slot propagation, so each
/// conservative window spans several slots and the sharded workers get
/// real runway between barriers.
constexpr std::int64_t kAsyncParallelSlots = 200;
constexpr double kAsyncParallelLoad = 0.3;
/// The enforced bar: kAsyncSharded at 8 threads must beat its own
/// 1-thread run by >= 2.5x on the acceptance case. On hosts with fewer
/// than 8 hardware threads the bar cannot be judged; the measurement
/// still runs at min(8, cores) and the verdict is recorded as null with
/// a skip reason (compare_bench.py warns instead of failing).
constexpr double kAsyncParallelRequiredSpeedup = 2.5;
constexpr int kAsyncParallelBarThreads = 8;

/// One timed kAsyncSharded run of the acceptance case; construction is
/// untimed, only sim.run() is on the clock.
double async_parallel_seconds_once(
    const otis::hypergraph::StackGraph& stack,
    const std::shared_ptr<const otis::routing::CompressedRoutes>& routes,
    int threads) {
  otis::sim::SimConfig config;
  config.arbitration = otis::sim::Arbitration::kTokenRoundRobin;
  config.warmup_slots = 0;
  config.measure_slots = kAsyncParallelSlots;
  config.seed = 3;
  config.engine = otis::sim::Engine::kAsyncSharded;
  config.threads = threads;
  // Constant skew, propagation of three slots: lookahead windows of
  // several slots, the regime the conservative windows are built for.
  config.timing.profile = otis::sim::SkewProfile::kConstant;
  config.timing.tuning_ticks = 64;
  config.timing.propagation_ticks = 3 * otis::sim::kTicksPerSlot;
  otis::sim::OpsNetworkSim sim(
      stack, routes,
      std::make_unique<otis::sim::UniformTraffic>(stack.node_count(),
                                                  kAsyncParallelLoad),
      config);
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// ------------------------------------------------ acceptance gates

/// Rounds of the paired acceptance measurements (the enforced bars).
constexpr int kAcceptanceRounds = 5;

/// Max and median of per-round time ratios baseline/contender over
/// paired back-to-back rounds. Host speed on a shared container swings
/// by ~3x across seconds-long windows, so a ratio of two independently
/// measured best times can compare different speed windows and is not
/// reproducible. Pairing keeps the two sides of each ratio adjacent in
/// time, and the best round -- like min-time in classic benchmarking
/// -- is the round least contaminated by a mid-pair speed shift; the
/// median is reported alongside as the conservative estimate.
struct PairedSpeedup {
  double best = 0.0;
  double median = 0.0;
};

PairedSpeedup paired_speedup(
    int rounds, const std::function<double()>& contender_seconds,
    const std::function<double()>& baseline_seconds) {
  std::vector<double> ratios;
  for (int round = 0; round < rounds; ++round) {
    const double tc = contender_seconds();
    const double tb = baseline_seconds();
    if (tc > 0.0 && tb > 0.0) {
      ratios.push_back(tb / tc);
    }
  }
  if (ratios.empty()) {
    return {};
  }
  std::sort(ratios.begin(), ratios.end());
  return {ratios.back(), ratios[ratios.size() / 2]};
}

/// The parallel-async acceptance datapoint written to BENCH_sim.json.
struct AsyncParallelResult {
  int threads = 0;           ///< contender thread count actually used
  int hardware_threads = 0;  ///< std::thread::hardware_concurrency()
  PairedSpeedup speedup;     ///< threads-vs-1 paired ratio
  bool skipped = false;      ///< bar not judged (host below 8 threads)
};

// ------------------------------------- parallel route compilation bar

/// The enforced bar: compiling SK(10,10,3)'s compressed route tables
/// over an 8-worker WorkStealingPool must beat the serial compile by
/// >= 2.5x (paired rounds, best ratio). Same tri-state protocol as the
/// async-parallel bar: on hosts with fewer than 8 hardware threads the
/// measurement still runs at min(8, cores) and the verdict is null
/// with a skip reason.
constexpr double kRouteCompileRequiredSpeedup = 2.5;
constexpr int kRouteCompileBarThreads = 8;

/// The parallel route-compile datapoint written to BENCH_sim.json.
struct RouteCompileResult {
  int threads = 0;           ///< pool worker count actually used
  int hardware_threads = 0;  ///< std::thread::hardware_concurrency()
  PairedSpeedup speedup;     ///< pool-vs-serial paired ratio
  bool skipped = false;      ///< bar not judged (host below 8 threads)
};

// ------------------------------------------ per-cell memory budget

/// Peak-RSS growth allowed for compiling and running one sketch-mode
/// scale-up cell (SK(10,10,3), 11000 processors, compressed routes,
/// phased engine). The budget is sized so the normal cell -- a ~10 MB
/// group-compressed table, the VOQ arena, and the fixed ~15 KiB
/// latency sketch -- passes with headroom, while the two O(N)-scale
/// accidents it guards against blow straight through it: a dense route
/// table for this topology is ~1.5 GB, and full-sample latency storage
/// grows by 8 bytes per delivered packet forever.
constexpr std::int64_t kMemoryBudgetKiB = 192 * 1024;
/// Measurement window of the memory cell (enough deliveries that
/// full-sample storage would visibly move the high-water mark).
constexpr std::int64_t kMemoryCellSlots = 200;

/// Peak resident set from /proc/self/status in KiB: VmHWM when the
/// kernel reports it, otherwise the current VmRSS (sandboxed kernels
/// omit the high-water line; the probe reads while the cell's
/// allocations are still live, so current RSS approximates the peak).
/// Returns -1 when neither is available (non-Linux host): the memory
/// verdict is then null, mirroring the thread-count skip protocol.
std::int64_t read_vm_hwm_kib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  std::int64_t rss = -1;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoll(line.c_str() + 6, nullptr, 10);
    }
    if (line.rfind("VmRSS:", 0) == 0) {
      rss = std::strtoll(line.c_str() + 6, nullptr, 10);
    }
  }
  return rss;
}

/// The per-cell memory datapoint written to BENCH_sim.json. Measured
/// first thing in main() so the process high-water mark reflects this
/// cell and not an earlier benchmark's allocations.
struct MemoryBenchResult {
  std::int64_t rss_before_kib = -1;  ///< VmHWM before the cell
  std::int64_t rss_peak_kib = -1;    ///< VmHWM after the cell
  bool skipped = false;              ///< /proc/self/status unavailable
  [[nodiscard]] std::int64_t delta_kib() const {
    return rss_peak_kib - rss_before_kib;
  }
};

/// Compiles compressed routes for SK(10,10,3) and runs one phased
/// sketch-mode cell, bracketing the work with VmHWM reads.
MemoryBenchResult memory_cell_once() {
  MemoryBenchResult result;
  result.rss_before_kib = read_vm_hwm_kib();
  if (result.rss_before_kib < 0) {
    result.skipped = true;
    return result;
  }
  otis::hypergraph::StackKautz big(10, 10, 3);
  const auto routes =
      std::make_shared<const otis::routing::CompressedRoutes>(
          otis::routing::compress_stack_kautz_routes(big));
  otis::sim::SimConfig config;
  config.arbitration = otis::sim::Arbitration::kTokenRoundRobin;
  config.warmup_slots = 0;
  config.measure_slots = kMemoryCellSlots;
  config.seed = 7;
  config.engine = otis::sim::Engine::kPhased;
  config.latency_mode = otis::sim::LatencyMode::kSketch;
  otis::sim::OpsNetworkSim sim(
      big.stack(), routes,
      std::make_unique<otis::sim::UniformTraffic>(big.processor_count(),
                                                  kAsyncParallelLoad),
      config);
  sim.run();
  result.rss_peak_kib = read_vm_hwm_kib();
  return result;
}

/// The phase_breakdown and hot_functions JSON sections, shared between
/// BENCH_sim.json and the standalone --phases-out artifact.
void write_phase_sections(std::ostream& out,
                          const std::vector<PhaseRow>& phases) {
  out << "  \"phase_breakdown\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseRow& p = phases[i];
    out << "    {\"topology\": \"" << p.topology
        << "\", \"engine\": \"phased\", \"arbitration\": \"token\", "
        << "\"slots\": " << p.slots << ", \"generate_ns_per_slot\": "
        << otis::core::format_double(p.generate_ns, 1)
        << ", \"arbitrate_ns_per_slot\": "
        << otis::core::format_double(p.arbitrate_ns, 1)
        << ", \"receive_ns_per_slot\": "
        << otis::core::format_double(p.receive_ns, 1)
        << ", \"total_ns_per_slot\": "
        << otis::core::format_double(
               p.generate_ns + p.arbitrate_ns + p.receive_ns, 1)
        << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"hot_functions\": [\n";
  const std::size_t hot_count =
      sizeof(kHotFunctions) / sizeof(kHotFunctions[0]);
  for (std::size_t i = 0; i < hot_count; ++i) {
    out << "    {\"phase\": \"" << kHotFunctions[i].phase
        << "\", \"functions\": [" << kHotFunctions[i].functions << "]}"
        << (i + 1 < hot_count ? "," : "") << "\n";
  }
  out << "  ],\n";
}

void write_phases_json(const std::string& path,
                       const std::vector<PhaseRow>& phases) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"ops_network_phase_breakdown\",\n"
      << "  \"slots_per_run\": " << kSimSlots << ",\n"
      << "  \"uniform_load\": " << kSimLoad << ",\n";
  write_phase_sections(out, phases);
  out << "  \"reps\": " << kReps << "\n"
      << "}\n";
}

void write_bench_json(const std::string& path,
                      const std::vector<SimBenchResult>& results,
                      const std::vector<RouteTableRow>& tables,
                      const std::vector<QueueBenchResult>& queues,
                      const std::vector<CollectiveBenchRow>& collectives,
                      const std::vector<PhaseRow>& phases,
                      const std::vector<TelemetryBenchRow>& telemetry,
                      const PairedSpeedup& telemetry_speedup,
                      bool telemetry_pass,
                      const std::vector<RuntimeStatsBenchRow>& runtime,
                      const PairedSpeedup& runtime_speedup,
                      bool runtime_pass,
                      const PairedSpeedup& queue_speedup, bool queue_pass,
                      const AsyncParallelResult& async_parallel,
                      bool async_parallel_pass,
                      const RouteCompileResult& route_compile,
                      bool route_compile_pass,
                      const MemoryBenchResult& memory, bool memory_pass,
                      const PairedSpeedup& sk_speedup, bool pass) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"ops_network_slot_engine\",\n"
      << "  \"slots_per_run\": " << kSimSlots << ",\n"
      << "  \"uniform_load\": " << kSimLoad << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SimBenchResult& r = results[i];
    out << "    {\"topology\": \"" << r.topology << "\", \"arbitration\": \""
        << r.arbitration << "\", \"engine\": \"" << r.engine
        << "\", \"slots_per_sec\": " << static_cast<std::int64_t>(
               r.slots_per_sec)
        << ", \"packets_per_sec\": " << static_cast<std::int64_t>(
               r.packets_per_sec)
        << ", \"route_table_bytes\": " << r.route_table_bytes
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"route_tables\": [\n";
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const RouteTableRow& t = tables[i];
    out << "    {\"topology\": \"" << t.topology << "\", \"nodes\": "
        << t.nodes << ", \"dense_bytes\": " << t.dense_bytes
        << ", \"compressed_bytes\": " << t.compressed_bytes
        << ", \"compression_ratio\": "
        << otis::core::format_double(
               t.compressed_bytes > 0
                   ? static_cast<double>(t.dense_bytes) /
                         static_cast<double>(t.compressed_bytes)
                   : 0.0,
               1)
        << ", \"compile_seconds\": "
        << otis::core::format_double(t.compile_seconds, 4) << "}"
        << (i + 1 < tables.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"event_queues\": [\n";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const QueueBenchResult& q = queues[i];
    out << "    {\"queue\": \"" << q.queue << "\", \"pending\": "
        << q.pending << ", \"events_per_sec\": "
        << static_cast<std::int64_t>(q.events_per_sec) << "}"
        << (i + 1 < queues.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"collectives\": [\n";
  for (std::size_t i = 0; i < collectives.size(); ++i) {
    const CollectiveBenchRow& c = collectives[i];
    out << "    {\"topology\": \"" << c.topology << "\", \"operation\": \""
        << c.operation << "\", \"makespan_slots\": " << c.makespan_slots
        << ", \"analytic_slots\": " << c.analytic_slots << "}"
        << (i + 1 < collectives.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"telemetry\": [\n";
  for (std::size_t i = 0; i < telemetry.size(); ++i) {
    const TelemetryBenchRow& t = telemetry[i];
    out << "    {\"mode\": \"" << t.mode << "\", \"slots_per_sec\": "
        << static_cast<std::int64_t>(t.slots_per_sec) << "}"
        << (i + 1 < telemetry.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"runtime_stats\": [\n";
  for (std::size_t i = 0; i < runtime.size(); ++i) {
    const RuntimeStatsBenchRow& r = runtime[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"slots_per_sec\": "
        << static_cast<std::int64_t>(r.slots_per_sec) << "}"
        << (i + 1 < runtime.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"async_parallel\": {\"topology\": \"SK(10,10,3)\", "
         "\"arbitration\": \"token\", \"routes\": \"compressed\", "
         "\"timing\": \"const skew, 3-slot propagation\", \"slots\": "
      << kAsyncParallelSlots << ", \"load\": "
      << otis::core::format_double(kAsyncParallelLoad, 2)
      << ", \"threads\": " << async_parallel.threads
      << ", \"hardware_threads\": " << async_parallel.hardware_threads
      << ", \"speedup_best\": "
      << otis::core::format_double(async_parallel.speedup.best, 2)
      << ", \"speedup_median\": "
      << otis::core::format_double(async_parallel.speedup.median, 2)
      << "},\n"
      << "  \"route_compile\": {\"topology\": \"SK(10,10,3)\", "
         "\"routes\": \"compressed\", \"threads\": "
      << route_compile.threads
      << ", \"hardware_threads\": " << route_compile.hardware_threads
      << ", \"speedup_best\": "
      << otis::core::format_double(route_compile.speedup.best, 2)
      << ", \"speedup_median\": "
      << otis::core::format_double(route_compile.speedup.median, 2)
      << "},\n"
      << "  \"memory\": {\"topology\": \"SK(10,10,3)\", \"engine\": "
         "\"phased\", \"latency_stats\": \"sketch\", \"routes\": "
         "\"compressed\", \"slots\": "
      << kMemoryCellSlots;
  if (memory.skipped) {
    out << ", \"rss_before_kib\": null, \"rss_peak_kib\": null, "
           "\"cell_kib\": null";
  } else {
    out << ", \"rss_before_kib\": " << memory.rss_before_kib
        << ", \"rss_peak_kib\": " << memory.rss_peak_kib
        << ", \"cell_kib\": " << memory.delta_kib();
  }
  out << ", \"budget_kib\": " << kMemoryBudgetKiB << "},\n";
  write_phase_sections(out, phases);
  // telemetry_speedup.best is off/disabled time ratio >= 1 means free;
  // overhead_pct = (1/best - 1) * 100 is the slowdown the disabled obs
  // layer costs the hot path (the <= 2% bar from the PR contract).
  const double telemetry_overhead_pct =
      telemetry_speedup.best > 0.0
          ? (1.0 / telemetry_speedup.best - 1.0) * 100.0
          : 100.0;
  const double runtime_overhead_pct =
      runtime_speedup.best > 0.0
          ? (1.0 / runtime_speedup.best - 1.0) * 100.0
          : 100.0;
  out << "  \"acceptance\": {\"topology\": \"SK(4,3,2)\", \"arbitration\": "
         "\"token\", \"statistic\": \"best_paired_round\", \"rounds\": "
      << kAcceptanceRounds
      << ", \"required_speedup\": 6.0, \"measured_speedup\": "
      << otis::core::format_double(sk_speedup.best, 2)
      << ", \"median_speedup\": "
      << otis::core::format_double(sk_speedup.median, 2)
      << ", \"pass\": " << (pass ? "true" : "false")
      << ", \"queue_required_speedup\": 3.0, \"queue_measured_speedup\": "
      << otis::core::format_double(queue_speedup.best, 2)
      << ", \"queue_median_speedup\": "
      << otis::core::format_double(queue_speedup.median, 2)
      << ", \"queue_pass\": " << (queue_pass ? "true" : "false")
      << ", \"telemetry_overhead_pct\": "
      << otis::core::format_double(telemetry_overhead_pct, 2)
      << ", \"telemetry_required_max_overhead_pct\": 2.0"
      << ", \"telemetry_pass\": " << (telemetry_pass ? "true" : "false")
      << ", \"runtime_stats_overhead_pct\": "
      << otis::core::format_double(runtime_overhead_pct, 2)
      << ", \"runtime_stats_required_max_overhead_pct\": 2.0"
      << ", \"runtime_stats_pass\": " << (runtime_pass ? "true" : "false")
      << ", \"async_parallel_required_speedup\": "
      << otis::core::format_double(kAsyncParallelRequiredSpeedup, 1)
      << ", \"async_parallel_measured_speedup\": "
      << otis::core::format_double(async_parallel.speedup.best, 2)
      << ", \"async_parallel_median_speedup\": "
      << otis::core::format_double(async_parallel.speedup.median, 2)
      << ", \"async_parallel_threads\": " << async_parallel.threads;
  // The tri-state verdict: null means "not judged on this host" (too
  // few cores for the 8-thread bar), which compare_bench.py downgrades
  // to a warning; an explicit false always fails CI.
  if (async_parallel.skipped) {
    out << ", \"async_parallel_pass\": null"
        << ", \"async_parallel_skip_reason\": \"hardware_threads "
        << async_parallel.hardware_threads << " < "
        << kAsyncParallelBarThreads
        << "; the 8-thread scaling bar needs 8 cores\"";
  } else {
    out << ", \"async_parallel_pass\": "
        << (async_parallel_pass ? "true" : "false");
  }
  out << ", \"route_compile_required_speedup\": "
      << otis::core::format_double(kRouteCompileRequiredSpeedup, 1)
      << ", \"route_compile_measured_speedup\": "
      << otis::core::format_double(route_compile.speedup.best, 2)
      << ", \"route_compile_median_speedup\": "
      << otis::core::format_double(route_compile.speedup.median, 2)
      << ", \"route_compile_threads\": " << route_compile.threads;
  if (route_compile.skipped) {
    out << ", \"route_compile_pass\": null"
        << ", \"route_compile_skip_reason\": \"hardware_threads "
        << route_compile.hardware_threads << " < "
        << kRouteCompileBarThreads
        << "; the 8-thread scaling bar needs 8 cores\"";
  } else {
    out << ", \"route_compile_pass\": "
        << (route_compile_pass ? "true" : "false");
  }
  out << ", \"memory_budget_kib\": " << kMemoryBudgetKiB;
  if (memory.skipped) {
    out << ", \"memory_cell_kib\": null, \"memory_pass\": null"
        << ", \"memory_skip_reason\": \"/proc/self/status unavailable\"";
  } else {
    out << ", \"memory_cell_kib\": " << memory.delta_kib()
        << ", \"memory_pass\": " << (memory_pass ? "true" : "false");
  }
  out << "}\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --out moves BENCH_sim.json (CI writes into its artifact dir, laptops
  // keep the default); --threads sizes the sharded engine datapoint;
  // --phase-breakdown prints the per-phase ns/slot table;
  // --phases-out PATH exports the breakdown as a standalone artifact.
  const otis::core::Args args(
      argc, argv, {"out", "threads", "phase-breakdown", "phases-out"});
  const std::string out_path = args.get("out", "BENCH_sim.json");
  const int sharded_threads =
      static_cast<int>(args.get_int("threads", 2));

  // -------------------------------------------- per-cell memory budget
  // First section on purpose: VmHWM is a process-lifetime high-water
  // mark, so the cell must run before any other benchmark inflates it.
  std::cout << "[memory] peak RSS of one sketch-mode SK(10,10,3) cell "
               "(compressed routes, phased, " << kMemoryCellSlots
            << " slots)\n";
  const MemoryBenchResult memory = memory_cell_once();
  const bool memory_pass =
      !memory.skipped && memory.delta_kib() <= kMemoryBudgetKiB;
  if (memory.skipped) {
    std::cout << "  /proc/self/status unavailable; verdict null\n\n";
  } else {
    std::cout << "  VmHWM " << memory.rss_before_kib << " -> "
              << memory.rss_peak_kib << " KiB, cell cost "
              << memory.delta_kib() << " KiB (budget "
              << kMemoryBudgetKiB << " KiB: "
              << (memory_pass ? "PASS" : "FAIL") << ")\n\n";
  }

  // ---------------------------------------------- classic micro section
  std::cout << "[micro] library hot paths (best of " << kReps << ")\n\n";
  otis::core::Table table({"benchmark", "iters", "ns/op"});

  micro(table, "Kautz(4,4) construction", 20,
        [] { otis::topology::Kautz kautz(4, 4); });
  {
    otis::topology::Kautz kautz(4, 4);  // 500 nodes
    std::int64_t v = 0;
    micro(table, "Kautz word bijection", 20000, [&] {
      auto word = kautz.word_of(v);
      if (kautz.vertex_of(word) != v) {
        std::abort();
      }
      v = (v + 1) % kautz.order();
    });
    otis::routing::KautzRouter router(kautz);
    std::int64_t u = 1;
    std::int64_t w = kautz.order() / 2;
    micro(table, "Kautz label route", 20000, [&] {
      volatile auto hops = router.route(u, w).size();
      (void)hops;
      u = (u + 7) % kautz.order();
      w = (w + 13) % kautz.order();
    });
  }
  {
    otis::topology::ImaseItoh ii(4, 10000);
    otis::routing::ImaseItohRouter router(ii);
    std::int64_t u = 1;
    std::int64_t w = ii.order() / 2;
    micro(table, "Imase-Itoh arithmetic route (n=10000)", 20000, [&] {
      volatile auto labels = router.route_labels(u, w).size();
      (void)labels;
      u = (u + 7) % ii.order();
      w = (w + 13) % ii.order();
    });
  }
  micro(table, "Kautz(3,3) BFS diameter", 50, [] {
    otis::topology::Kautz kautz(3, 3);
    volatile auto d = otis::graph::diameter(kautz.graph());
    (void)d;
  });
  micro(table, "Kautz(3,3) line digraph", 100, [] {
    otis::topology::Kautz kautz(3, 3);
    volatile auto n = otis::graph::line_digraph(kautz.graph()).graph.size();
    (void)n;
  });
  micro(table, "SK(6,3,2) design build", 10, [] {
    volatile auto n =
        otis::designs::stack_kautz_design(6, 3, 2).netlist.component_count();
    (void)n;
  });
  {
    auto design = otis::designs::stack_kautz_design(6, 3, 2);
    micro(table, "SK(6,3,2) design verify", 10, [&] {
      volatile bool ok = otis::designs::verify_design(design).ok;
      (void)ok;
    });
  }
  micro(table, "Proposition 1 verify (n=1024)", 10, [] {
    otis::otis::ImaseItohRealization real(4, 1024);
    volatile bool ok = real.verify(nullptr);
    (void)ok;
  });
  table.print(std::cout);

  // ---------------------------------------------------- simulator bench
  std::cout << "\n[sim] slot engine throughput, uniform load " << kSimLoad
            << ", " << kSimSlots << " slots/run (best of " << kReps
            << ")\n\n";

  otis::hypergraph::StackKautz sk(4, 3, 2);
  otis::hypergraph::Pops pops(6, 12);
  otis::hypergraph::StackImaseItoh sii(4, 2, 12);
  otis::routing::StackKautzRouter sk_router(sk);
  otis::routing::PopsRouter pops_router(pops);
  otis::routing::GenericStackRouter sii_router(sii.stack());

  otis::sim::RoutingHooks sk_hooks;
  sk_hooks.next_coupler = [&sk_router](otis::hypergraph::Node c,
                                       otis::hypergraph::Node d) {
    return sk_router.next_coupler(c, d);
  };
  sk_hooks.relay_on = [&sk_router](otis::hypergraph::HyperarcId h,
                                   otis::hypergraph::Node d) {
    return sk_router.relay_on(h, d);
  };
  otis::sim::RoutingHooks pops_hooks;
  pops_hooks.next_coupler = [&pops_router](otis::hypergraph::Node c,
                                           otis::hypergraph::Node d) {
    return pops_router.next_coupler(c, d);
  };
  pops_hooks.relay_on = [](otis::hypergraph::HyperarcId,
                           otis::hypergraph::Node d) { return d; };
  otis::sim::RoutingHooks sii_hooks;
  sii_hooks.next_coupler = [&sii_router](otis::hypergraph::Node c,
                                         otis::hypergraph::Node d) {
    return sii_router.next_coupler(c, d);
  };
  sii_hooks.relay_on = [&sii_router](otis::hypergraph::HyperarcId h,
                                     otis::hypergraph::Node d) {
    return sii_router.relay_on(h, d);
  };

  const std::vector<SimBenchCase> cases = {
      {"SK(4,3,2)", &sk.stack(), sk_hooks,
       std::make_shared<const otis::routing::CompiledRoutes>(
           otis::routing::compile_stack_kautz_routes(sk)),
       std::make_shared<const otis::routing::CompressedRoutes>(
           otis::routing::compress_stack_kautz_routes(sk)),
       [&sk] {
         return otis::routing::compress_stack_kautz_routes(sk)
             .memory_bytes();
       },
       sk.processor_count()},
      {"POPS(6,12)", &pops.stack(), pops_hooks,
       std::make_shared<const otis::routing::CompiledRoutes>(
           otis::routing::compile_pops_routes(pops)),
       std::make_shared<const otis::routing::CompressedRoutes>(
           otis::routing::compress_pops_routes(pops)),
       [&pops] {
         return otis::routing::compress_pops_routes(pops).memory_bytes();
       },
       pops.processor_count()},
      {"SII(4,2,12)", &sii.stack(), sii_hooks,
       std::make_shared<const otis::routing::CompiledRoutes>(
           otis::routing::compile_stack_imase_itoh_routes(sii)),
       std::make_shared<const otis::routing::CompressedRoutes>(
           otis::routing::compress_stack_imase_itoh_routes(sii)),
       [&sii] {
         return otis::routing::compress_stack_imase_itoh_routes(sii)
             .memory_bytes();
       },
       sii.processor_count()},
  };
  const otis::sim::Arbitration policies[] = {
      otis::sim::Arbitration::kTokenRoundRobin,
      otis::sim::Arbitration::kRandomWinner,
      otis::sim::Arbitration::kSlottedAloha};

  std::vector<SimBenchResult> results;
  otis::core::Table sim_table({"topology", "arbitration", "engine",
                               "slots/s", "pkts/s", "table bytes"});
  const auto record = [&](SimBenchResult r) {
    sim_table.add(r.topology, r.arbitration, r.engine,
                  static_cast<std::int64_t>(r.slots_per_sec),
                  static_cast<std::int64_t>(r.packets_per_sec),
                  r.route_table_bytes);
    results.push_back(std::move(r));
  };
  for (const SimBenchCase& c : cases) {
    for (otis::sim::Arbitration arb : policies) {
      // The async engine runs its slot-aligned limit here: same results
      // as phased (bit-for-bit), so the row isolates the calendar-queue
      // engine's overhead against the direct slot loop.
      for (otis::sim::Engine engine : {otis::sim::Engine::kEventQueue,
                                       otis::sim::Engine::kPhased,
                                       otis::sim::Engine::kAsync}) {
        record(run_sim_bench(c, arb, engine, 1));
      }
      // The dense-vs-compressed datapoint: same engine, same results,
      // O(G^2) instead of O(N^2) table bytes.
      record(run_sim_bench(c, arb, otis::sim::Engine::kPhased, 1,
                           /*compressed_routes=*/true));
    }
  }
  // One sharded datapoint (thread-count invariant by construction; on a
  // single-core container this mostly measures barrier overhead).
  record(run_sim_bench(cases[0], otis::sim::Arbitration::kTokenRoundRobin,
                       otis::sim::Engine::kSharded, sharded_threads));
  sim_table.print(std::cout);

  // ------------------------------------------------ phase breakdown
  // Dedicated instrumented runs (phased/token/serial): the clock reads
  // around each phase would skew the headline throughput cells above.
  std::vector<PhaseRow> phases;
  for (const SimBenchCase& c : cases) {
    otis::sim::PhaseBreakdown bd;
    run_sim_bench(c, otis::sim::Arbitration::kTokenRoundRobin,
                  otis::sim::Engine::kPhased, 1,
                  /*compressed_routes=*/false, &bd);
    // bd accumulates across the kReps reps; bd.slots totals them too,
    // so seconds / slots is already the per-slot mean.
    const double scale =
        bd.slots > 0 ? 1e9 / static_cast<double>(bd.slots) : 0.0;
    phases.push_back(PhaseRow{c.topology, bd.slots,
                              bd.generate_seconds * scale,
                              bd.arbitrate_seconds * scale,
                              bd.receive_seconds * scale});
  }
  if (args.has("phase-breakdown")) {
    std::cout << "\n[phases] phased/token slot-loop breakdown, ns/slot "
                 "(mean over " << kReps << " reps)\n\n";
    otis::core::Table phase_table({"topology", "generate", "arbitrate",
                                   "receive", "total"});
    for (const PhaseRow& p : phases) {
      phase_table.add(
          p.topology, otis::core::format_double(p.generate_ns, 1),
          otis::core::format_double(p.arbitrate_ns, 1),
          otis::core::format_double(p.receive_ns, 1),
          otis::core::format_double(
              p.generate_ns + p.arbitrate_ns + p.receive_ns, 1));
    }
    phase_table.print(std::cout);
  }

  // ------------------------------------------- route-table memory model
  std::cout << "\n[routes] table memory, dense vs group-compressed\n\n";
  std::vector<RouteTableRow> route_tables;
  for (const SimBenchCase& c : cases) {
    RouteTableRow row;
    row.topology = c.topology;
    row.nodes = c.nodes;
    row.dense_bytes = static_cast<std::int64_t>(c.routes->memory_bytes());
    row.compressed_bytes =
        static_cast<std::int64_t>(c.compressed->memory_bytes());
    row.compile_seconds = time_best([&] {
      volatile std::size_t bytes = c.recompile();
      (void)bytes;
    });
    route_tables.push_back(std::move(row));
  }
  {
    // The scale-up datapoint: SK(10,10,3) has N = 11000 processors; its
    // dense table (~1.5 GB) is computed arithmetically, never allocated.
    otis::hypergraph::StackKautz big(10, 10, 3);
    RouteTableRow row;
    row.topology = "SK(10,10,3)";
    row.nodes = big.processor_count();
    row.dense_bytes =
        static_cast<std::int64_t>(otis::routing::CompiledRoutes::dense_bytes(
            big.processor_count(), big.coupler_count()));
    std::int64_t bytes = 0;
    row.compile_seconds = time_best([&] {
      bytes = static_cast<std::int64_t>(
          otis::routing::compress_stack_kautz_routes(big).memory_bytes());
    });
    row.compressed_bytes = bytes;
    route_tables.push_back(std::move(row));
  }
  otis::core::Table routes_table({"topology", "nodes", "dense B",
                                  "compressed B", "ratio", "compile ms"});
  for (const RouteTableRow& t : route_tables) {
    routes_table.add(
        t.topology, t.nodes, t.dense_bytes, t.compressed_bytes,
        otis::core::format_double(
            static_cast<double>(t.dense_bytes) /
                static_cast<double>(t.compressed_bytes),
            1),
        otis::core::format_double(t.compile_seconds * 1e3, 2));
  }
  routes_table.print(std::cout);

  // ---------------------------------------- pending-event-set showdown
  // Paired rounds double as the table's rate cells (best per side) and
  // the acceptance ratio (see paired_speedup).
  std::cout << "\n[queues] calendar vs priority queue, hold model, "
            << kQueuePending << " pending events ("
            << kAcceptanceRounds << " paired rounds)\n\n";
  double calendar_best = 1e300;
  double priority_best = 1e300;
  const PairedSpeedup queue_speedup = paired_speedup(
      kAcceptanceRounds,
      [&] {
        const double t = calendar_hold_seconds_once();
        calendar_best = std::min(calendar_best, t);
        return t;
      },
      [&] {
        const double t = priority_hold_seconds_once();
        priority_best = std::min(priority_best, t);
        return t;
      });
  const std::vector<QueueBenchResult> queues = {
      {"calendar", kQueuePending,
       static_cast<double>(kQueueHoldOps) / calendar_best},
      {"priority", kQueuePending,
       static_cast<double>(kQueueHoldOps) / priority_best}};
  otis::core::Table queue_table({"queue", "pending", "events/s"});
  for (const QueueBenchResult& q : queues) {
    queue_table.add(q.queue, q.pending,
                    static_cast<std::int64_t>(q.events_per_sec));
  }
  queue_table.print(std::cout);

  // ----------------------------------------- collectives makespans
  std::cout << "\n[collectives] simulated makespans of the compiled "
               "schedule workloads (phased, token, W = 1)\n\n";
  const std::vector<CollectiveBenchRow> collectives = {
      run_collective_bench("SK(4,3,2)", "one-to-all", sk.stack(),
                           cases[0].routes,
                           otis::collectives::stack_kautz_one_to_all(sk, 0)),
      run_collective_bench("SK(4,3,2)", "gossip", sk.stack(),
                           cases[0].routes,
                           otis::collectives::stack_kautz_gossip(sk)),
      run_collective_bench("POPS(6,12)", "one-to-all", pops.stack(),
                           cases[1].routes,
                           otis::collectives::pops_one_to_all(pops, 0)),
      run_collective_bench("POPS(6,12)", "gossip", pops.stack(),
                           cases[1].routes,
                           otis::collectives::pops_gossip(pops)),
  };
  otis::core::Table collectives_table(
      {"topology", "operation", "makespan", "analytic"});
  for (const CollectiveBenchRow& c : collectives) {
    collectives_table.add(c.topology, c.operation, c.makespan_slots,
                          c.analytic_slots);
  }
  collectives_table.print(std::cout);

  // --------------------------------------------- telemetry overhead
  // The obs-layer cost ladder on the acceptance case. The enforced bar
  // is the attached-but-disabled mode (pure branch cost); the sampling
  // row reports the amortized probe-fill price for context.
  std::cout << "\n[telemetry] obs-layer overhead on SK(4,3,2)/token, "
               "phased serial (" << kAcceptanceRounds
            << " paired rounds)\n\n";
  double tel_off_best = 1e300;
  double tel_disabled_best = 1e300;
  const PairedSpeedup telemetry_speedup = paired_speedup(
      kAcceptanceRounds,
      [&] {
        const double t = time_sim_run(
            cases[0], otis::sim::Arbitration::kTokenRoundRobin,
            otis::sim::Engine::kPhased, 1, false, nullptr, nullptr,
            TelemetryMode::kDisabled);
        tel_disabled_best = std::min(tel_disabled_best, t);
        return t;
      },
      [&] {
        const double t = time_sim_run(
            cases[0], otis::sim::Arbitration::kTokenRoundRobin,
            otis::sim::Engine::kPhased, 1, false, nullptr, nullptr,
            TelemetryMode::kOff);
        tel_off_best = std::min(tel_off_best, t);
        return t;
      });
  double tel_sampling_best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    tel_sampling_best = std::min(
        tel_sampling_best,
        time_sim_run(cases[0], otis::sim::Arbitration::kTokenRoundRobin,
                     otis::sim::Engine::kPhased, 1, false, nullptr, nullptr,
                     TelemetryMode::kSampling));
  }
  const std::vector<TelemetryBenchRow> telemetry_rows = {
      {"off", static_cast<double>(kSimSlots) / tel_off_best},
      {"disabled", static_cast<double>(kSimSlots) / tel_disabled_best},
      {"sampling_64", static_cast<double>(kSimSlots) / tel_sampling_best}};
  otis::core::Table telemetry_table({"mode", "slots/s"});
  for (const TelemetryBenchRow& t : telemetry_rows) {
    telemetry_table.add(t.mode, static_cast<std::int64_t>(t.slots_per_sec));
  }
  telemetry_table.print(std::cout);
  // best >= 0.98 <=> disabled costs at most ~2% over the null pointer.
  const bool telemetry_pass = telemetry_speedup.best >= 0.98;

  // ---------------------------------------- runtime-channel overhead
  // Same ladder for the runtime-introspection channel, on the loop it
  // actually instruments: kSharded with 1 thread, so the paired ratio
  // isolates the channel's cost from parallel scaling noise. The
  // enforced bar is attached-but-disabled (one pointer+flag test
  // before the worker loop); the collecting row prices the timed
  // barriers for context.
  std::cout << "\n[runtime-stats] runtime-channel overhead on "
               "SK(4,3,2)/token, phased sharded(1) ("
            << kAcceptanceRounds << " paired rounds)\n\n";
  double rt_off_best = 1e300;
  double rt_disabled_best = 1e300;
  const PairedSpeedup runtime_speedup = paired_speedup(
      kAcceptanceRounds,
      [&] {
        const double t = time_sim_run(
            cases[0], otis::sim::Arbitration::kTokenRoundRobin,
            otis::sim::Engine::kSharded, 1, false, nullptr, nullptr,
            TelemetryMode::kOff, RuntimeStatsMode::kDisabled);
        rt_disabled_best = std::min(rt_disabled_best, t);
        return t;
      },
      [&] {
        const double t = time_sim_run(
            cases[0], otis::sim::Arbitration::kTokenRoundRobin,
            otis::sim::Engine::kSharded, 1, false, nullptr, nullptr,
            TelemetryMode::kOff, RuntimeStatsMode::kOff);
        rt_off_best = std::min(rt_off_best, t);
        return t;
      });
  double rt_collecting_best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    rt_collecting_best = std::min(
        rt_collecting_best,
        time_sim_run(cases[0], otis::sim::Arbitration::kTokenRoundRobin,
                     otis::sim::Engine::kSharded, 1, false, nullptr, nullptr,
                     TelemetryMode::kOff, RuntimeStatsMode::kCollecting));
  }
  const std::vector<RuntimeStatsBenchRow> runtime_rows = {
      {"off", static_cast<double>(kSimSlots) / rt_off_best},
      {"disabled", static_cast<double>(kSimSlots) / rt_disabled_best},
      {"collecting", static_cast<double>(kSimSlots) / rt_collecting_best}};
  otis::core::Table runtime_table({"mode", "slots/s"});
  for (const RuntimeStatsBenchRow& r : runtime_rows) {
    runtime_table.add(r.mode, static_cast<std::int64_t>(r.slots_per_sec));
  }
  runtime_table.print(std::cout);
  const bool runtime_pass = runtime_speedup.best >= 0.98;

  const bool queue_pass = queue_speedup.best >= 3.0;

  // ------------------------------------- parallel async engine scaling
  // Threads-vs-1 paired speedup of kAsyncSharded on the scale-up
  // topology under real skew. The contender uses min(8, cores) threads;
  // the 2.5x bar is judged only on hosts with >= 8 hardware threads.
  AsyncParallelResult async_parallel;
  async_parallel.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  async_parallel.threads = std::min(
      kAsyncParallelBarThreads, std::max(1, async_parallel.hardware_threads));
  async_parallel.skipped =
      async_parallel.hardware_threads < kAsyncParallelBarThreads;
  std::cout << "\n[async-parallel] kAsyncSharded on SK(10,10,3)/token, "
               "const skew, " << async_parallel.threads
            << " threads vs 1 (" << kAcceptanceRounds
            << " paired rounds)\n";
  RouteCompileResult route_compile;
  route_compile.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  route_compile.threads = std::min(
      kRouteCompileBarThreads, std::max(1, route_compile.hardware_threads));
  route_compile.skipped =
      route_compile.hardware_threads < kRouteCompileBarThreads;
  {
    otis::hypergraph::StackKautz big(10, 10, 3);
    const auto big_routes =
        std::make_shared<const otis::routing::CompressedRoutes>(
            otis::routing::compress_stack_kautz_routes(big));
    async_parallel.speedup = paired_speedup(
        kAcceptanceRounds,
        [&] {
          return async_parallel_seconds_once(big.stack(), big_routes,
                                             async_parallel.threads);
        },
        [&] {
          return async_parallel_seconds_once(big.stack(), big_routes, 1);
        });

    // ----------------------------------- parallel route-compile scaling
    // Pool-vs-serial paired speedup of the same topology's compressed
    // route compile (the campaign's per-topology setup cost). Both
    // sides produce bit-identical tables (test_parallel_compile); only
    // the wall clock differs.
    std::cout << "\n[route-compile] compressed SK(10,10,3) tables, "
              << route_compile.threads << "-worker pool vs serial ("
              << kAcceptanceRounds << " paired rounds)\n";
    otis::core::WorkStealingPool compile_pool(route_compile.threads);
    const auto compile_seconds_once =
        [&](otis::core::WorkStealingPool* pool) {
          const auto start = std::chrono::steady_clock::now();
          volatile std::size_t bytes =
              otis::routing::compress_stack_kautz_routes(big, pool)
                  .memory_bytes();
          (void)bytes;
          const auto stop = std::chrono::steady_clock::now();
          return std::chrono::duration<double>(stop - start).count();
        };
    route_compile.speedup = paired_speedup(
        kAcceptanceRounds, [&] { return compile_seconds_once(&compile_pool); },
        [&] { return compile_seconds_once(nullptr); });
  }
  const bool async_parallel_pass =
      async_parallel.speedup.best >= kAsyncParallelRequiredSpeedup;
  const bool route_compile_pass =
      route_compile.speedup.best >= kRouteCompileRequiredSpeedup;

  // The enforced phased-vs-event-queue ratio: dedicated paired rounds
  // on the acceptance case (SK(4,3,2), token), one full run per side
  // per round.
  const PairedSpeedup speedup = paired_speedup(
      kAcceptanceRounds,
      [&] {
        return time_sim_run(cases[0],
                            otis::sim::Arbitration::kTokenRoundRobin,
                            otis::sim::Engine::kPhased, 1, false, nullptr);
      },
      [&] {
        return time_sim_run(cases[0],
                            otis::sim::Arbitration::kTokenRoundRobin,
                            otis::sim::Engine::kEventQueue, 1, false,
                            nullptr);
      });
  const bool pass = speedup.best >= 6.0;
  write_bench_json(out_path, results, route_tables, queues, collectives,
                   phases, telemetry_rows, telemetry_speedup, telemetry_pass,
                   runtime_rows, runtime_speedup, runtime_pass,
                   queue_speedup, queue_pass, async_parallel,
                   async_parallel_pass, route_compile, route_compile_pass,
                   memory, memory_pass, speedup, pass);
  if (args.has("phases-out")) {
    const std::string phases_path =
        args.get("phases-out", "BENCH_phases.json");
    write_phases_json(phases_path, phases);
    std::cout << "\nphase breakdown written to " << phases_path << "\n";
  }
  std::cout << "\nphased vs event-queue on SK(4,3,2)/token: best "
            << otis::core::format_double(speedup.best, 2) << "x, median "
            << otis::core::format_double(speedup.median, 2) << "x over "
            << kAcceptanceRounds << " paired rounds (acceptance: best >= 6x: "
            << (pass ? "PASS" : "FAIL")
            << ")\ncalendar vs priority queue at " << kQueuePending
            << " pending: best "
            << otis::core::format_double(queue_speedup.best, 2)
            << "x, median "
            << otis::core::format_double(queue_speedup.median, 2)
            << "x (acceptance: best >= 3x: " << (queue_pass ? "PASS" : "FAIL")
            << ")\ndisabled-telemetry overhead: "
            << otis::core::format_double(
                   telemetry_speedup.best > 0.0
                       ? (1.0 / telemetry_speedup.best - 1.0) * 100.0
                       : 100.0,
                   2)
            << "% (acceptance: <= 2%: "
            << (telemetry_pass ? "PASS" : "FAIL")
            << ")\ndisabled-runtime-stats overhead (sharded loop): "
            << otis::core::format_double(
                   runtime_speedup.best > 0.0
                       ? (1.0 / runtime_speedup.best - 1.0) * 100.0
                       : 100.0,
                   2)
            << "% (acceptance: <= 2%: "
            << (runtime_pass ? "PASS" : "FAIL")
            << ")\nasync-sharded " << async_parallel.threads
            << "-thread scaling on SK(10,10,3): best "
            << otis::core::format_double(async_parallel.speedup.best, 2)
            << "x, median "
            << otis::core::format_double(async_parallel.speedup.median, 2)
            << "x (acceptance: best >= "
            << otis::core::format_double(kAsyncParallelRequiredSpeedup, 1)
            << "x at " << kAsyncParallelBarThreads << " threads: "
            << (async_parallel.skipped
                    ? "SKIPPED, host below 8 hardware threads"
                    : (async_parallel_pass ? "PASS" : "FAIL"))
            << ")\nparallel route compile on SK(10,10,3): best "
            << otis::core::format_double(route_compile.speedup.best, 2)
            << "x, median "
            << otis::core::format_double(route_compile.speedup.median, 2)
            << "x (acceptance: best >= "
            << otis::core::format_double(kRouteCompileRequiredSpeedup, 1)
            << "x at " << kRouteCompileBarThreads << " threads: "
            << (route_compile.skipped
                    ? "SKIPPED, host below 8 hardware threads"
                    : (route_compile_pass ? "PASS" : "FAIL"))
            << ")\nsketch-cell peak RSS: "
            << (memory.skipped ? std::string("SKIPPED, no /proc")
                               : std::to_string(memory.delta_kib()) +
                                     " KiB (acceptance: <= " +
                                     std::to_string(kMemoryBudgetKiB) +
                                     " KiB: " +
                                     (memory_pass ? "PASS" : "FAIL") + ")")
            << "\nresults written to " << out_path << "\n";
  return pass && queue_pass && telemetry_pass && runtime_pass &&
                 (async_parallel.skipped || async_parallel_pass) &&
                 (route_compile.skipped || route_compile_pass) &&
                 (memory.skipped || memory_pass)
             ? 0
             : 1;
}
