#pragma once
/// \file runner.hpp
/// Campaign execution: grid fan-out over a persistent work-stealing pool.
///
/// The runner expands the spec, drops cells already recorded in the
/// output manifest (--resume), compiles each distinct topology exactly
/// once (shared via shared_ptr across all its cells), and fans the
/// pending cells out over a WorkStealingPool. Workers simulate cells in
/// whatever order stealing yields; an ordered emit buffer then releases
/// finished cells to the sinks strictly in expansion order, so the
/// streamed JSONL/CSV bytes are identical for every --threads value
/// (per-cell seeding keeps each simulation independent of scheduling).
/// A cell's manifest line is written only after its rows are flushed to
/// every file sink, so resume never loses a cell. The ordering gives
/// at-least-once semantics: a crash in the narrow window between a
/// row's flush and its manifest line re-simulates that cell on resume
/// and appends its (deterministically identical) rows a second time —
/// the manifest, not the row streams, is the source of truth for
/// completion.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"

namespace otis::campaign {

/// A pool of worker threads with per-worker deques and work stealing.
/// Threads start once and persist across run() calls (a campaign is one
/// call today, but the pool is reusable by design); each run() scatters
/// item indices into contiguous per-worker blocks, workers drain their
/// own block front-to-back and steal from the back of victims' deques
/// when empty.
class WorkStealingPool {
 public:
  /// `threads` <= 0 means hardware concurrency.
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, count); returns when all completed.
  /// fn must be thread-safe across distinct items. Exceptions thrown by
  /// fn are captured and the first one is rethrown after the batch.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// As above with the executing worker's index [0, thread_count())
  /// passed as the second argument -- the stable per-thread identity
  /// (steals included) that e.g. telemetry span tracks key off.
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> items;
  };

  void worker_main(std::size_t self);
  bool try_acquire(std::size_t self, std::size_t& item);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;  ///< items of the current batch not yet done
  std::size_t active_ = 0;     ///< workers currently inside the batch
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// How to execute a campaign (as opposed to *what* to run, the spec).
struct CampaignOptions {
  int threads = 1;       ///< worker pool size; <= 0 = hardware concurrency
  std::string out_dir;   ///< when set: results.jsonl/results.csv/manifest.txt
  bool resume = false;   ///< skip cells listed in the manifest, append files
  bool write_jsonl = true;  ///< emit out_dir/results.jsonl
  bool write_csv = true;    ///< emit out_dir/results.csv
  /// Deterministic cross-machine split: this invocation runs only cells
  /// with expansion index == shard_index (mod shard_count). The split
  /// depends on the spec alone (never on manifests), so n machines
  /// running shards 0/n .. (n-1)/n cover the grid exactly once;
  /// concatenating their results.jsonl and manifest.txt into one
  /// directory yields a full-grid output a --resume run recognizes as
  /// complete (and refolds into the full aggregate).
  int shard_index = 0;
  int shard_count = 1;
  /// Heartbeat on stderr every ~2 s: cells done/total, rate, ETA, and
  /// busy workers. Diagnostics only -- never touches the result files.
  bool progress = false;
};

/// What one run() did.
struct CampaignReport {
  std::int64_t total_cells = 0;        ///< grid size
  std::int64_t completed_cells = 0;    ///< simulated this invocation
  std::int64_t skipped_cells = 0;      ///< already in the manifest
  std::int64_t out_of_shard_cells = 0;  ///< left to other shards
  std::int64_t topologies_compiled = 0;  ///< routing-table sets built
  double elapsed_seconds = 0.0;
};

/// Executes CampaignSpecs. Attach extra sinks (e.g. AggregateSink)
/// before run(); file sinks for out_dir are managed internally.
class CampaignRunner {
 public:
  /// Output file names inside CampaignOptions::out_dir.
  static constexpr const char* kJsonlFile = "results.jsonl";
  static constexpr const char* kCsvFile = "results.csv";
  static constexpr const char* kManifestFile = "manifest.txt";

  explicit CampaignRunner(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// Registers a sink that receives every cell result in expansion
  /// order (in addition to the out_dir file sinks).
  void add_sink(std::shared_ptr<ResultSink> sink);

  /// Expands, skips, compiles, simulates, streams. May be called again
  /// (e.g. to re-drive the same spec at different options); sinks added
  /// via add_sink stay attached.
  CampaignReport run(const CampaignOptions& options = {});

 private:
  CampaignSpec spec_;
  std::vector<std::shared_ptr<ResultSink>> extra_sinks_;
};

}  // namespace otis::campaign
