// Perf F2: arbitration-policy ablation on SK(6,3,2) -- the "distributed
// control" knob of the companion paper [11]. Token round-robin (perfect
// coordination) vs random winner (genie arbitration) vs slotted ALOHA
// (fully distributed, collisions possible). Expected shape: token and
// random deliver similar goodput with zero collisions; ALOHA loses
// coupler-slots to collisions and saturates visibly lower.

#include <iostream>
#include <memory>

#include "core/table.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/experiment.hpp"
#include "sim/ops_network.hpp"

namespace {

// Topology and routing tables are immutable across trials: build once,
// share between the sweep's worker threads.
struct SharedNetwork {
  SharedNetwork()
      : sk(6, 3, 2),
        routes(std::make_shared<const otis::routing::CompiledRoutes>(
            otis::routing::compile_stack_kautz_routes(sk))) {}
  otis::hypergraph::StackKautz sk;
  std::shared_ptr<const otis::routing::CompiledRoutes> routes;
};

otis::sim::RunMetrics run_with(const SharedNetwork& net,
                               otis::sim::Arbitration policy, double load,
                               std::uint64_t seed) {
  otis::sim::SimConfig config;
  config.arbitration = policy;
  config.warmup_slots = 300;
  config.measure_slots = 1500;
  config.seed = seed;
  otis::sim::OpsNetworkSim sim(
      net.sk.stack(), net.routes,
      std::make_unique<otis::sim::UniformTraffic>(72, load), config);
  return sim.run();
}

}  // namespace

int main() {
  std::cout << "[Perf F2] arbitration ablation on SK(6,3,2), uniform "
               "traffic, 5 seeds\n\n";
  const std::vector<double> loads{0.1, 0.3, 0.6, 0.9};
  const std::vector<std::uint64_t> seeds{11, 12, 13, 14, 15};

  const SharedNetwork net;
  otis::core::Table table({"policy", "load", "throughput", "mean lat",
                           "p95 lat", "collisions/coupler/slot"});
  std::vector<std::vector<otis::sim::SweepPoint>> results;
  for (otis::sim::Arbitration policy :
       {otis::sim::Arbitration::kTokenRoundRobin,
        otis::sim::Arbitration::kRandomWinner,
        otis::sim::Arbitration::kSlottedAloha}) {
    auto points = otis::sim::run_load_sweep(
        [policy, &net](double load, std::uint64_t seed) {
          return run_with(net, policy, load, seed);
        },
        loads, 72, 48, seeds);
    for (const auto& p : points) {
      table.add(otis::sim::arbitration_name(policy), p.load,
                p.throughput_per_node, p.mean_latency, p.p95_latency,
                p.collision_rate);
    }
    results.push_back(std::move(points));
  }
  table.print(std::cout);

  // Shapes: token/random collision-free; ALOHA collides and loses
  // throughput at saturation; token >= aloha throughput at high load.
  const auto& token = results[0];
  const auto& random = results[1];
  const auto& aloha = results[2];
  const bool no_collisions =
      token.back().collision_rate == 0.0 && random.back().collision_rate == 0.0;
  const bool aloha_collides = aloha.back().collision_rate > 0.0;
  const bool token_beats_aloha = token.back().throughput_per_node >
                                 aloha.back().throughput_per_node;
  std::cout << "\nshapes: token/random collision-free: "
            << (no_collisions ? "yes" : "NO")
            << "; ALOHA collides: " << (aloha_collides ? "yes" : "NO")
            << "; token saturation > ALOHA saturation: "
            << (token_beats_aloha ? "yes" : "NO") << "\n";
  return no_collisions && aloha_collides && token_beats_aloha ? 0 : 1;
}
