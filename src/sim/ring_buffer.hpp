#pragma once
/// \file ring_buffer.hpp
/// Flat FIFO ring buffer used for the phased engine's virtual output
/// queues. std::deque allocates per block and chases pointers; the VOQs
/// of a slot-synchronous simulator are touched millions of times per
/// run, so they live in one contiguous power-of-two-sized array with
/// head/size cursors. Capacity grows on demand (unbounded queues); a
/// simulator-enforced cap simply stops push_back calls earlier.

#include <cstddef>
#include <utility>
#include <vector>

namespace otis::sim {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void push_back(T value) {
    if (size_ == buffer_.size()) {
      grow();
    }
    buffer_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() noexcept { return buffer_[head_]; }
  [[nodiscard]] const T& front() const noexcept { return buffer_[head_]; }

  void pop_front() noexcept {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

 private:
  void grow() {
    const std::size_t capacity = buffer_.empty() ? 8 : buffer_.size() * 2;
    std::vector<T> next(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buffer_[(head_ + i) & mask_]);
    }
    buffer_ = std::move(next);
    head_ = 0;
    mask_ = capacity - 1;
  }

  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace otis::sim
