// Fig. 7 of the paper: the stack-Kautz network SK(6,3,2) -- 12 groups of
// 6 processors wired along KG(3,2) with loops. Regenerates the figure's
// group/processor numbering and machine-checks every structural claim of
// Def. 4 and Sec. 2.7.

#include <iostream>

#include "core/table.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Fig. 7] stack-Kautz SK(6,3,2)\n\n";
  otis::hypergraph::StackKautz sk(6, 3, 2);
  const otis::topology::Kautz& kautz = sk.kautz();

  otis::core::Table table({"group", "word", "processors",
                           "out-neighbor groups"});
  for (std::int64_t x = 0; x < sk.group_count(); ++x) {
    std::string neighbors;
    for (std::int64_t y : kautz.graph().out_neighbors(x)) {
      neighbors += (neighbors.empty() ? "" : " ") +
                   otis::topology::Kautz::word_to_string(kautz.word_of(y));
    }
    neighbors += " +loop";
    table.add(std::to_string(x),
              otis::topology::Kautz::word_to_string(kautz.word_of(x)),
              std::to_string(x * 6) + ".." + std::to_string(x * 6 + 5),
              neighbors);
  }
  table.print(std::cout);

  bool ok = sk.processor_count() == 72 && sk.group_count() == 12 &&
            sk.processor_degree() == 4 && sk.coupler_count() == 48 &&
            sk.diameter() == 2;
  const std::int64_t hyper_diameter = sk.stack().hypergraph().diameter();
  ok = ok && hyper_diameter == 2;
  // Every processor transmits on 4 couplers and listens on 4.
  for (std::int64_t p = 0; p < sk.processor_count() && ok; ++p) {
    ok = sk.stack().hypergraph().out_degree(p) == 4 &&
         sk.stack().hypergraph().in_degree(p) == 4;
  }

  std::cout << "\n72 processors (12 groups of 6), degree 4, 48 degree-6 "
               "couplers, diameter "
            << hyper_diameter << "\n"
            << "figure reproduced: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
