// design_explorer: sweep the network families of the paper and print the
// hardware/performance trade-off table a system architect would use to
// pick one -- processors, transceivers per node, couplers, OTIS blocks,
// diameter and per-hop optical loss, for POPS, stack-Kautz,
// stack-Imase-Itoh, point-to-point Kautz (Corollary 1) and the baselines.
//
// Usage: design_explorer [--max-n=600]

#include <iostream>

#include "core/args.hpp"
#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "optics/power.hpp"
#include "topology/kautz.hpp"

namespace {

struct Row {
  std::string family;
  std::int64_t processors;
  std::int64_t tx_per_node;
  std::int64_t couplers;
  std::int64_t otis_blocks;
  std::int64_t diameter;
  double max_loss_db;
  bool verified;
};

Row measure(const std::string& family, otis::designs::NetworkDesign design,
            std::int64_t diameter) {
  otis::designs::VerificationResult v = otis::designs::verify_design(design);
  otis::designs::BillOfMaterials bom =
      otis::designs::bill_of_materials(design.netlist);
  return Row{family,
             design.processor_count,
             design.processor_count > 0
                 ? bom.transmitters / design.processor_count
                 : 0,
             bom.multiplexers,
             bom.total_otis_blocks(),
             diameter,
             v.max_loss_db,
             v.ok};
}

}  // namespace

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv, {"max-n"});
  const std::int64_t max_n = args.get_int("max-n", 600);

  std::cout << "otisnet design explorer: hardware cost per family\n"
            << "(every design is built as a full optical netlist and "
               "verified by light tracing)\n\n";

  otis::core::Table table({"design", "N", "tx/node", "couplers",
                           "OTIS blocks", "diameter", "max loss dB",
                           "verified"});

  auto add = [&](Row row) {
    if (row.processors > max_n) {
      return;
    }
    table.add(row.family, row.processors, row.tx_per_node, row.couplers,
              row.otis_blocks, row.diameter,
              otis::core::format_double(row.max_loss_db, 2), row.verified);
  };

  // Single-hop families.
  for (std::int64_t g : {2, 4, 6, 8}) {
    const std::int64_t t = 8;
    add(measure("POPS(" + std::to_string(t) + "," + std::to_string(g) + ")",
                otis::designs::pops_design(t, g), 1));
  }
  add(measure("single-OPS bus N=64",
              otis::designs::single_ops_bus_design(64), 1));

  // Multi-hop multi-OPS families.
  for (int d = 2; d <= 4; ++d) {
    for (int k = 2; k <= 3; ++k) {
      otis::hypergraph::StackKautz sk(8, d, k);
      if (sk.processor_count() > max_n) {
        continue;
      }
      add(measure("SK(8," + std::to_string(d) + "," + std::to_string(k) +
                      ")",
                  otis::designs::stack_kautz_design(8, d, k), k));
    }
  }
  for (std::int64_t n : {10, 20, 40}) {
    otis::hypergraph::StackImaseItoh sii(8, 3, n);
    add(measure("SII(8,3," + std::to_string(n) + ")",
                otis::designs::stack_imase_itoh_design(8, 3, n),
                static_cast<std::int64_t>(sii.diameter_bound())));
  }

  // Point-to-point Kautz via one OTIS (Corollary 1) vs dedicated fibers.
  for (int d = 2; d <= 3; ++d) {
    otis::topology::Kautz kautz(d, 3);
    add(measure("KG(" + std::to_string(d) + ",3) via OTIS",
                otis::designs::imase_itoh_design(d, kautz.order()), 3));
    add(measure("KG(" + std::to_string(d) + ",3) via fibers",
                otis::designs::fiber_point_to_point_design(
                    kautz.graph(),
                    "KG(" + std::to_string(d) + ",3) wired"),
                3));
  }

  table.print(std::cout);

  // Power feasibility context.
  otis::optics::LossModel model;
  otis::optics::PowerBudget budget;
  std::cout << "\npower budget: tx "
            << otis::core::format_double(budget.transmit_power_dbm, 1)
            << " dBm, sensitivity "
            << otis::core::format_double(budget.receiver_sensitivity_dbm, 1)
            << " dBm, margin "
            << otis::core::format_double(budget.system_margin_db, 1)
            << " dB => max OPS degree s = "
            << otis::optics::max_stacking_factor(budget, model) << "\n";
  return 0;
}
