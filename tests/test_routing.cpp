// Tests for routing: Kautz label routing (optimality vs BFS), Imase-Itoh
// arithmetic routing, fault-tolerant routing (the [17] k+2 bound under
// d-1 faults), and the stack/POPS routers used by the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "graph/algorithms.hpp"
#include "routing/fault_tolerant.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/kautz_routing.hpp"
#include "routing/stack_routing.hpp"

namespace otis::routing {
namespace {

TEST(KautzRouter, OverlapBasics) {
  EXPECT_EQ(KautzRouter::overlap({0, 1, 2}, {0, 1, 2}), 3);
  EXPECT_EQ(KautzRouter::overlap({0, 1, 2}, {1, 2, 0}), 2);
  EXPECT_EQ(KautzRouter::overlap({0, 1, 2}, {2, 0, 1}), 1);
  EXPECT_EQ(KautzRouter::overlap({0, 1, 2}, {1, 0, 2}), 0);
}

TEST(KautzRouter, RouteWordsFollowArcs) {
  topology::Kautz kautz(2, 3);
  KautzRouter router(kautz);
  const topology::Word src{0, 1, 0};
  const topology::Word dst{2, 1, 2};
  auto words = router.route_words(src, dst);
  EXPECT_EQ(words.front(), src);
  EXPECT_EQ(words.back(), dst);
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    EXPECT_TRUE(kautz.graph().has_arc(kautz.vertex_of(words[i]),
                                      kautz.vertex_of(words[i + 1])));
  }
}

TEST(KautzRouter, RouteToSelfIsEmptyPath) {
  topology::Kautz kautz(2, 2);
  KautzRouter router(kautz);
  auto path = router.route(3, 3);
  EXPECT_EQ(path, (std::vector<std::int64_t>{3}));
  EXPECT_EQ(router.distance(3, 3), 0);
}

/// The paper's Sec. 2.5 claim: label routing is shortest-path and every
/// route has length <= k. Checked against BFS for all ordered pairs.
class KautzRoutingOptimality
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KautzRoutingOptimality, LabelRouteEqualsBfsDistance) {
  const auto [d, k] = GetParam();
  topology::Kautz kautz(d, k);
  KautzRouter router(kautz);
  for (std::int64_t u = 0; u < kautz.order(); ++u) {
    auto bfs = graph::bfs_distances(kautz.graph(), u);
    for (std::int64_t v = 0; v < kautz.order(); ++v) {
      const int label_distance = router.distance(u, v);
      EXPECT_EQ(label_distance,
                static_cast<int>(bfs[static_cast<std::size_t>(v)]))
          << "KG(" << d << "," << k << ") " << u << "->" << v;
      EXPECT_LE(label_distance, k);
      auto path = router.route(u, v);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, label_distance);
      EXPECT_TRUE(graph::is_walk(kautz.graph(), path) || path.size() == 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KautzRoutingOptimality,
                         ::testing::Values(std::pair<int, int>{2, 2},
                                           std::pair<int, int>{2, 3},
                                           std::pair<int, int>{3, 2},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{2, 4},
                                           std::pair<int, int>{3, 3}));

TEST(KautzRouter, NextHopConvergesToTarget) {
  topology::Kautz kautz(3, 3);
  KautzRouter router(kautz);
  core::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t current = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(kautz.order())));
    const std::int64_t target = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(kautz.order())));
    int hops = 0;
    while (current != target) {
      current = router.next_hop(current, target);
      ++hops;
      ASSERT_LE(hops, kautz.diameter());
    }
  }
}

TEST(ImaseItohRouter, DistanceMatchesBfsOnSweep) {
  for (int d = 2; d <= 3; ++d) {
    for (std::int64_t n : {7LL, 12LL, 20LL, 25LL}) {
      topology::ImaseItoh ii(d, n);
      ImaseItohRouter router(ii);
      for (std::int64_t u = 0; u < n; ++u) {
        auto bfs = graph::bfs_distances(ii.graph(), u);
        for (std::int64_t v = 0; v < n; ++v) {
          EXPECT_EQ(router.distance(u, v),
                    static_cast<int>(bfs[static_cast<std::size_t>(v)]))
              << "II(" << d << "," << n << ") " << u << "->" << v;
        }
      }
    }
  }
}

TEST(ImaseItohRouter, RoutesAreValidWalks) {
  topology::ImaseItoh ii(3, 20);
  ImaseItohRouter router(ii);
  for (std::int64_t u = 0; u < 20; ++u) {
    for (std::int64_t v = 0; v < 20; ++v) {
      auto path = router.route(u, v);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(ii.graph().has_arc(path[i], path[i + 1]));
      }
    }
  }
}

TEST(ImaseItohRouter, LabelsReproducePath) {
  topology::ImaseItoh ii(4, 17);
  ImaseItohRouter router(ii);
  for (std::int64_t u = 0; u < 17; ++u) {
    for (std::int64_t v = 0; v < 17; ++v) {
      std::int64_t current = u;
      for (int alpha : router.route_labels(u, v)) {
        current = ii.successor(current, alpha);
      }
      EXPECT_EQ(current, v);
    }
  }
}

TEST(ImaseItohRouter, AllShortestRoutesAreShortestAndDistinct) {
  topology::ImaseItoh ii(2, 12);
  ImaseItohRouter router(ii);
  for (std::int64_t u = 0; u < 12; ++u) {
    for (std::int64_t v = 0; v < 12; ++v) {
      const int dist = router.distance(u, v);
      auto routes = router.all_shortest_label_routes(u, v);
      EXPECT_GE(routes.size(), 1u);
      std::set<std::vector<int>> unique(routes.begin(), routes.end());
      EXPECT_EQ(unique.size(), routes.size());
      for (const auto& labels : routes) {
        EXPECT_EQ(static_cast<int>(labels.size()), dist);
        std::int64_t current = u;
        for (int alpha : labels) {
          current = ii.successor(current, alpha);
        }
        EXPECT_EQ(current, v);
      }
    }
  }
}

TEST(ImaseItohRouter, AgreesWithKautzLabelRouting) {
  // On a Kautz order, arithmetic routing and word routing must give the
  // same distances (both are exact).
  topology::Kautz kautz(3, 2);
  KautzRouter word_router(kautz);
  ImaseItohRouter int_router(topology::ImaseItoh(3, 12));
  for (std::int64_t u = 0; u < 12; ++u) {
    for (std::int64_t v = 0; v < 12; ++v) {
      EXPECT_EQ(word_router.distance(u, v), int_router.distance(u, v));
    }
  }
}

TEST(FaultTolerant, CandidatesAreValidAndBounded) {
  topology::Kautz kautz(3, 2);
  FaultTolerantKautzRouter router(kautz);
  for (std::int64_t u = 0; u < kautz.order(); ++u) {
    for (std::int64_t v = 0; v < kautz.order(); ++v) {
      if (u == v) {
        continue;
      }
      auto candidates = router.candidate_paths(u, v);
      EXPECT_GE(candidates.size(), static_cast<std::size_t>(kautz.degree()));
      for (const auto& path : candidates) {
        EXPECT_EQ(path.front(), u);
        EXPECT_EQ(path.back(), v);
        EXPECT_LE(static_cast<int>(path.size()) - 1, kautz.diameter() + 2);
        EXPECT_TRUE(graph::is_walk(kautz.graph(), path));
      }
    }
  }
}

/// The [17] theorem, empirically: with at most d-1 node faults, a path
/// of length <= k+2 survives between any two live nodes.
class FaultToleranceBound
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FaultToleranceBound, SurvivesDMinusOneFaults) {
  const auto [d, k] = GetParam();
  topology::Kautz kautz(d, k);
  FaultTolerantKautzRouter router(kautz);
  core::Rng rng(static_cast<std::uint64_t>(d * 100 + k));
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    // Pick d-1 distinct faults plus a live (source, target) pair.
    auto picks = rng.sample_without_replacement(
        static_cast<std::size_t>(kautz.order()),
        static_cast<std::size_t>(d - 1) + 2);
    const std::int64_t source = static_cast<std::int64_t>(picks[0]);
    const std::int64_t target = static_cast<std::int64_t>(picks[1]);
    std::vector<std::int64_t> faults(picks.begin() + 2, picks.end());
    EXPECT_TRUE(router.survives_with_bound(source, target, faults))
        << "KG(" << d << "," << k << ") trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultToleranceBound,
                         ::testing::Values(std::pair<int, int>{2, 2},
                                           std::pair<int, int>{2, 3},
                                           std::pair<int, int>{3, 2},
                                           std::pair<int, int>{3, 3},
                                           std::pair<int, int>{4, 2}));

TEST(FaultTolerant, AvoidsFaultyVertices) {
  topology::Kautz kautz(3, 2);
  FaultTolerantKautzRouter router(kautz);
  core::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    auto picks = rng.sample_without_replacement(12, 4);
    const std::int64_t source = static_cast<std::int64_t>(picks[0]);
    const std::int64_t target = static_cast<std::int64_t>(picks[1]);
    std::vector<std::int64_t> faults{static_cast<std::int64_t>(picks[2]),
                                     static_cast<std::int64_t>(picks[3])};
    auto route = router.route_avoiding(source, target, faults);
    ASSERT_TRUE(route.has_value());
    for (std::size_t i = 1; i + 1 < route->path.size(); ++i) {
      EXPECT_EQ(std::find(faults.begin(), faults.end(), route->path[i]),
                faults.end());
    }
    EXPECT_TRUE(graph::is_walk(kautz.graph(), route->path));
  }
}

TEST(FaultTolerant, NoFaultsGivesShortestPath) {
  topology::Kautz kautz(2, 3);
  FaultTolerantKautzRouter router(kautz);
  KautzRouter plain(kautz);
  for (std::int64_t u = 0; u < 12; ++u) {
    for (std::int64_t v = 0; v < 12; ++v) {
      if (u == v) {
        continue;
      }
      auto route = router.route_avoiding(u, v, {});
      ASSERT_TRUE(route.has_value());
      EXPECT_FALSE(route->used_bfs_fallback);
      EXPECT_EQ(static_cast<int>(route->path.size()) - 1,
                plain.distance(u, v));
    }
  }
}

TEST(FaultTolerant, ArcFaultsAvoided) {
  topology::Kautz kautz(3, 2);
  FaultTolerantKautzRouter router(kautz);
  core::Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t source = static_cast<std::int64_t>(rng.uniform(12));
    std::int64_t target = static_cast<std::int64_t>(rng.uniform(12));
    if (source == target) {
      continue;
    }
    // Fail d-1 = 2 random arcs.
    std::vector<graph::Arc> faulty;
    auto arcs = kautz.graph().arcs();
    for (std::size_t pick :
         rng.sample_without_replacement(arcs.size(), 2)) {
      faulty.push_back(arcs[pick]);
    }
    auto route = router.route_avoiding_arcs(source, target, faulty);
    ASSERT_TRUE(route.has_value());
    for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
      EXPECT_EQ(std::find(faulty.begin(), faulty.end(),
                          graph::Arc{route->path[i], route->path[i + 1]}),
                faulty.end());
    }
    EXPECT_TRUE(router.survives_arc_faults_with_bound(source, target,
                                                      faulty));
  }
}

TEST(FaultTolerant, ArcFaultBoundHoldsForDMinusOneLinkFaults) {
  // The paper's Sec. 2.5 claim covers "link or node faults"; check the
  // link half: d-1 arc faults leave a route of length <= k+2.
  topology::Kautz kautz(3, 3);
  FaultTolerantKautzRouter router(kautz);
  core::Rng rng(66);
  auto arcs = kautz.graph().arcs();
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t source =
        static_cast<std::int64_t>(rng.uniform(36));
    std::int64_t target = static_cast<std::int64_t>(rng.uniform(36));
    if (source == target) {
      continue;
    }
    std::vector<graph::Arc> faulty;
    for (std::size_t pick :
         rng.sample_without_replacement(arcs.size(), 2)) {
      faulty.push_back(arcs[pick]);
    }
    EXPECT_TRUE(
        router.survives_arc_faults_with_bound(source, target, faulty));
  }
}

TEST(StackKautzRouter, DistanceCases) {
  hypergraph::StackKautz sk(6, 3, 2);
  StackKautzRouter router(sk);
  // Same node.
  EXPECT_EQ(router.distance(10, 10), 0);
  // Same group, different copies: the loop coupler, 1 hop.
  EXPECT_EQ(router.distance(sk.processor(2, 0), sk.processor(2, 5)), 1);
  // Different groups: Kautz distance, <= k = 2.
  for (std::int64_t p = 0; p < sk.processor_count(); p += 7) {
    for (std::int64_t q = 0; q < sk.processor_count(); q += 5) {
      EXPECT_LE(router.distance(p, q), 2);
    }
  }
}

TEST(StackKautzRouter, RoutesAreCouplerConsistent) {
  hypergraph::StackKautz sk(3, 2, 2);
  StackKautzRouter router(sk);
  const auto& hg = sk.stack().hypergraph();
  for (std::int64_t src = 0; src < sk.processor_count(); ++src) {
    for (std::int64_t dst = 0; dst < sk.processor_count(); ++dst) {
      auto hops = router.route(src, dst);
      EXPECT_EQ(static_cast<int>(hops.size()), router.distance(src, dst));
      std::int64_t current = src;
      for (const StackHop& hop : hops) {
        EXPECT_EQ(hop.sender, current);
        const auto& arc = hg.hyperarc(hop.coupler);
        // The sender must feed the coupler, the relay must hear it.
        EXPECT_NE(std::find(arc.sources.begin(), arc.sources.end(),
                            hop.sender),
                  arc.sources.end());
        EXPECT_NE(std::find(arc.targets.begin(), arc.targets.end(),
                            hop.relay),
                  arc.targets.end());
        current = hop.relay;
      }
      EXPECT_EQ(current, dst);
    }
  }
}

TEST(StackKautzRouter, NextCouplerAndRelayDriveDelivery) {
  hypergraph::StackKautz sk(4, 3, 2);
  StackKautzRouter router(sk);
  core::Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    std::int64_t current = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(sk.processor_count())));
    const std::int64_t target = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(sk.processor_count())));
    int hops = 0;
    while (current != target) {
      const auto coupler = router.next_coupler(current, target);
      current = router.relay_on(coupler, target);
      ++hops;
      ASSERT_LE(hops, sk.diameter() + 1);
    }
  }
}

TEST(PopsRouter, AlwaysSingleHop) {
  hypergraph::Pops pops(4, 3);
  PopsRouter router(pops);
  for (std::int64_t src = 0; src < pops.processor_count(); ++src) {
    for (std::int64_t dst = 0; dst < pops.processor_count(); ++dst) {
      if (src == dst) {
        EXPECT_EQ(router.distance(src, dst), 0);
        EXPECT_TRUE(router.route(src, dst).empty());
        continue;
      }
      EXPECT_EQ(router.distance(src, dst), 1);
      auto hops = router.route(src, dst);
      ASSERT_EQ(hops.size(), 1u);
      const auto& arc =
          pops.stack().hypergraph().hyperarc(hops[0].coupler);
      EXPECT_NE(std::find(arc.sources.begin(), arc.sources.end(), src),
                arc.sources.end());
      EXPECT_NE(std::find(arc.targets.begin(), arc.targets.end(), dst),
                arc.targets.end());
    }
  }
}

}  // namespace
}  // namespace otis::routing
