#pragma once
/// \file isomorphism.hpp
/// Isomorphism checking for the identities the paper relies on
/// (Corollary 1: KG(d,k) = II(d, d^{k-1}(d+1)); Fig. 6 line digraph
/// iterations; II(g,g) = K+_g).
///
/// Two modes: verification of an *explicit* mapping (cheap, used whenever
/// a construction provides its own bijection), and a backtracking search
/// for small graphs (used as an independent cross-check in tests).

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace otis::graph {

/// Checks that `mapping` (mapping[u] = image of u) is a bijection carrying
/// the arc multiset of `g` exactly onto the arc multiset of `h`.
[[nodiscard]] bool verify_isomorphism(const Digraph& g, const Digraph& h,
                                      const std::vector<Vertex>& mapping);

/// Backtracking isomorphism search with degree-profile pruning.
/// Exponential worst case; intended for the paper's figure-sized graphs
/// (order <= ~60). Returns a witness mapping or nullopt.
[[nodiscard]] std::optional<std::vector<Vertex>> find_isomorphism(
    const Digraph& g, const Digraph& h, std::int64_t max_steps = 50'000'000);

}  // namespace otis::graph
