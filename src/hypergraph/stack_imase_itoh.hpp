#pragma once
/// \file stack_imase_itoh.hpp
/// Stack-Imase-Itoh networks SII(s, d, n) -- the generalization the paper
/// notes at the end of Sec. 2.7 ("the definition of stack-Kautz network
/// can be trivially extended to the stack-Imase-Itoh network").
///
/// SII(s, d, n) = sigma(s, II+(d, n)) where II+(d,n) is the Imase-Itoh
/// graph with a loop added at every vertex. Unlike stack-Kautz it exists
/// for *every* group count n, which is what makes it deployable: you can
/// grow the machine one group at a time.

#include <cstdint>

#include "hypergraph/stack_graph.hpp"
#include "topology/imase_itoh.hpp"

namespace otis::hypergraph {

/// SII(s, d, n): s-stacked Imase-Itoh network with loop couplers.
class StackImaseItoh {
 public:
  /// Requires s >= 1, d >= 1, n >= d.
  StackImaseItoh(std::int64_t stacking_factor, int degree, std::int64_t n);

  [[nodiscard]] std::int64_t stacking_factor() const noexcept { return s_; }
  [[nodiscard]] int base_degree() const noexcept { return ii_.degree(); }
  [[nodiscard]] int processor_degree() const noexcept {
    return ii_.degree() + 1;
  }
  [[nodiscard]] std::int64_t group_count() const noexcept {
    return ii_.order();
  }
  [[nodiscard]] std::int64_t processor_count() const noexcept {
    return s_ * ii_.order();
  }
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return group_count() * (ii_.degree() + 1);
  }

  /// Group-level diameter bound ceil(log_d n) from Imase-Itoh 1981.
  [[nodiscard]] unsigned diameter_bound() const {
    return ii_.diameter_formula();
  }

  [[nodiscard]] const topology::ImaseItoh& imase_itoh() const noexcept {
    return ii_;
  }

  [[nodiscard]] const StackGraph& stack() const noexcept { return stack_; }

  [[nodiscard]] graph::Vertex group_of(Node p) const {
    return stack_.project(p);
  }
  [[nodiscard]] std::int64_t index_in_group(Node p) const {
    return stack_.copy_index(p);
  }
  [[nodiscard]] Node processor(graph::Vertex x, std::int64_t y) const {
    return stack_.node_of(x, y);
  }

  /// Coupler of group x's arc alpha (1..d), or the loop coupler.
  [[nodiscard]] HyperarcId arc_coupler(graph::Vertex x, int alpha) const;
  [[nodiscard]] HyperarcId loop_coupler(graph::Vertex x) const;

 private:
  std::int64_t s_;
  topology::ImaseItoh ii_;
  StackGraph stack_;
};

/// II+(d, n): Imase-Itoh graph with a loop appended at every vertex
/// (after the d Imase-Itoh-ordered arcs).
[[nodiscard]] graph::Digraph imase_itoh_with_loops(int degree, std::int64_t n);

}  // namespace otis::hypergraph
