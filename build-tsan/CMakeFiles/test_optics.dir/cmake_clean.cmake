file(REMOVE_RECURSE
  "CMakeFiles/test_optics.dir/tests/test_optics.cpp.o"
  "CMakeFiles/test_optics.dir/tests/test_optics.cpp.o.d"
  "test_optics"
  "test_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
