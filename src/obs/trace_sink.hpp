#pragma once
/// \file trace_sink.hpp
/// Chrome-trace-format span export (chrome://tracing / Perfetto).
///
/// ChromeTraceSink buffers complete ("ph":"X") events and writes one
/// `{"traceEvents": [...]}` JSON document on close(), which both the
/// legacy chrome://tracing viewer and https://ui.perfetto.dev load
/// directly. Timestamps are microseconds on a steady clock whose epoch
/// is the sink's construction, so every span in one campaign shares a
/// timeline. The sink is thread-safe (campaign workers emit
/// concurrently); events are sorted by (pid, tid, ts) at close so the
/// output is stable for tooling even though arrival order races.
///
/// Track convention: pid 0 always; tid 0 is the orchestrator
/// (campaign expansion, topology compilation, standalone runs), tid
/// 1 + w is campaign worker w. Within one tid, spans strictly nest --
/// scripts/check_trace.py enforces this on CI artifacts.
///
/// Wall-clock timestamps are inherently nondeterministic; traces are
/// diagnostics, never inputs, and the determinism guarantees cover
/// RunMetrics / probe values / timeseries rows only.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace otis::obs {

namespace detail {
/// Minimal JSON string escape (quotes, backslashes, control bytes);
/// shared by the trace and timeseries writers.
[[nodiscard]] std::string json_escaped(const std::string& text);
}  // namespace detail

/// One buffered complete event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< start, microseconds since sink epoch
  std::int64_t dur_us = 0;  ///< duration, microseconds
  std::int32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class ChromeTraceSink {
 public:
  /// Events are written to `path` on close() (and from the destructor
  /// if close() was never called).
  explicit ChromeTraceSink(std::string path);
  ~ChromeTraceSink();

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  /// Microseconds since the sink's epoch (monotone).
  [[nodiscard]] std::int64_t now_us() const;

  void emit(TraceEvent event);

  /// Sorts, writes, and closes the file; idempotent.
  void close();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t event_count() const;

 private:
  std::string path_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  bool closed_ = false;
};

/// RAII complete-event span: records now_us() at construction and
/// emits on destruction (or end()). A default-constructed / null-sink
/// span is inert, so call sites need no branching.
class Span {
 public:
  Span() = default;
  Span(ChromeTraceSink* sink, std::int32_t tid, std::string name,
       std::string category,
       std::vector<std::pair<std::string, std::string>> args = {});
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { swap(other); }
  Span& operator=(Span&& other) noexcept {
    end();
    swap(other);
    return *this;
  }

  /// Emits the event now; further calls are no-ops.
  void end();

 private:
  void swap(Span& other) noexcept;

  ChromeTraceSink* sink_ = nullptr;
  std::int32_t tid_ = 0;
  std::int64_t start_us_ = 0;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace otis::obs
