#pragma once
/// \file metrics.hpp
/// Measurement collection for the network simulator.

#include <cstdint>
#include <vector>

namespace otis::sim {

/// Online latency statistics with full-sample percentiles.
class LatencyStats {
 public:
  /// Inline: called once per delivered packet in every engine hot loop.
  void record(std::int64_t latency_slots) {
    samples_.push_back(latency_slots);
    sorted_ = false;
  }

  /// Appends all of `other`'s samples (used to fold per-shard stats).
  /// Every statistic below depends only on the sample multiset -- the
  /// mean is an exact integer sum and the percentiles sort -- so merged
  /// results are identical for any merge order.
  void merge(const LatencyStats& other);

  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(samples_.size());
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t max() const;
  /// q in [0, 1]; nearest-rank percentile. 0 samples -> 0.
  [[nodiscard]] std::int64_t percentile(double q) const;

 private:
  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

/// Aggregate counters of one simulation run.
struct RunMetrics {
  std::int64_t slots = 0;             ///< measured slots (after warmup)
  std::int64_t offered_packets = 0;   ///< generated during measurement
  std::int64_t delivered_packets = 0; ///< reached destination
  std::int64_t coupler_transmissions = 0;  ///< successful slot-coupler uses
  std::int64_t collisions = 0;        ///< slot-couplers lost to contention
  std::int64_t dropped_packets = 0;   ///< lost to finite queues (if any)
  std::int64_t backlog = 0;           ///< packets still queued at the end
  /// Closed-loop (workload-driven) runs only: slots from the start of
  /// the run to the last workload delivery, the simulated completion
  /// time of the collective/kernel/trace. 0 for open-loop runs.
  std::int64_t makespan_slots = 0;
  LatencyStats latency;

  /// Delivered packets per processor per slot.
  [[nodiscard]] double throughput_per_node(std::int64_t nodes) const;
  /// Fraction of coupler-slots carrying a successful transmission.
  [[nodiscard]] double coupler_utilization(std::int64_t couplers) const;
};

}  // namespace otis::sim
