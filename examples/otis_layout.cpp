// otis_layout: emit the complete optical wiring of any supported design
// as a component/connection listing -- the machine-readable version of
// the paper's Figs. 10-12. Useful to eyeball how the OTIS transpose
// scatters a group's transmitters across multiplexers.
//
// Usage: otis_layout [--design=sk|pops|ii] [--s=2] [--d=3] [--k=2]
//                    [--t=4] [--g=2] [--n=12] [--full]
// Without --full only the bill of materials and one group's wiring are
// printed (full netlists get large).

#include <iostream>

#include "core/args.hpp"
#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "optics/trace.hpp"

namespace {

void print_component_line(const otis::optics::Netlist& netlist,
                          otis::optics::ComponentId id) {
  const otis::optics::Component& c = netlist.component(id);
  std::cout << "  [" << id << "] " << otis::optics::kind_name(c.kind) << " '"
            << c.label << "'";
  if (c.kind == otis::optics::ComponentKind::kOtis) {
    std::cout << " = OTIS(" << c.otis_groups << "," << c.otis_group_size
              << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv,
                        {"design", "s", "d", "k", "t", "g", "n", "full"});
  const std::string kind = args.get("design", "sk");

  otis::designs::NetworkDesign design;
  if (kind == "sk") {
    design = otis::designs::stack_kautz_design(
        args.get_int("s", 2), static_cast<int>(args.get_int("d", 3)),
        static_cast<int>(args.get_int("k", 2)));
  } else if (kind == "pops") {
    design = otis::designs::pops_design(args.get_int("t", 4),
                                        args.get_int("g", 2));
  } else if (kind == "ii") {
    design = otis::designs::imase_itoh_design(
        static_cast<int>(args.get_int("d", 3)), args.get_int("n", 12));
  } else {
    std::cerr << "unknown --design (use sk, pops or ii)\n";
    return 2;
  }

  std::cout << "optical design: " << design.name << "\n"
            << "bill of materials: "
            << otis::designs::bill_of_materials(design.netlist).to_string()
            << "\n";
  otis::designs::VerificationResult v = otis::designs::verify_design(design);
  std::cout << "verification: " << (v.ok ? "ok" : ("FAILED: " + v.details))
            << "\n\n";
  if (!v.ok) {
    return 1;
  }

  if (args.has("full")) {
    std::cout << "components:\n";
    for (otis::optics::ComponentId id = 0;
         id < design.netlist.component_count(); ++id) {
      print_component_line(design.netlist, id);
    }
  }

  // Show processor 0's transmit fan: where each transmitter's light goes.
  std::cout << "lightpaths of processor 0:\n";
  for (otis::optics::ComponentId tx : design.tx_of_processor[0]) {
    for (const otis::optics::TraceEndpoint& e :
         otis::optics::trace_from_transmitter(design.netlist, tx, {})) {
      std::cout << "  " << design.netlist.component(tx).label << " ->";
      for (otis::optics::ComponentId id : e.path) {
        if (id == tx) {
          continue;
        }
        std::cout << " " << otis::optics::kind_name(
                                design.netlist.component(id).kind);
      }
      std::cout << " (processor " << design.processor_of_receiver(e.receiver)
                << ", " << otis::core::format_double(e.loss_db, 2)
                << " dB)\n";
    }
  }
  return 0;
}
