
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/pops_collectives.cpp" "CMakeFiles/otisnet.dir/src/collectives/pops_collectives.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/collectives/pops_collectives.cpp.o.d"
  "/root/repo/src/collectives/schedule.cpp" "CMakeFiles/otisnet.dir/src/collectives/schedule.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/collectives/schedule.cpp.o.d"
  "/root/repo/src/collectives/stack_kautz_collectives.cpp" "CMakeFiles/otisnet.dir/src/collectives/stack_kautz_collectives.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/collectives/stack_kautz_collectives.cpp.o.d"
  "/root/repo/src/core/args.cpp" "CMakeFiles/otisnet.dir/src/core/args.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/args.cpp.o.d"
  "/root/repo/src/core/csv.cpp" "CMakeFiles/otisnet.dir/src/core/csv.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/csv.cpp.o.d"
  "/root/repo/src/core/error.cpp" "CMakeFiles/otisnet.dir/src/core/error.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/error.cpp.o.d"
  "/root/repo/src/core/log.cpp" "CMakeFiles/otisnet.dir/src/core/log.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/log.cpp.o.d"
  "/root/repo/src/core/mathutil.cpp" "CMakeFiles/otisnet.dir/src/core/mathutil.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/mathutil.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "CMakeFiles/otisnet.dir/src/core/rng.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/rng.cpp.o.d"
  "/root/repo/src/core/table.cpp" "CMakeFiles/otisnet.dir/src/core/table.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/core/table.cpp.o.d"
  "/root/repo/src/designs/baselines.cpp" "CMakeFiles/otisnet.dir/src/designs/baselines.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/baselines.cpp.o.d"
  "/root/repo/src/designs/design.cpp" "CMakeFiles/otisnet.dir/src/designs/design.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/design.cpp.o.d"
  "/root/repo/src/designs/group_block.cpp" "CMakeFiles/otisnet.dir/src/designs/group_block.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/group_block.cpp.o.d"
  "/root/repo/src/designs/imase_itoh_design.cpp" "CMakeFiles/otisnet.dir/src/designs/imase_itoh_design.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/imase_itoh_design.cpp.o.d"
  "/root/repo/src/designs/pops_design.cpp" "CMakeFiles/otisnet.dir/src/designs/pops_design.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/pops_design.cpp.o.d"
  "/root/repo/src/designs/stacked_design.cpp" "CMakeFiles/otisnet.dir/src/designs/stacked_design.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/stacked_design.cpp.o.d"
  "/root/repo/src/designs/verify.cpp" "CMakeFiles/otisnet.dir/src/designs/verify.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/designs/verify.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "CMakeFiles/otisnet.dir/src/graph/algorithms.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "CMakeFiles/otisnet.dir/src/graph/digraph.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "CMakeFiles/otisnet.dir/src/graph/isomorphism.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/graph/isomorphism.cpp.o.d"
  "/root/repo/src/graph/line_digraph.cpp" "CMakeFiles/otisnet.dir/src/graph/line_digraph.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/graph/line_digraph.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "CMakeFiles/otisnet.dir/src/hypergraph/hypergraph.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/hypergraph/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/pops.cpp" "CMakeFiles/otisnet.dir/src/hypergraph/pops.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/hypergraph/pops.cpp.o.d"
  "/root/repo/src/hypergraph/stack_graph.cpp" "CMakeFiles/otisnet.dir/src/hypergraph/stack_graph.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/hypergraph/stack_graph.cpp.o.d"
  "/root/repo/src/hypergraph/stack_imase_itoh.cpp" "CMakeFiles/otisnet.dir/src/hypergraph/stack_imase_itoh.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/hypergraph/stack_imase_itoh.cpp.o.d"
  "/root/repo/src/hypergraph/stack_kautz.cpp" "CMakeFiles/otisnet.dir/src/hypergraph/stack_kautz.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/hypergraph/stack_kautz.cpp.o.d"
  "/root/repo/src/optics/netlist.cpp" "CMakeFiles/otisnet.dir/src/optics/netlist.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/optics/netlist.cpp.o.d"
  "/root/repo/src/optics/power.cpp" "CMakeFiles/otisnet.dir/src/optics/power.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/optics/power.cpp.o.d"
  "/root/repo/src/optics/trace.cpp" "CMakeFiles/otisnet.dir/src/optics/trace.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/optics/trace.cpp.o.d"
  "/root/repo/src/otis/geometry.cpp" "CMakeFiles/otisnet.dir/src/otis/geometry.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/otis/geometry.cpp.o.d"
  "/root/repo/src/otis/imase_itoh_realization.cpp" "CMakeFiles/otisnet.dir/src/otis/imase_itoh_realization.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/otis/imase_itoh_realization.cpp.o.d"
  "/root/repo/src/otis/otis.cpp" "CMakeFiles/otisnet.dir/src/otis/otis.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/otis/otis.cpp.o.d"
  "/root/repo/src/routing/compiled_routes.cpp" "CMakeFiles/otisnet.dir/src/routing/compiled_routes.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/compiled_routes.cpp.o.d"
  "/root/repo/src/routing/fault_tolerant.cpp" "CMakeFiles/otisnet.dir/src/routing/fault_tolerant.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/fault_tolerant.cpp.o.d"
  "/root/repo/src/routing/generic_stack_routing.cpp" "CMakeFiles/otisnet.dir/src/routing/generic_stack_routing.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/generic_stack_routing.cpp.o.d"
  "/root/repo/src/routing/imase_itoh_routing.cpp" "CMakeFiles/otisnet.dir/src/routing/imase_itoh_routing.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/imase_itoh_routing.cpp.o.d"
  "/root/repo/src/routing/kautz_routing.cpp" "CMakeFiles/otisnet.dir/src/routing/kautz_routing.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/kautz_routing.cpp.o.d"
  "/root/repo/src/routing/stack_routing.cpp" "CMakeFiles/otisnet.dir/src/routing/stack_routing.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/stack_routing.cpp.o.d"
  "/root/repo/src/routing/table_router.cpp" "CMakeFiles/otisnet.dir/src/routing/table_router.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/routing/table_router.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/otisnet.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "CMakeFiles/otisnet.dir/src/sim/experiment.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/otisnet.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/ops_network.cpp" "CMakeFiles/otisnet.dir/src/sim/ops_network.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/ops_network.cpp.o.d"
  "/root/repo/src/sim/phased_engine.cpp" "CMakeFiles/otisnet.dir/src/sim/phased_engine.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/phased_engine.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "CMakeFiles/otisnet.dir/src/sim/traffic.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/sim/traffic.cpp.o.d"
  "/root/repo/src/topology/complete.cpp" "CMakeFiles/otisnet.dir/src/topology/complete.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/topology/complete.cpp.o.d"
  "/root/repo/src/topology/debruijn.cpp" "CMakeFiles/otisnet.dir/src/topology/debruijn.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/topology/debruijn.cpp.o.d"
  "/root/repo/src/topology/imase_itoh.cpp" "CMakeFiles/otisnet.dir/src/topology/imase_itoh.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/topology/imase_itoh.cpp.o.d"
  "/root/repo/src/topology/kautz.cpp" "CMakeFiles/otisnet.dir/src/topology/kautz.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/topology/kautz.cpp.o.d"
  "/root/repo/src/topology/otis_swap.cpp" "CMakeFiles/otisnet.dir/src/topology/otis_swap.cpp.o" "gcc" "CMakeFiles/otisnet.dir/src/topology/otis_swap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
