#include "sim/timing_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "designs/design.hpp"
#include "optics/trace.hpp"

namespace otis::sim {

const char* skew_profile_name(SkewProfile profile) {
  switch (profile) {
    case SkewProfile::kNone:
      return "none";
    case SkewProfile::kConstant:
      return "const";
    case SkewProfile::kPerLevel:
      return "level";
  }
  return "?";
}

std::string TimingConfig::label() const {
  if (profile == SkewProfile::kNone) {
    return "none";
  }
  std::ostringstream os;
  os << skew_profile_name(profile) << "(t" << tuning_ticks << ",p"
     << propagation_ticks;
  if (profile == SkewProfile::kPerLevel) {
    os << ",l" << level_skew_ticks;
  }
  os << ",g" << guard_ticks << ")";
  return os.str();
}

void TimingConfig::validate() const {
  OTIS_REQUIRE(tuning_ticks >= 0 && propagation_ticks >= 0 &&
                   level_skew_ticks >= 0 && guard_ticks >= 0,
               "TimingConfig: delays must be >= 0 ticks");
  OTIS_REQUIRE(guard_ticks < kTicksPerSlot,
               "TimingConfig: guard band must be smaller than one slot");
  OTIS_REQUIRE(profile != SkewProfile::kNone || is_slot_aligned(),
               "TimingConfig: the \"none\" profile cannot carry delays "
               "(use const or level)");
  OTIS_REQUIRE(profile == SkewProfile::kPerLevel || level_skew_ticks == 0,
               "TimingConfig: level_skew_ticks requires the level profile");
}

void TimingModel::finalize() {
  max_propagation_ = 0;
  min_propagation_ = tuning_.empty() ? 0 : propagation_[0];
  slot_aligned_ = guard_ == 0;
  for (std::size_t h = 0; h < tuning_.size(); ++h) {
    max_propagation_ = std::max(max_propagation_, propagation_[h]);
    min_propagation_ = std::min(min_propagation_, propagation_[h]);
    if (tuning_[h] != 0 || propagation_[h] != 0) {
      slot_aligned_ = false;
    }
  }
}

TimingModel TimingModel::compile(const hypergraph::StackGraph& network,
                                 const TimingConfig& config) {
  config.validate();
  const std::int64_t couplers = network.hypergraph().hyperarc_count();
  TimingModel model;
  model.guard_ = config.guard_ticks;
  model.tuning_.assign(static_cast<std::size_t>(couplers),
                       config.profile == SkewProfile::kNone
                           ? 0
                           : config.tuning_ticks);
  model.propagation_.assign(static_cast<std::size_t>(couplers), 0);
  if (config.profile != SkewProfile::kNone) {
    const graph::Digraph& base = network.base();
    for (hypergraph::HyperarcId h = 0; h < couplers; ++h) {
      SimTime delay = config.propagation_ticks;
      if (config.profile == SkewProfile::kPerLevel) {
        // Stack level of a coupler: the linear-layout distance between
        // the groups its base arc connects (a rack-distance proxy).
        const graph::ArcId arc = network.arc_of_coupler(h);
        const SimTime level = std::abs(base.head(arc) - base.tail(arc));
        delay += level * config.level_skew_ticks;
      }
      model.propagation_[static_cast<std::size_t>(h)] = delay;
    }
  }
  model.finalize();
  return model;
}

TimingModel TimingModel::from_trace(const hypergraph::StackGraph& network,
                                    const designs::NetworkDesign& design,
                                    double ticks_per_component,
                                    SimTime tuning_ticks,
                                    SimTime guard_ticks) {
  OTIS_REQUIRE(ticks_per_component >= 0.0,
               "TimingModel: ticks_per_component must be >= 0");
  OTIS_REQUIRE(tuning_ticks >= 0 && guard_ticks >= 0,
               "TimingModel: delays must be >= 0 ticks");
  OTIS_REQUIRE(design.processor_count == network.node_count(),
               "TimingModel: design does not realize this network");
  const auto& hg = network.hypergraph();
  TimingModel model;
  model.guard_ = guard_ticks;
  model.tuning_.assign(static_cast<std::size_t>(hg.hyperarc_count()),
                       tuning_ticks);
  model.propagation_.assign(static_cast<std::size_t>(hg.hyperarc_count()), 0);
  const optics::LossModel loss{};
  for (hypergraph::Node p = 0; p < hg.node_count(); ++p) {
    const auto& outs = hg.out_hyperarcs(p);
    const auto& txs =
        design.tx_of_processor[static_cast<std::size_t>(p)];
    OTIS_REQUIRE(txs.size() == outs.size(),
                 "TimingModel: design transmitter slots do not match the "
                 "node's out-couplers");
    for (std::size_t c = 0; c < outs.size(); ++c) {
      // Worst traced chain through this transmitter bounds the fiber
      // length of the coupler it feeds.
      std::size_t longest = 0;
      for (const optics::TraceEndpoint& endpoint :
           optics::trace_from_transmitter(design.netlist, txs[c], loss)) {
        longest = std::max(longest, endpoint.path.size());
      }
      auto& delay = model.propagation_[static_cast<std::size_t>(outs[c])];
      delay = std::max(delay,
                       static_cast<SimTime>(std::llround(
                           static_cast<double>(longest) *
                           ticks_per_component)));
    }
  }
  model.finalize();
  return model;
}

}  // namespace otis::sim
