#include "otis/imase_itoh_realization.hpp"

#include <sstream>

#include "core/error.hpp"

namespace otis::otis {

ImaseItohRealization::ImaseItohRealization(int degree, std::int64_t order)
    : d_(degree), n_(order), otis_(degree, order) {
  OTIS_REQUIRE(d_ >= 1, "ImaseItohRealization: degree must be >= 1");
  OTIS_REQUIRE(n_ >= d_, "ImaseItohRealization: order must be >= degree");
}

std::int64_t ImaseItohRealization::input_of(std::int64_t u, int alpha) const {
  OTIS_REQUIRE(u >= 0 && u < n_, "input_of: node out of range");
  OTIS_REQUIRE(alpha >= 1 && alpha <= d_, "input_of: alpha out of range");
  return d_ * u + alpha - 1;
}

InputPort ImaseItohRealization::input_port_of(std::int64_t u,
                                              int alpha) const {
  const std::int64_t index = input_of(u, alpha);
  // OTIS(d, n): inputs are d groups of size n, so linear index i*n + j.
  return InputPort{index / n_, index % n_};
}

std::int64_t ImaseItohRealization::node_of_input(
    std::int64_t input_index) const {
  OTIS_REQUIRE(input_index >= 0 && input_index < d_ * n_,
               "node_of_input: index out of range");
  return input_index / d_;
}

std::vector<OutputPort> ImaseItohRealization::receiver_ports_of(
    std::int64_t v) const {
  OTIS_REQUIRE(v >= 0 && v < n_, "receiver_ports_of: node out of range");
  std::vector<OutputPort> ports;
  ports.reserve(static_cast<std::size_t>(d_));
  for (std::int64_t b = 0; b < d_; ++b) {
    ports.push_back(OutputPort{v, b});
  }
  return ports;
}

std::int64_t ImaseItohRealization::node_of_output(OutputPort out) const {
  OTIS_REQUIRE(out.group >= 0 && out.group < n_,
               "node_of_output: group out of range");
  return out.group;
}

std::int64_t ImaseItohRealization::neighbor_via_otis(std::int64_t u,
                                                     int alpha) const {
  return node_of_output(otis_.map(input_port_of(u, alpha)));
}

graph::Digraph ImaseItohRealization::realized_digraph() const {
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(d_));
  for (std::int64_t u = 0; u < n_; ++u) {
    for (int alpha = 1; alpha <= d_; ++alpha) {
      arcs.push_back(graph::Arc{u, neighbor_via_otis(u, alpha)});
    }
  }
  return graph::Digraph::from_arcs(n_, arcs);
}

bool ImaseItohRealization::verify(std::string* details) const {
  topology::ImaseItoh ii(d_, n_);
  for (std::int64_t u = 0; u < n_; ++u) {
    for (int alpha = 1; alpha <= d_; ++alpha) {
      const std::int64_t via_otis = neighbor_via_otis(u, alpha);
      const std::int64_t expected = ii.successor(u, alpha);
      if (via_otis != expected) {
        if (details != nullptr) {
          std::ostringstream oss;
          oss << "OTIS(" << d_ << "," << n_ << "): node " << u << " alpha "
              << alpha << " reaches " << via_otis << " but II expects "
              << expected;
          *details = oss.str();
        }
        return false;
      }
    }
  }
  // Receiver-side sanity: each node's d receiver ports must be hit by
  // exactly its d in-arcs (no port reused, none dark).
  std::vector<int> hits(static_cast<std::size_t>(d_ * n_), 0);
  for (std::int64_t u = 0; u < n_; ++u) {
    for (int alpha = 1; alpha <= d_; ++alpha) {
      OutputPort out = otis_.map(input_port_of(u, alpha));
      ++hits[static_cast<std::size_t>(otis_.output_index(out))];
    }
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (hits[i] != 1) {
      if (details != nullptr) {
        std::ostringstream oss;
        oss << "OTIS(" << d_ << "," << n_ << "): output index " << i
            << " driven by " << hits[i] << " transmitters (expected 1)";
        *details = oss.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace otis::otis
