#pragma once
/// \file calendar_queue.hpp
/// Calendar queue: the O(1)-amortized rewrite of the EventQueue's
/// pending-event set (Brown 1988).
///
/// std::priority_queue pays O(log n) pointer-hopping comparisons per
/// operation; with ~10^6 in-flight propagation events that log factor
/// (and its cache misses) dominates an async simulation. A calendar
/// queue hashes events by time into an array of day buckets -- here the
/// bucket width is one slot (kTicksPerSlot ticks), the natural unit of
/// a slotted OPS network -- so scheduling is an O(1) append into the
/// right bucket and popping walks the calendar day by day.
///
/// Buckets are *lazily sorted*: pushes append unsorted, and a bucket is
/// sorted descending by (time, seq) once, when its day first drains --
/// after which every pop is a pop_back. The (time, seq) order preserves
/// the EventQueue's FIFO tie-break exactly, keeping async runs
/// bit-reproducible. This is O(1) amortized per event as long as a
/// day's events arrive before that day starts draining, which is how
/// both the async engine (propagations always land in a later slot)
/// and the classic hold workload behave; interleaved same-day pushes
/// merely re-sort and stay correct. The calendar doubles its year
/// length when occupancy passes two events per day (capped -- beyond
/// the event horizon more days cannot thin the buckets), and events
/// beyond the current year wait in their bucket for a later cycle.
///
/// The payload is a template parameter: the AsyncEngine stores plain
/// structs (no per-event std::function allocation), the benchmarks
/// store integers, and a std::function instantiation would behave like
/// the classic EventQueue.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "sim/event_queue.hpp"

namespace otis::sim {

template <typename Payload>
class CalendarQueue {
 public:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break at equal times
    Payload payload{};
  };

  /// `bucket_width` is the day length in SimTime units (default: one
  /// slot of ticks); both it and `initial_buckets` must be powers of
  /// two (bucket lookup is a shift and a mask, no division).
  explicit CalendarQueue(SimTime bucket_width = kTicksPerSlot,
                         std::size_t initial_buckets = 64)
      : buckets_(initial_buckets) {
    OTIS_REQUIRE(bucket_width > 0 &&
                     (bucket_width & (bucket_width - 1)) == 0,
                 "CalendarQueue: bucket width must be a power of two");
    OTIS_REQUIRE(initial_buckets > 0 &&
                     (initial_buckets & (initial_buckets - 1)) == 0,
                 "CalendarQueue: bucket count must be a power of two");
    while ((SimTime{1} << width_shift_) != bucket_width) {
      ++width_shift_;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return count_; }
  /// Time of the most recently popped entry.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `payload` at absolute time `at` (>= now()).
  void push(SimTime at, Payload payload) {
    OTIS_REQUIRE(at >= now_, "CalendarQueue: cannot schedule in the past");
    if (count_ >= 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      resize(buckets_.size() * 2);
    }
    Bucket& bucket = buckets_[bucket_of(at)];
    bucket.entries.push_back(Entry{at, next_seq_++, std::move(payload)});
    bucket.sorted = false;
    ++count_;
  }

  /// The earliest (time, seq) entry without removing it. The queue must
  /// be non-empty.
  [[nodiscard]] const Entry& peek() {
    OTIS_ASSERT(count_ > 0, "CalendarQueue: peek on empty queue");
    return find_min()->entries.back();
  }

  /// Removes and returns the earliest (time, seq) entry. The queue must
  /// be non-empty.
  Entry pop() {
    OTIS_ASSERT(count_ > 0, "CalendarQueue: pop on empty queue");
    Bucket& bucket = *find_min();
    Entry top = std::move(bucket.entries.back());
    bucket.entries.pop_back();
    --count_;
    now_ = top.time;
    return top;
  }

 private:
  struct Bucket {
    std::vector<Entry> entries;
    /// Descending by (time, seq): the earliest entry is entries.back().
    bool sorted = false;
  };

  /// Practical ceiling on the year length: past the event horizon,
  /// extra days cannot thin any bucket (occupancy per day is set by the
  /// event span, not the calendar size).
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;

  static void sort_descending(Bucket& bucket) {
    std::sort(bucket.entries.begin(), bucket.entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.time != b.time ? a.time > b.time : a.seq > b.seq;
              });
    bucket.sorted = true;
  }

  /// Bucket whose back() is the global minimum; requires count_ > 0.
  /// Sorts the bucket it settles on (lazily, once per day in steady
  /// state).
  [[nodiscard]] Bucket* find_min() {
    // Walk the calendar from today: a bucket's earliest entry belongs
    // to the current day iff its time falls before that day's end, in
    // which case it is the global minimum (earlier days were empty and
    // other buckets' entries lie in later days).
    std::size_t day = static_cast<std::size_t>(now_) >> width_shift_;
    for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
      Bucket& bucket = buckets_[day & (buckets_.size() - 1)];
      if (bucket.entries.empty()) {
        continue;
      }
      if (!bucket.sorted) {
        sort_descending(bucket);
      }
      if (bucket.entries.back().time <
          static_cast<SimTime>((day + 1) << width_shift_)) {
        return &bucket;
      }
    }
    // Sparse tail: every event lives more than a year ahead. Find the
    // bucket holding the global minimum directly.
    Bucket* best = nullptr;
    for (Bucket& bucket : buckets_) {
      if (bucket.entries.empty()) {
        continue;
      }
      if (!bucket.sorted) {
        sort_descending(bucket);
      }
      if (best == nullptr ||
          earlier(bucket.entries.back(), best->entries.back())) {
        best = &bucket;
      }
    }
    return best;
  }

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) noexcept {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  [[nodiscard]] std::size_t bucket_of(SimTime at) const noexcept {
    return (static_cast<std::size_t>(at) >> width_shift_) &
           (buckets_.size() - 1);
  }

  void resize(std::size_t new_size) {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_size, {});
    for (Bucket& bucket : old) {
      for (Entry& entry : bucket.entries) {
        buckets_[bucket_of(entry.time)].entries.push_back(std::move(entry));
      }
    }
  }

  int width_shift_ = 0;
  std::vector<Bucket> buckets_;
  std::size_t count_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace otis::sim
