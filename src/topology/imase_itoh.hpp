#pragma once
/// \file imase_itoh.hpp
/// Imase-Itoh digraphs II(d, n) (Imase & Itoh 1981, paper Def. 3).
///
/// II(d, n): vertices are integers modulo n; u has an arc to every
/// v = (-d*u - alpha) mod n for alpha = 1..d. These graphs generalize
/// Kautz graphs to arbitrary order (II(d, d^{k-1}(d+1)) = KG(d,k)) while
/// keeping diameter ceil(log_d n) -- and, the paper's Proposition 1, their
/// arcs are exactly the port permutation of the OTIS(d, n) optical system.

#include <cstdint>
#include <vector>

#include "core/mathutil.hpp"
#include "graph/digraph.hpp"

namespace otis::topology {

/// Imase-Itoh digraph with its arithmetic structure kept accessible
/// (successor formula, alpha labels) rather than just the arc list.
class ImaseItoh {
 public:
  /// Requires d >= 1 and n >= d (so the d successors of a vertex are
  /// pairwise distinct).
  ImaseItoh(int degree, std::int64_t order);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] std::int64_t order() const noexcept { return n_; }

  /// The successor reached from `u` by arc label alpha (1 <= alpha <= d):
  /// (-d*u - alpha) mod n.
  [[nodiscard]] std::int64_t successor(std::int64_t u, int alpha) const;

  /// All d successors in alpha order.
  [[nodiscard]] std::vector<std::int64_t> successors(std::int64_t u) const;

  /// The alpha with successor(u, alpha) == v; 0 if v is not a successor.
  [[nodiscard]] int alpha_of_arc(std::int64_t u, std::int64_t v) const;

  /// The digraph (arcs in alpha order per tail -- the canonical Imase-Itoh
  /// arc numbering phi(u, alpha) = d*u + alpha - 1).
  [[nodiscard]] const graph::Digraph& graph() const noexcept { return graph_; }

  /// Diameter formula from Imase-Itoh 1981: ceil(log_d n) (for n > 1).
  [[nodiscard]] unsigned diameter_formula() const;

  /// True when n = d^{k-1}(d+1) for some k >= 1, i.e. II(d,n) is the Kautz
  /// graph KG(d,k) (Imase-Itoh 1983; paper Sec. 2.6).
  [[nodiscard]] bool is_kautz() const;

  /// The k with n = d^{k-1}(d+1), if is_kautz().
  [[nodiscard]] int kautz_diameter() const;

 private:
  /// Unchecked successor formula; factored out so the constructor can use
  /// it before the object is fully built.
  [[nodiscard]] std::int64_t successor_impl(std::int64_t u,
                                            int alpha) const noexcept {
    return core::floor_mod(-static_cast<std::int64_t>(d_) * u - alpha, n_);
  }

  int d_;
  std::int64_t n_;
  graph::Digraph graph_;
};

}  // namespace otis::topology
