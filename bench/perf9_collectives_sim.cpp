// Perf F9 (workload extension): collective schedules under REAL
// contention. perf4 proves the analytic slot counts (POPS broadcasts in
// 1 slot, SK(s,d,k) in k, gossip in t / s+k); this bench compiles those
// same schedules into dependency-DAG workloads (workload/
// schedule_workload.hpp) and *executes* them on the slot engines,
// sweeping arbitration policy, wavelengths and timing skew -- the
// simulated-makespan-vs-analytic-lower-bound curves. The full-scale
// grid is specs/collectives.json.
//
// Expected shape: in the uncontended single-wavelength slot-aligned
// case the makespan EQUALS the analytic slot count (the schedules are
// conflict-free, so every wave clears in one slot -- checked here and
// enforced by tests/test_workload.cpp). Slotted aloha pushes the
// makespan above the bound (waves retry on collisions), W > 1 never
// helps a conflict-free schedule, and tuning/propagation skew stretches
// the critical path by roughly one tuning latency per wave.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "collectives/pops_collectives.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "sim/timing_model.hpp"

int main() {
  std::cout << "[Perf F9] collective schedules under real arbitration: "
               "simulated makespan vs analytic slot count (campaign API)\n\n";

  otis::campaign::CampaignSpec spec;
  spec.name = "perf9-collectives-sim";
  spec.topologies = {otis::campaign::TopologySpec::pops(6, 12),
                     otis::campaign::TopologySpec::stack_kautz(4, 3, 2)};
  spec.arbitrations = {otis::sim::Arbitration::kTokenRoundRobin,
                       otis::sim::Arbitration::kRandomWinner,
                       otis::sim::Arbitration::kSlottedAloha};
  spec.loads = {0.0};  // pure closed loop: the collective alone
  spec.wavelengths = {1, 2};
  spec.workloads = {
      otis::campaign::WorkloadSpec{otis::campaign::WorkloadKind::kOneToAll},
      otis::campaign::WorkloadSpec{otis::campaign::WorkloadKind::kGossip}};
  spec.seeds = {41, 42, 43};
  spec.warmup_slots = 0;
  spec.measure_slots = 1;  // ignored by workload cells (run to completion)
  spec.timings.clear();
  spec.timings.push_back(otis::sim::TimingConfig{});  // slot-aligned
  {
    otis::sim::TimingConfig skew;
    skew.profile = otis::sim::SkewProfile::kConstant;
    skew.tuning_ticks = 512;
    skew.propagation_ticks = 128;
    spec.timings.push_back(skew);  // auto-runs on the async engine
  }

  // Analytic lower bounds straight from the schedule generators.
  otis::hypergraph::Pops pops(6, 12);
  otis::hypergraph::StackKautz sk(4, 3, 2);
  const auto analytic_slots = [&](const std::string& topology,
                                  const std::string& workload)
      -> std::int64_t {
    const bool gossip = workload.rfind("gossip", 0) == 0;
    if (topology == "POPS(6,12)") {
      return gossip
                 ? otis::collectives::pops_gossip(pops).slot_count()
                 : otis::collectives::pops_one_to_all(pops, 0).slot_count();
    }
    return gossip
               ? otis::collectives::stack_kautz_gossip(sk).slot_count()
               : otis::collectives::stack_kautz_one_to_all(sk, 0)
                     .slot_count();
  };

  auto aggregate = std::make_shared<otis::campaign::AggregateSink>();
  otis::campaign::CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  otis::campaign::CampaignOptions options;
  options.threads = 0;
  runner.run(options);

  otis::core::Table table({"network", "workload", "arb", "W", "timing",
                           "makespan", "bound", "ratio", "delivered"});
  bool ok = true;
  for (const otis::campaign::AggregateSink::Group& g :
       aggregate->groups()) {
    const std::int64_t bound = analytic_slots(g.topology, g.workload);
    const double makespan = g.point.makespan;
    // The bound must hold for every policy/W/skew; the uncontended
    // slot-aligned single-wavelength token case must be exact.
    ok = ok && makespan >= static_cast<double>(bound);
    ok = ok && g.point.delivered_fraction == 1.0;
    if (g.arbitration == "token" && g.wavelengths == 1 &&
        g.timing == "none") {
      ok = ok && makespan == static_cast<double>(bound);
    }
    table.add(g.topology, g.workload, g.arbitration, g.wavelengths,
              g.timing, otis::core::format_double(makespan, 2), bound,
              otis::core::format_double(
                  makespan / static_cast<double>(bound), 2),
              otis::core::format_double(g.point.delivered_fraction, 4));
  }
  table.print(std::cout);

  std::cout << "\nevery makespan >= its analytic slot count, every "
               "workload fully delivered, and the uncontended token/W=1/"
               "slot-aligned rows are EXACTLY the analytic bound: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
