#include "workload/schedule_workload.hpp"

#include <utility>

#include "core/error.hpp"

namespace otis::workload {

std::unique_ptr<Workload> schedule_workload(
    const hypergraph::StackGraph& network,
    const collectives::SlotSchedule& schedule) {
  const std::string diagnostic =
      collectives::validate_schedule(network, schedule);
  OTIS_REQUIRE(diagnostic.empty(),
               "schedule_workload: invalid schedule: " + diagnostic);
  const auto& hg = network.hypergraph();
  std::vector<std::vector<WorkloadPacket>> waves;
  waves.reserve(schedule.slots.size());
  for (const auto& slot : schedule.slots) {
    std::vector<WorkloadPacket> wave;
    wave.reserve(slot.size());
    for (const collectives::Transmission& tx : slot) {
      // Representative target: the lowest-id receiver that is not the
      // sender itself (loop couplers list the sender among their
      // targets). Deterministic, so the compiled workload -- and with
      // it every downstream simulation -- is a pure function of the
      // schedule.
      hypergraph::Node destination = -1;
      for (hypergraph::Node target : hg.hyperarc(tx.coupler).targets) {
        if (target != tx.sender &&
            (destination == -1 || target < destination)) {
          destination = target;
        }
      }
      OTIS_REQUIRE(destination != -1,
                   "schedule_workload: coupler " +
                       std::to_string(tx.coupler) +
                       " has no target other than its sender");
      wave.push_back(WorkloadPacket{0, tx.sender, destination});
    }
    waves.push_back(std::move(wave));
  }
  return std::make_unique<WaveWorkload>(hg.node_count(), std::move(waves));
}

}  // namespace otis::workload
