#pragma once
/// \file hypergraph.hpp
/// Directed hypergraphs: the model for one-to-many (multi-OPS) optical
/// networks (paper Sec. 1-2; Berge 1987; Bourdin-Ferreira-Marcus 1998).
///
/// A hyperarc bundles a set of source nodes and a set of target nodes:
/// any source may transmit, every target hears the transmission. A
/// single-wavelength OPS coupler of degree s is exactly a hyperarc with
/// s sources and s targets (paper Fig. 3).

#include <cstdint>
#include <vector>

namespace otis::hypergraph {

/// Node id within a hypergraph; nodes are 0..node_count()-1.
using Node = std::int64_t;

/// Hyperarc id; hyperarcs are 0..hyperarc_count()-1.
using HyperarcId = std::int64_t;

/// One directed hyperarc: every node in `sources` can send, every node in
/// `targets` receives.
struct Hyperarc {
  std::vector<Node> sources;
  std::vector<Node> targets;
  friend bool operator==(const Hyperarc&, const Hyperarc&) = default;
};

/// Flat view of the senders feeding one hyperarc (coupler): `count`
/// parallel entries of source node and the position ("VOQ slot") this
/// hyperarc occupies in that source's out-hyperarc list. Precomputed at
/// construction so per-slot simulation loops touch only flat arrays.
struct CouplerFeed {
  const Node* source = nullptr;
  const std::int32_t* slot = nullptr;
  std::int64_t count = 0;
};

/// Immutable directed hypergraph with per-node incidence indexes.
class DirectedHypergraph {
 public:
  DirectedHypergraph() = default;

  /// Builds from explicit hyperarcs; validates node ranges.
  DirectedHypergraph(Node node_count, std::vector<Hyperarc> hyperarcs);

  [[nodiscard]] Node node_count() const noexcept { return node_count_; }
  [[nodiscard]] HyperarcId hyperarc_count() const noexcept {
    return static_cast<HyperarcId>(hyperarcs_.size());
  }

  [[nodiscard]] const Hyperarc& hyperarc(HyperarcId h) const;
  [[nodiscard]] const std::vector<Hyperarc>& hyperarcs() const noexcept {
    return hyperarcs_;
  }

  /// Hyperarcs in which `v` appears as a source (its "out-couplers").
  /// Always sorted by hyperarc id (construction visits arcs in order).
  [[nodiscard]] const std::vector<HyperarcId>& out_hyperarcs(Node v) const;

  /// Position of hyperarc `h` in out_hyperarcs(v) -- the VOQ slot a
  /// simulator indexes -- or -1 when `v` is not a source of `h`. Binary
  /// search over the sorted out list: O(log out-degree), no allocation.
  [[nodiscard]] std::int64_t out_slot_of(Node v, HyperarcId h) const;

  /// Flattened (source, voq-slot) arrays of the senders feeding `h`.
  /// Entry i corresponds to hyperarc(h).sources[i]. O(1).
  [[nodiscard]] CouplerFeed coupler_feed(HyperarcId h) const;

  /// Hyperarcs in which `v` appears as a target (its "in-couplers").
  [[nodiscard]] const std::vector<HyperarcId>& in_hyperarcs(Node v) const;

  /// Out-degree of a node = number of hyperarcs it can send on.
  [[nodiscard]] std::int64_t out_degree(Node v) const {
    return static_cast<std::int64_t>(out_hyperarcs(v).size());
  }

  /// In-degree of a node = number of hyperarcs it listens on.
  [[nodiscard]] std::int64_t in_degree(Node v) const {
    return static_cast<std::int64_t>(in_hyperarcs(v).size());
  }

  /// All nodes reachable from `v` in one transmission (union of targets of
  /// out-hyperarcs).
  [[nodiscard]] std::vector<Node> one_hop_targets(Node v) const;

  /// BFS distances over hyperarcs (a hop = one coupler traversal).
  [[nodiscard]] std::vector<std::int64_t> bfs_distances(Node source) const;

  /// Max finite BFS distance over all ordered pairs; -1 if not connected.
  [[nodiscard]] std::int64_t diameter() const;

  /// Structural equality up to hyperarc order and source/target order.
  [[nodiscard]] bool equivalent_to(const DirectedHypergraph& other) const;

 private:
  Node node_count_ = 0;
  std::vector<Hyperarc> hyperarcs_;
  std::vector<std::vector<HyperarcId>> out_index_;
  std::vector<std::vector<HyperarcId>> in_index_;
  /// CSR over hyperarcs: the senders of hyperarc h are entries
  /// [feed_offsets_[h], feed_offsets_[h+1]) of the two parallel arrays.
  std::vector<std::int64_t> feed_offsets_;
  std::vector<Node> feed_source_;
  std::vector<std::int32_t> feed_slot_;
};

}  // namespace otis::hypergraph
