#pragma once
/// \file debruijn.hpp
/// De Bruijn digraphs B(d, k) -- the comparison topology of Sivarajan &
/// Ramaswami 1994 ("Lightwave networks based on de Bruijn graphs",
/// paper ref [22]); used here as a baseline against Kautz/Imase-Itoh.
///
/// B(d, k): vertices are words of length k over {0..d-1} (equivalently
/// integers modulo d^k); u -> (d*u + alpha) mod d^k for alpha = 0..d-1.
/// Order d^k, degree d, diameter k; contains loops (at the constant
/// words), which is one reason Kautz graphs beat it for networking: same
/// degree and diameter, (d+1)/d times more usable vertices and no loops.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "topology/kautz.hpp"

namespace otis::topology {

/// De Bruijn digraph with word labels.
class DeBruijn {
 public:
  /// Requires degree >= 1, dimension >= 1.
  DeBruijn(int degree, int dimension);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] int dimension() const noexcept { return k_; }
  /// d^k.
  [[nodiscard]] std::int64_t order() const noexcept { return n_; }

  [[nodiscard]] const graph::Digraph& graph() const noexcept { return graph_; }

  /// Word of vertex v: base-d digits, most significant first.
  [[nodiscard]] Word word_of(std::int64_t v) const;

  /// Vertex of a word (digits in 0..d-1, length k).
  [[nodiscard]] std::int64_t vertex_of(const Word& word) const;

 private:
  int d_;
  int k_;
  std::int64_t n_;
  graph::Digraph graph_;
};

}  // namespace otis::topology
