#include "otis/geometry.hpp"

#include <cmath>

#include "core/error.hpp"

namespace otis::otis {

OtisGeometry::OtisGeometry(Otis otis, GeometryConfig config)
    : otis_(otis), config_(config) {
  OTIS_REQUIRE(config_.port_pitch > 0, "OtisGeometry: pitch must be > 0");
  OTIS_REQUIRE(config_.plane_separation > 0,
               "OtisGeometry: separation must be > 0");
}

double OtisGeometry::input_position(std::int64_t input_index) const {
  OTIS_REQUIRE(input_index >= 0 && input_index < otis_.port_count(),
               "OtisGeometry: input index out of range");
  // Ports are laid out contiguously; both planes share the same span so
  // the transpose's center symmetry is visible in the coordinates.
  return config_.port_pitch * static_cast<double>(input_index);
}

double OtisGeometry::output_position(std::int64_t output_index) const {
  OTIS_REQUIRE(output_index >= 0 && output_index < otis_.port_count(),
               "OtisGeometry: output index out of range");
  return config_.port_pitch * static_cast<double>(output_index);
}

double OtisGeometry::input_lenslet_center(std::int64_t group) const {
  OTIS_REQUIRE(group >= 0 && group < otis_.input_groups(),
               "OtisGeometry: input group out of range");
  const double first = input_position(group * otis_.input_group_size());
  const double last = input_position((group + 1) * otis_.input_group_size() -
                                     1);
  return (first + last) / 2.0;
}

double OtisGeometry::output_lenslet_center(std::int64_t group) const {
  OTIS_REQUIRE(group >= 0 && group < otis_.output_groups(),
               "OtisGeometry: output group out of range");
  const double first = output_position(group * otis_.output_group_size());
  const double last =
      output_position((group + 1) * otis_.output_group_size() - 1);
  return (first + last) / 2.0;
}

Beam OtisGeometry::beam(std::int64_t input_index) const {
  Beam b;
  b.input_index = input_index;
  const OutputPort out = otis_.map(otis_.input_port(input_index));
  b.output_index = otis_.output_index(out);
  b.x_in = input_position(input_index);
  b.x_out = output_position(b.output_index);
  const double dx = b.x_out - b.x_in;
  b.angle_rad = std::atan2(dx, config_.plane_separation);
  b.length = std::hypot(dx, config_.plane_separation);
  return b;
}

std::vector<Beam> OtisGeometry::all_beams() const {
  std::vector<Beam> beams;
  beams.reserve(static_cast<std::size_t>(otis_.port_count()));
  for (std::int64_t i = 0; i < otis_.port_count(); ++i) {
    beams.push_back(beam(i));
  }
  return beams;
}

double OtisGeometry::max_angle_rad() const {
  double worst = 0.0;
  for (const Beam& b : all_beams()) {
    worst = std::max(worst, std::abs(b.angle_rad));
  }
  return worst;
}

double OtisGeometry::total_beam_length() const {
  double total = 0.0;
  for (const Beam& b : all_beams()) {
    total += b.length;
  }
  return total;
}

}  // namespace otis::otis
