// Engine-equivalence and determinism tests for the phased slot engine:
//  - the phased engine reproduces the legacy event-queue engine's
//    RunMetrics bit-for-bit at seed parity (all arbitration policies,
//    multi-hop and single-hop topologies, finite queues, WDM, drain);
//  - the sharded engine is bit-identical for every thread count;
//  - CompiledRoutes agrees with the hooks it was baked from;
//  - packet conservation holds exactly under every (engine, policy);
//  - SimConfig is validated at construction.

#include <gtest/gtest.h>

#include <memory>

#include "core/error.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/generic_stack_routing.hpp"
#include "routing/stack_routing.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"

namespace otis::sim {
namespace {

/// Exact equality of every metric, including the latency distribution.
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

RoutingHooks stack_kautz_hooks(const routing::StackKautzRouter& router) {
  RoutingHooks hooks;
  hooks.next_coupler = [&router](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  hooks.relay_on = [&router](hypergraph::HyperarcId h, hypergraph::Node d) {
    return router.relay_on(h, d);
  };
  return hooks;
}

/// One stack-Kautz run; coupler successes are appended to the metrics
/// comparison by the caller when needed.
RunMetrics run_sk(Engine engine, Arbitration arb, std::uint64_t seed,
                  int threads = 1, std::int64_t queue_capacity = 0,
                  std::int64_t wavelengths = 1, bool drain = false) {
  hypergraph::StackKautz sk(4, 3, 2);
  routing::StackKautzRouter router(sk);
  SimConfig config;
  config.arbitration = arb;
  config.warmup_slots = 50;
  config.measure_slots = 400;
  config.seed = seed;
  config.engine = engine;
  config.threads = threads;
  config.queue_capacity = queue_capacity;
  config.wavelengths = wavelengths;
  config.drain = drain;
  OpsNetworkSim sim(
      sk.stack(), stack_kautz_hooks(router),
      std::make_unique<UniformTraffic>(sk.processor_count(), 0.35), config);
  return sim.run();
}

constexpr Arbitration kAllPolicies[] = {Arbitration::kTokenRoundRobin,
                                        Arbitration::kRandomWinner,
                                        Arbitration::kSlottedAloha};

TEST(EngineEquivalence, PhasedMatchesEventQueueOnStackKautz) {
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    RunMetrics legacy = run_sk(Engine::kEventQueue, arb, 42);
    RunMetrics phased = run_sk(Engine::kPhased, arb, 42);
    expect_identical(legacy, phased);
  }
}

TEST(EngineEquivalence, PhasedMatchesEventQueueWithQueuesWdmAndDrain) {
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    RunMetrics legacy = run_sk(Engine::kEventQueue, arb, 7, 1,
                               /*queue_capacity=*/3, /*wavelengths=*/2,
                               /*drain=*/true);
    RunMetrics phased = run_sk(Engine::kPhased, arb, 7, 1, 3, 2, true);
    expect_identical(legacy, phased);
  }
}

TEST(EngineEquivalence, PhasedMatchesEventQueueOnPops) {
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    auto run = [arb](Engine engine) {
      hypergraph::Pops pops(4, 3);
      SimConfig config;
      config.arbitration = arb;
      config.warmup_slots = 30;
      config.measure_slots = 300;
      config.seed = 5;
      config.engine = engine;
      OpsNetworkSim sim(pops.stack(),
                        routing::compile_pops_routes(pops),
                        std::make_unique<UniformTraffic>(12, 0.4), config);
      return sim.run();
    };
    expect_identical(run(Engine::kEventQueue), run(Engine::kPhased));
  }
}

TEST(EngineEquivalence, PhasedMatchesEventQueueOnStackImaseItoh) {
  auto run = [](Engine engine) {
    hypergraph::StackImaseItoh sii(3, 2, 7);
    SimConfig config;
    config.warmup_slots = 40;
    config.measure_slots = 300;
    config.seed = 11;
    config.arbitration = Arbitration::kRandomWinner;
    config.engine = engine;
    OpsNetworkSim sim(
        sii.stack(), routing::compile_stack_imase_itoh_routes(sii),
        std::make_unique<UniformTraffic>(sii.processor_count(), 0.25),
        config);
    return sim.run();
  };
  expect_identical(run(Engine::kEventQueue), run(Engine::kPhased));
}

TEST(EngineEquivalence, PhasedCouplerSuccessesMatchEventQueue) {
  hypergraph::StackKautz sk(4, 3, 2);
  routing::StackKautzRouter router(sk);
  auto run = [&](Engine engine, std::vector<std::int64_t>& successes) {
    SimConfig config;
    config.warmup_slots = 50;
    config.measure_slots = 300;
    config.seed = 3;
    config.engine = engine;
    OpsNetworkSim sim(
        sk.stack(), stack_kautz_hooks(router),
        std::make_unique<UniformTraffic>(sk.processor_count(), 0.5), config);
    sim.run();
    successes = sim.coupler_successes();
  };
  std::vector<std::int64_t> legacy;
  std::vector<std::int64_t> phased;
  run(Engine::kEventQueue, legacy);
  run(Engine::kPhased, phased);
  EXPECT_EQ(legacy, phased);
}

TEST(EngineEquivalence, ShardedIsBitIdenticalAcrossThreadCounts) {
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    RunMetrics one = run_sk(Engine::kSharded, arb, 9, 1);
    for (int threads : {2, 3, 5, 8}) {
      SCOPED_TRACE(threads);
      RunMetrics many = run_sk(Engine::kSharded, arb, 9, threads);
      expect_identical(one, many);
    }
  }
}

TEST(EngineEquivalence, DrainBitParityAcrossAllEnginesAndThreadCounts) {
  // drain = true keeps every engine running past the traffic horizon
  // until the network empties. The three serial universes (event-queue,
  // phased, async-with-zero-delays) must agree bit-for-bit on the
  // drained run -- including with finite queues and WDM -- and the
  // sharded universe must be identical for every thread count.
  for (Arbitration arb : kAllPolicies) {
    for (std::int64_t queue_capacity : {std::int64_t{0}, std::int64_t{3}}) {
      for (std::int64_t wavelengths : {std::int64_t{1}, std::int64_t{2}}) {
        SCOPED_TRACE(std::string(arbitration_name(arb)) + "/cap=" +
                     std::to_string(queue_capacity) + "/w=" +
                     std::to_string(wavelengths));
        const RunMetrics legacy =
            run_sk(Engine::kEventQueue, arb, 57, 1, queue_capacity,
                   wavelengths, /*drain=*/true);
        const RunMetrics phased = run_sk(Engine::kPhased, arb, 57, 1,
                                         queue_capacity, wavelengths, true);
        const RunMetrics async = run_sk(Engine::kAsync, arb, 57, 1,
                                        queue_capacity, wavelengths, true);
        expect_identical(legacy, phased);
        expect_identical(legacy, async);
        EXPECT_EQ(phased.backlog, 0) << "drain must empty the network";

        const RunMetrics sharded_one =
            run_sk(Engine::kSharded, arb, 57, 1, queue_capacity,
                   wavelengths, true);
        for (int threads : {2, 3, 5, 8}) {
          SCOPED_TRACE(threads);
          const RunMetrics sharded_many =
              run_sk(Engine::kSharded, arb, 57, threads, queue_capacity,
                     wavelengths, true);
          expect_identical(sharded_one, sharded_many);
        }
        EXPECT_EQ(sharded_one.backlog, 0);
      }
    }
  }
}

TEST(EngineEquivalence, LargerStackKautzParityAcrossRoutesAndThreads) {
  // SK(5,4,2): 160 processors, a size class above the other fixtures,
  // so the compact-sender generation batches span multiple shards with
  // ragged per-shard sender counts. One event-queue reference run
  // (hook-routed) must be matched bit-for-bit by the phased engine on
  // dense AND on group-compressed tables, by the async engine in its
  // slot-aligned limit, and by the sharded engine at every thread
  // count, on both route representations.
  hypergraph::StackKautz sk(5, 4, 2);
  routing::StackKautzRouter router(sk);
  const auto dense = std::make_shared<const routing::CompiledRoutes>(
      routing::compile_stack_kautz_routes(sk));
  const auto compressed =
      std::make_shared<const routing::CompressedRoutes>(
          routing::compress_stack_kautz_routes(sk));
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    SimConfig config;
    config.arbitration = arb;
    config.warmup_slots = 30;
    config.measure_slots = 250;
    config.seed = 23;
    auto run = [&](Engine engine, bool use_compressed, int threads) {
      SimConfig c = config;
      c.engine = engine;
      c.threads = threads;
      auto traffic =
          std::make_unique<UniformTraffic>(sk.processor_count(), 0.4);
      if (engine == Engine::kEventQueue) {
        OpsNetworkSim sim(sk.stack(), stack_kautz_hooks(router),
                          std::move(traffic), c);
        return sim.run();
      }
      if (use_compressed) {
        OpsNetworkSim sim(sk.stack(), compressed, std::move(traffic), c);
        return sim.run();
      }
      OpsNetworkSim sim(sk.stack(), dense, std::move(traffic), c);
      return sim.run();
    };
    const RunMetrics legacy = run(Engine::kEventQueue, false, 1);
    for (bool use_compressed : {false, true}) {
      SCOPED_TRACE(use_compressed ? "compressed" : "dense");
      expect_identical(legacy, run(Engine::kPhased, use_compressed, 1));
      expect_identical(legacy, run(Engine::kAsync, use_compressed, 1));
      const RunMetrics sharded_one =
          run(Engine::kSharded, use_compressed, 1);
      for (int threads : {2, 3, 5, 8}) {
        SCOPED_TRACE(threads);
        expect_identical(sharded_one,
                         run(Engine::kSharded, use_compressed, threads));
      }
    }
  }
}

TEST(EngineEquivalence, ShardedDrainTerminatesAndIsThreadCountInvariant) {
  // Drain keeps the barrier loop alive past the traffic horizon until
  // the folded in-flight count hits zero; the backlog must come out
  // zero and identical for any worker count.
  for (Arbitration arb : kAllPolicies) {
    SCOPED_TRACE(arbitration_name(arb));
    RunMetrics one = run_sk(Engine::kSharded, arb, 31, 1, 0, 1, true);
    EXPECT_EQ(one.backlog, 0);
    RunMetrics four = run_sk(Engine::kSharded, arb, 31, 4, 0, 1, true);
    expect_identical(one, four);
  }
}

TEST(EngineEquivalence, ShardedBurstyTrafficIsThreadCountInvariant) {
  // BurstyTraffic keeps per-node state -- the one generator whose
  // correctness under sharding depends on node ownership being exclusive.
  auto run = [](int threads) {
    hypergraph::StackKautz sk(4, 3, 2);
    routing::StackKautzRouter router(sk);
    SimConfig config;
    config.warmup_slots = 20;
    config.measure_slots = 500;
    config.seed = 13;
    config.engine = Engine::kSharded;
    config.threads = threads;
    OpsNetworkSim sim(sk.stack(), stack_kautz_hooks(router),
                      std::make_unique<BurstyTraffic>(sk.processor_count(),
                                                      0.8, 0.05, 0.05),
                      config);
    return sim.run();
  };
  RunMetrics one = run(1);
  RunMetrics four = run(4);
  expect_identical(one, four);
}

TEST(EngineEquivalence, ShardedIsDeterministicAndSeedSensitive) {
  RunMetrics a = run_sk(Engine::kSharded, Arbitration::kRandomWinner, 21, 3);
  RunMetrics b = run_sk(Engine::kSharded, Arbitration::kRandomWinner, 21, 3);
  RunMetrics c = run_sk(Engine::kSharded, Arbitration::kRandomWinner, 22, 3);
  expect_identical(a, b);
  EXPECT_NE(a.offered_packets, c.offered_packets);
}

TEST(EngineEquivalence, PacketConservationExactUnderAllEnginesAndPolicies) {
  // With no warmup every offered packet is delivered, dropped, or
  // still queued when the run stops -- exactly.
  for (Engine engine :
       {Engine::kEventQueue, Engine::kPhased, Engine::kSharded}) {
    for (Arbitration arb : kAllPolicies) {
      SCOPED_TRACE(std::string(engine_name(engine)) + "/" +
                   arbitration_name(arb));
      hypergraph::StackKautz sk(4, 3, 2);
      routing::StackKautzRouter router(sk);
      SimConfig config;
      config.arbitration = arb;
      config.warmup_slots = 0;
      config.measure_slots = 600;
      config.seed = 17;
      config.engine = engine;
      config.threads = 2;
      config.queue_capacity = 4;  // force drops into the balance too
      OpsNetworkSim sim(
          sk.stack(), stack_kautz_hooks(router),
          std::make_unique<UniformTraffic>(sk.processor_count(), 0.6),
          config);
      RunMetrics m = sim.run();
      EXPECT_GT(m.offered_packets, 0);
      EXPECT_EQ(m.offered_packets,
                m.delivered_packets + m.dropped_packets + m.backlog);
    }
  }
}

TEST(CompiledRoutes, AgreesWithTheHooksItWasBakedFrom) {
  hypergraph::StackKautz sk(3, 2, 2);
  routing::StackKautzRouter router(sk);
  routing::CompiledRoutes routes = routing::compile_stack_kautz_routes(sk);
  const auto& hg = sk.stack().hypergraph();
  for (hypergraph::Node v = 0; v < hg.node_count(); ++v) {
    for (hypergraph::Node d = 0; d < hg.node_count(); ++d) {
      if (v == d) {
        EXPECT_EQ(routes.next_coupler(v, d), -1);
        continue;
      }
      const hypergraph::HyperarcId h = router.next_coupler(v, d);
      EXPECT_EQ(routes.next_coupler(v, d), h);
      EXPECT_EQ(routes.next_slot(v, d), sk.stack().out_slot_of(v, h));
      EXPECT_EQ(routes.relay(h, d), router.relay_on(h, d));
    }
  }
}

TEST(CompiledRoutes, GenericAdapterServesTableRoutedStacks) {
  hypergraph::StackImaseItoh sii(2, 2, 5);
  routing::GenericStackRouter router(sii.stack());
  routing::CompiledRoutes routes =
      routing::compile_stack_imase_itoh_routes(sii);
  for (hypergraph::Node v = 0; v < sii.processor_count(); ++v) {
    for (hypergraph::Node d = 0; d < sii.processor_count(); ++d) {
      if (v == d) {
        continue;
      }
      EXPECT_EQ(routes.next_coupler(v, d), router.next_coupler(v, d));
    }
  }
}

TEST(CsrViews, OutSlotAndCouplerFeedAreConsistent) {
  hypergraph::StackKautz sk(3, 2, 2);
  const auto& hg = sk.stack().hypergraph();
  for (hypergraph::HyperarcId h = 0; h < hg.hyperarc_count(); ++h) {
    const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
    const auto& sources = hg.hyperarc(h).sources;
    ASSERT_EQ(feed.count, static_cast<std::int64_t>(sources.size()));
    for (std::int64_t i = 0; i < feed.count; ++i) {
      const hypergraph::Node v = feed.source[i];
      EXPECT_EQ(v, sources[static_cast<std::size_t>(i)]);
      // Hypergraph binary search, stack-graph arithmetic, and the
      // flattened feed must all report the same VOQ slot.
      EXPECT_EQ(feed.slot[i], hg.out_slot_of(v, h));
      EXPECT_EQ(feed.slot[i], sk.stack().out_slot_of(v, h));
      EXPECT_EQ(hg.out_hyperarcs(v)[static_cast<std::size_t>(feed.slot[i])],
                h);
    }
  }
  // Non-sources resolve to -1.
  EXPECT_EQ(hg.out_slot_of(0, hg.hyperarc_count() - 1) >= 0,
            sk.stack().out_slot_of(0, hg.hyperarc_count() - 1) >= 0);
}

TEST(SimConfigValidation, RejectsDegenerateParameters) {
  hypergraph::Pops pops(2, 2);
  auto make = [&](SimConfig config) {
    OpsNetworkSim sim(pops.stack(), routing::compile_pops_routes(pops),
                      std::make_unique<SaturationTraffic>(4), config);
  };
  SimConfig ok;
  EXPECT_NO_THROW(make(ok));
  SimConfig bad_wavelengths;
  bad_wavelengths.wavelengths = 0;
  EXPECT_THROW(make(bad_wavelengths), core::Error);
  SimConfig bad_measure;
  bad_measure.measure_slots = 0;
  EXPECT_THROW(make(bad_measure), core::Error);
  SimConfig bad_warmup;
  bad_warmup.warmup_slots = -1;
  EXPECT_THROW(make(bad_warmup), core::Error);
  SimConfig bad_capacity;
  bad_capacity.queue_capacity = -1;
  EXPECT_THROW(make(bad_capacity), core::Error);
}

}  // namespace
}  // namespace otis::sim
