// Tests for the OTIS architecture model and Proposition 1 (OTIS(d,n)
// realizes II(d,n)), including the paper's worked figures: OTIS(3,6)
// (Fig. 1) and II(3,12) on OTIS(3,12) (Fig. 10).

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "otis/otis.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"

namespace otis::otis {
namespace {

TEST(Otis, MapFormula) {
  Otis otis(3, 6);
  // (i, j) -> (T-1-j, G-1-i).
  EXPECT_EQ(otis.map(InputPort{0, 0}), (OutputPort{5, 2}));
  EXPECT_EQ(otis.map(InputPort{2, 5}), (OutputPort{0, 0}));
  EXPECT_EQ(otis.map(InputPort{1, 3}), (OutputPort{2, 1}));
}

TEST(Otis, InverseMapRoundTrip) {
  Otis otis(4, 7);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 7; ++j) {
      const InputPort in{i, j};
      EXPECT_EQ(otis.inverse_map(otis.map(in)), in);
    }
  }
}

TEST(Otis, LinearIndexRoundTrip) {
  Otis otis(3, 5);
  for (std::int64_t idx = 0; idx < otis.port_count(); ++idx) {
    EXPECT_EQ(otis.input_index(otis.input_port(idx)), idx);
    EXPECT_EQ(otis.output_index(otis.output_port(idx)), idx);
  }
}

TEST(Otis, PermutationIsBijection) {
  Otis otis(5, 4);
  auto perm = otis.permutation();
  std::set<std::int64_t> image(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<std::int64_t>(image.size()), otis.port_count());
}

TEST(Otis, ComposedWithTransposeIsIdentity) {
  // OTIS(T,G) undoes OTIS(G,T): the optical involution.
  for (std::int64_t g = 1; g <= 5; ++g) {
    for (std::int64_t t = 1; t <= 5; ++t) {
      EXPECT_TRUE(composes_to_identity(Otis(g, t), Otis(t, g)));
    }
  }
}

TEST(Otis, ComposeRejectsMismatchedShapes) {
  EXPECT_FALSE(composes_to_identity(Otis(3, 4), Otis(3, 4)));
}

TEST(Otis, SquareOtisFixedPoints) {
  // OTIS(g,g) read as a permutation of linear indices: index i*g+j maps
  // to (g-1-j)*g + (g-1-i); fixed points are exactly the anti-diagonal
  // i + j = g - 1, so there are g of them.
  EXPECT_EQ(Otis(3, 3).fixed_point_count(), 3);
  EXPECT_EQ(Otis(4, 4).fixed_point_count(), 4);
  EXPECT_EQ(Otis(5, 5).fixed_point_count(), 5);
}

TEST(Otis, Fig1ConnectionSpotChecks) {
  // Fig. 1 draws OTIS(3, 6): 3 groups of 6 transmitters onto 6 groups of
  // 3 receivers. Transmitter (0,0) illuminates receiver (5, 2).
  Otis otis(3, 6);
  EXPECT_EQ(otis.map(InputPort{0, 0}), (OutputPort{5, 2}));
  // Last transmitter (2,5) illuminates receiver (0,0).
  EXPECT_EQ(otis.map(InputPort{2, 5}), (OutputPort{0, 0}));
  EXPECT_EQ(otis.port_count(), 18);
}

TEST(Otis, RejectsOutOfRangePorts) {
  Otis otis(2, 3);
  EXPECT_THROW((void)otis.map(InputPort{2, 0}), core::Error);
  EXPECT_THROW((void)otis.map(InputPort{0, 3}), core::Error);
  EXPECT_THROW((void)otis.input_port(6), core::Error);
}

TEST(Realization, PortAssignmentShapes) {
  ImaseItohRealization real(3, 12);
  // Node 0's transmitters occupy inputs 0, 1, 2.
  EXPECT_EQ(real.input_of(0, 1), 0);
  EXPECT_EQ(real.input_of(0, 3), 2);
  EXPECT_EQ(real.input_of(5, 2), 16);
  EXPECT_EQ(real.node_of_input(16), 5);
  // Node 7's receivers are output group 7.
  auto ports = real.receiver_ports_of(7);
  ASSERT_EQ(ports.size(), 3u);
  for (std::int64_t b = 0; b < 3; ++b) {
    EXPECT_EQ(ports[static_cast<std::size_t>(b)].group, 7);
    EXPECT_EQ(ports[static_cast<std::size_t>(b)].offset, b);
  }
}

TEST(Realization, Fig10NeighborhoodOfNodeZero) {
  // In Fig. 10, II(3,12) node 0 connects to nodes 11, 10, 9.
  ImaseItohRealization real(3, 12);
  EXPECT_EQ(real.neighbor_via_otis(0, 1), 11);
  EXPECT_EQ(real.neighbor_via_otis(0, 2), 10);
  EXPECT_EQ(real.neighbor_via_otis(0, 3), 9);
}

/// Proposition 1, swept over a grid of (d, n): the OTIS-realized digraph
/// equals II(d, n) arc-for-arc, with every receiver port driven exactly
/// once.
class Proposition1Sweep
    : public ::testing::TestWithParam<std::pair<int, std::int64_t>> {};

TEST_P(Proposition1Sweep, OtisRealizesImaseItoh) {
  const auto [d, n] = GetParam();
  ImaseItohRealization real(d, n);
  std::string details;
  EXPECT_TRUE(real.verify(&details)) << details;
  EXPECT_TRUE(
      real.realized_digraph().same_arcs(topology::ImaseItoh(d, n).graph()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Proposition1Sweep,
    ::testing::Values(std::pair<int, std::int64_t>{1, 1},
                      std::pair<int, std::int64_t>{1, 5},
                      std::pair<int, std::int64_t>{2, 2},
                      std::pair<int, std::int64_t>{2, 6},
                      std::pair<int, std::int64_t>{2, 12},
                      std::pair<int, std::int64_t>{3, 12},
                      std::pair<int, std::int64_t>{3, 13},
                      std::pair<int, std::int64_t>{3, 36},
                      std::pair<int, std::int64_t>{4, 20},
                      std::pair<int, std::int64_t>{5, 30},
                      std::pair<int, std::int64_t>{6, 42},
                      std::pair<int, std::int64_t>{7, 8},
                      std::pair<int, std::int64_t>{8, 64}));

TEST(Realization, Corollary1KautzOnOtis) {
  // Corollary 1: KG(d,k) = II(d, d^{k-1}(d+1)) realized by one OTIS.
  for (int d = 2; d <= 3; ++d) {
    for (int k = 1; k <= 3; ++k) {
      topology::Kautz kautz(d, k);
      ImaseItohRealization real(d, kautz.order());
      EXPECT_TRUE(real.verify(nullptr));
      EXPECT_TRUE(real.realized_digraph().same_arcs(kautz.graph()))
          << "KG(" << d << "," << k << ") via OTIS(" << d << ","
          << kautz.order() << ")";
    }
  }
}

TEST(Realization, SquareOtisRealizesCompleteDigraph) {
  // II(g,g) = K+_g: the POPS interconnect fact, via the OTIS lens.
  ImaseItohRealization real(4, 4);
  EXPECT_TRUE(real.verify(nullptr));
  EXPECT_EQ(real.realized_digraph().loop_count(), 4);
  for (std::int64_t u = 0; u < 4; ++u) {
    for (std::int64_t v = 0; v < 4; ++v) {
      EXPECT_TRUE(real.realized_digraph().has_arc(u, v));
    }
  }
}

TEST(Realization, RejectsBadParameters) {
  EXPECT_THROW(ImaseItohRealization(0, 5), core::Error);
  EXPECT_THROW(ImaseItohRealization(5, 4), core::Error);
}

}  // namespace
}  // namespace otis::otis
