#pragma once
/// \file grid.hpp
/// Expansion of a CampaignSpec into its concrete cells.
///
/// Cells are enumerated in a fixed nesting order -- topology, then
/// arbitration, traffic, load, wavelengths, routes, timing, workload,
/// then seed (innermost) -- and
/// each carries a canonical string ID derived from its parameters alone.
/// The ID, not the linear index, is what the manifest records, so a
/// finished cell stays recognized even if later spec edits append axis
/// values. Sinks emit in expansion order regardless of which worker
/// finished first, which is what makes campaign output bit-identical
/// across thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace otis::campaign {

/// One (topology, arbitration, traffic, load, wavelengths, routes,
/// timing, workload, seed) grid point, plus the execution knobs
/// resolved from the spec defaults and any matching CellOverride
/// (engine / engine_threads are *how*, not *what*, and stay out of the
/// ID like the spec-level engine does -- except that non-slot-aligned
/// timing forces the async engine, the only engine that can honour it).
struct CampaignCell {
  std::int64_t index = 0;      ///< position in expansion order
  std::string id;              ///< canonical ID, see cell_id()
  std::size_t topology = 0;    ///< index into CampaignSpec::topologies
  sim::Arbitration arbitration = sim::Arbitration::kTokenRoundRobin;
  TrafficSpec traffic;
  double load = 0.0;
  std::int64_t wavelengths = 1;
  sim::RouteTable routes = sim::RouteTable::kAuto;
  sim::TimingConfig timing;
  WorkloadSpec workload;       ///< closed-loop driver; kNone = open loop
  std::uint64_t seed = 1;
  sim::Engine engine = sim::Engine::kPhased;  ///< resolved execution engine
  int engine_threads = 1;                     ///< threads for kSharded cells
};

/// Canonical cell ID:
///   "<topology>|<arbitration>|<traffic>|load=<l>|w=<W>|routes=<r>|"
///   "timing=<t>|workload=<wl>|seed=<s>"
/// with the load fixed to 6 decimals so the ID is reproducible;
/// traffic, timing and workload use their canonical labels (shape
/// values included).
[[nodiscard]] std::string cell_id(const TopologySpec& topology,
                                  sim::Arbitration arbitration,
                                  const TrafficSpec& traffic, double load,
                                  std::int64_t wavelengths,
                                  sim::RouteTable routes,
                                  const sim::TimingConfig& timing,
                                  const WorkloadSpec& workload,
                                  std::uint64_t seed);

/// Expands the validated spec into cells (spec.cell_count() of them).
[[nodiscard]] std::vector<CampaignCell> expand_grid(const CampaignSpec& spec);

}  // namespace otis::campaign
