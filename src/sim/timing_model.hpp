#pragma once
/// \file timing_model.hpp
/// Sub-slot timing of a multi-OPS network: transmitter tuning latencies,
/// per-coupler propagation delays and slot guard bands.
///
/// The paper's OPS model is slot-synchronous -- every transmitter is
/// statically tuned and every fiber is cut to the same length, so a slot
/// is one indivisible time unit. Real multi-OPS hardware is messier: a
/// transmitter needs tuning time before it can feed a coupler, and the
/// fibers from different couplers to their receivers have unequal
/// lengths (propagation skew). This layer expresses those effects in
/// fixed-point sub-slot ticks (kTicksPerSlot per slot, event_queue.hpp)
/// and compiles them into flat per-coupler arrays the AsyncEngine reads
/// on its hot path.
///
/// Three delay sources:
///  - constant: one tuning value and one propagation value shared by
///    every coupler (uniform skew between generation and delivery);
///  - per-level: propagation grows with the coupler's stack level --
///    the linear-layout distance |head group - tail group| of its base
///    arc, a proxy for rack-to-rack fiber length;
///  - trace-derived: TimingModel::from_trace walks the actual optical
///    design (optics/trace.hpp) and scales each coupler's worst-case
///    component-chain length into its propagation delay.
///
/// When every delay is zero the model is "slot-aligned" and the
/// AsyncEngine provably collapses to the phased engine bit-for-bit
/// (tests/test_async_engine.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/stack_graph.hpp"
#include "sim/event_queue.hpp"

namespace otis::designs {
struct NetworkDesign;
}  // namespace otis::designs

namespace otis::sim {

/// How TimingConfig distributes propagation delay over the couplers.
enum class SkewProfile {
  kNone,      ///< every delay zero: the slot-aligned limit
  kConstant,  ///< same tuning/propagation delay on every coupler
  kPerLevel,  ///< propagation += level_skew_ticks * coupler stack level
};

[[nodiscard]] const char* skew_profile_name(SkewProfile profile);

/// Declarative timing knobs carried by SimConfig. All values are
/// sub-slot ticks (kTicksPerSlot per slot) and must be >= 0.
struct TimingConfig {
  SkewProfile profile = SkewProfile::kNone;
  /// Transmitter tuning latency: a packet arriving at a node cannot
  /// contend for its next coupler until this many ticks later.
  SimTime tuning_ticks = 0;
  /// Base propagation delay from a coupler to its receivers.
  SimTime propagation_ticks = 0;
  /// Extra propagation per stack level (kPerLevel only).
  SimTime level_skew_ticks = 0;
  /// Guard band: a packet must be ready this many ticks before a slot
  /// boundary to transmit in that slot.
  SimTime guard_ticks = 0;

  /// True when every delay is zero -- the limit in which the async
  /// engine is bit-identical to the phased engine.
  [[nodiscard]] bool is_slot_aligned() const noexcept {
    return tuning_ticks == 0 && propagation_ticks == 0 &&
           level_skew_ticks == 0 && guard_ticks == 0;
  }

  /// Canonical compact label, e.g. "none", "const(t256,p128,g0)",
  /// "level(t256,p64,l128,g0)". Doubles as the timing part of campaign
  /// cell IDs, so it must stay stable.
  [[nodiscard]] std::string label() const;

  /// Throws core::Error on negative values or a kNone profile that
  /// carries nonzero delays.
  void validate() const;

  [[nodiscard]] bool operator==(const TimingConfig&) const noexcept = default;
};

/// Per-coupler timing compiled to flat arrays for the async hot path.
class TimingModel {
 public:
  /// Compiles `config` against the network (kNone/kConstant/kPerLevel).
  [[nodiscard]] static TimingModel compile(
      const hypergraph::StackGraph& network, const TimingConfig& config);

  /// Derives per-coupler propagation from the optical design realizing
  /// the network: each coupler's delay is its worst-case traced
  /// component-chain length times `ticks_per_component` (optics/trace).
  /// `design` must realize `network` (same processor count, one
  /// transmitter per out-coupler slot). Tuning and guard are uniform.
  [[nodiscard]] static TimingModel from_trace(
      const hypergraph::StackGraph& network,
      const designs::NetworkDesign& design, double ticks_per_component,
      SimTime tuning_ticks = 0, SimTime guard_ticks = 0);

  /// Tuning latency of the transmitters feeding coupler `h`.
  [[nodiscard]] SimTime tuning(hypergraph::HyperarcId h) const noexcept {
    return tuning_[static_cast<std::size_t>(h)];
  }
  /// Propagation delay from coupler `h` to its receivers.
  [[nodiscard]] SimTime propagation(hypergraph::HyperarcId h) const noexcept {
    return propagation_[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] SimTime guard() const noexcept { return guard_; }
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return static_cast<std::int64_t>(tuning_.size());
  }
  /// True when every compiled delay is zero (phased-engine parity).
  [[nodiscard]] bool slot_aligned() const noexcept { return slot_aligned_; }
  /// Largest propagation delay of any coupler (the skew spread).
  [[nodiscard]] SimTime max_propagation() const noexcept {
    return max_propagation_;
  }
  /// Smallest propagation delay of any coupler: the conservative-PDES
  /// lookahead floor of the sharded async engine (0 on empty models).
  [[nodiscard]] SimTime min_propagation() const noexcept {
    return min_propagation_;
  }

 private:
  TimingModel() = default;
  void finalize();

  std::vector<SimTime> tuning_;
  std::vector<SimTime> propagation_;
  SimTime guard_ = 0;
  SimTime max_propagation_ = 0;
  SimTime min_propagation_ = 0;
  bool slot_aligned_ = true;
};

}  // namespace otis::sim
