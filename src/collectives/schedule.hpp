#pragma once
/// \file schedule.hpp
/// Slot schedules for collective communications on multi-OPS networks.
///
/// The paper motivates multi-OPS networks by their one-to-many power:
/// "the POPS network ... allows one-to-many communications at every
/// communication step" (Sec. 1), and its companion paper (ref [11])
/// evaluates collective operations under distributed control. This
/// module makes those operations first-class: a SlotSchedule is an
/// explicit, slot-by-slot list of coupler transmissions, validated
/// against the physical constraints (single wavelength: one sender per
/// coupler per slot) and executed under the standard gossip model where
/// a transmission carries the sender's whole current knowledge set.

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/stack_graph.hpp"

namespace otis::collectives {

/// One coupler transmission: `sender` puts its current knowledge on
/// `coupler`; every target of the coupler receives it.
struct Transmission {
  hypergraph::Node sender = 0;
  hypergraph::HyperarcId coupler = 0;
  friend bool operator==(const Transmission&, const Transmission&) = default;
};

/// A schedule: slots[i] is the set of transmissions fired in slot i.
struct SlotSchedule {
  std::vector<std::vector<Transmission>> slots;

  [[nodiscard]] std::int64_t slot_count() const noexcept {
    return static_cast<std::int64_t>(slots.size());
  }
  [[nodiscard]] std::int64_t transmission_count() const noexcept {
    std::int64_t total = 0;
    for (const auto& slot : slots) {
      total += static_cast<std::int64_t>(slot.size());
    }
    return total;
  }
};

/// Checks physical validity against a network: every sender is a source
/// of the coupler it drives, and no coupler carries two transmissions in
/// the same slot (single wavelength). Returns a diagnostic for the first
/// violation, empty string when valid.
[[nodiscard]] std::string validate_schedule(
    const hypergraph::StackGraph& network, const SlotSchedule& schedule);

/// Knowledge state: knows[v] is the set of token-origins node v has
/// learned (as a bitset over nodes, vector<char> for simplicity).
using Knowledge = std::vector<std::vector<char>>;

/// Initial knowledge: every node knows exactly its own token.
[[nodiscard]] Knowledge initial_knowledge(hypergraph::Node node_count);

/// Executes the schedule under the combining (gossip) model: in each
/// slot all transmissions read the knowledge state at the *start* of
/// the slot, then all deliveries merge -- matching simultaneous optical
/// transmissions. Returns the final knowledge.
[[nodiscard]] Knowledge run_schedule(const hypergraph::StackGraph& network,
                                     const SlotSchedule& schedule,
                                     Knowledge knowledge);

/// True if every node knows `root`'s token.
[[nodiscard]] bool broadcast_complete(const Knowledge& knowledge,
                                      hypergraph::Node root);

/// True if every node knows every token.
[[nodiscard]] bool gossip_complete(const Knowledge& knowledge);

}  // namespace otis::collectives
