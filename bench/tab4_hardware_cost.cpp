// Claim T4 (paper Secs. 1 and 4, by construction): the hardware cost of
// the OTIS-based designs. Compares, at matched processor counts, the
// full bill of materials of POPS vs stack-Kautz vs stack-Imase-Itoh vs
// a single-OPS bus vs point-to-point fiber wiring. The expected shape:
//   - POPS buys diameter 1 with g^2 couplers and g transceivers/node;
//   - stack-Kautz needs only (d+1) transceivers/node and ~N(d+1)/s
//     couplers but pays diameter k;
//   - OTIS blocks replace per-arc fiber harnesses entirely.
// Every design is verified by light tracing before being reported.

#include <iostream>

#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "topology/kautz.hpp"

namespace {

bool report(otis::core::Table& table, const std::string& family,
            otis::designs::NetworkDesign design, std::int64_t diameter) {
  otis::designs::VerificationResult v = otis::designs::verify_design(design);
  otis::designs::BillOfMaterials bom =
      otis::designs::bill_of_materials(design.netlist);
  table.add(family, design.processor_count,
            design.processor_count
                ? bom.transmitters / design.processor_count
                : 0,
            bom.multiplexers, bom.total_otis_blocks(), bom.fibers, diameter,
            v.ok);
  return v.ok;
}

}  // namespace

int main() {
  std::cout << "[Claim T4] hardware bill of materials at matched N\n\n";
  otis::core::Table table({"design", "N", "tx/node", "couplers",
                           "OTIS blocks", "fibers", "diameter", "verified"});
  bool ok = true;

  // --- N = 72 cohort: the paper's worked size. -----------------------
  ok &= report(table, "SK(6,3,2)", otis::designs::stack_kautz_design(6, 3, 2),
               2);
  ok &= report(table, "POPS(6,12)", otis::designs::pops_design(6, 12), 1);
  ok &= report(table, "single-OPS bus N=72",
               otis::designs::single_ops_bus_design(72), 1);
  ok &= report(table, "SII(6,3,12) (= SK)",
               otis::designs::stack_imase_itoh_design(6, 3, 12), 2);

  // --- N = 96 cohort: non-Kautz group count needs SII. ----------------
  ok &= report(table, "SII(6,3,16)",
               otis::designs::stack_imase_itoh_design(6, 3, 16), 3);
  ok &= report(table, "POPS(6,16)", otis::designs::pops_design(6, 16), 1);

  // --- Point-to-point cohort: KG(3,3), 36 nodes. ----------------------
  otis::topology::Kautz kg33(3, 3);
  ok &= report(table, "KG(3,3) via 1 OTIS",
               otis::designs::imase_itoh_design(3, kg33.order()), 3);
  ok &= report(table, "KG(3,3) via fibers",
               otis::designs::fiber_point_to_point_design(kg33.graph(),
                                                          "KG(3,3) wired"),
               3);

  table.print(std::cout);

  // Shape assertions (the qualitative claims).
  otis::designs::BillOfMaterials sk_bom = otis::designs::bill_of_materials(
      otis::designs::stack_kautz_design(6, 3, 2).netlist);
  otis::designs::BillOfMaterials pops_bom = otis::designs::bill_of_materials(
      otis::designs::pops_design(6, 12).netlist);
  const bool shape1 = sk_bom.multiplexers < pops_bom.multiplexers;
  const bool shape2 = sk_bom.transmitters < pops_bom.transmitters;
  otis::designs::BillOfMaterials wired_bom = otis::designs::bill_of_materials(
      otis::designs::fiber_point_to_point_design(kg33.graph(), "w").netlist);
  const bool shape3 = wired_bom.fibers == kg33.graph().size();
  std::cout << "\nshapes: SK needs fewer couplers than POPS at N=72 ("
            << sk_bom.multiplexers << " < " << pops_bom.multiplexers
            << "): " << (shape1 ? "yes" : "NO")
            << "; fewer transceivers (" << sk_bom.transmitters << " < "
            << pops_bom.transmitters << "): " << (shape2 ? "yes" : "NO")
            << ";\n        one OTIS replaces " << wired_bom.fibers
            << " fiber links for KG(3,3): " << (shape3 ? "yes" : "NO")
            << "\n";
  ok = ok && shape1 && shape2 && shape3;
  std::cout << "all designs verified and shapes hold: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
