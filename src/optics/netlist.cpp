#include "optics/netlist.hpp"

#include "core/error.hpp"

namespace otis::optics {

const char* kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kTransmitter:
      return "transmitter";
    case ComponentKind::kReceiver:
      return "receiver";
    case ComponentKind::kMultiplexer:
      return "multiplexer";
    case ComponentKind::kBeamSplitter:
      return "beam-splitter";
    case ComponentKind::kOtis:
      return "OTIS";
    case ComponentKind::kFiber:
      return "fiber";
  }
  return "?";
}

ComponentId Netlist::add_component(Component component) {
  components_.push_back(std::move(component));
  const Component& placed = components_.back();
  out_links_.emplace_back(static_cast<std::size_t>(placed.outputs));
  in_links_.emplace_back(static_cast<std::size_t>(placed.inputs));
  return static_cast<ComponentId>(components_.size()) - 1;
}

ComponentId Netlist::add_transmitter(std::string label) {
  return add_component(
      Component{ComponentKind::kTransmitter, 0, 1, 0, 0, std::move(label)});
}

ComponentId Netlist::add_receiver(std::string label) {
  return add_component(
      Component{ComponentKind::kReceiver, 1, 0, 0, 0, std::move(label)});
}

ComponentId Netlist::add_multiplexer(std::int64_t fan_in, std::string label) {
  OTIS_REQUIRE(fan_in >= 1, "Netlist: multiplexer fan-in must be >= 1");
  return add_component(Component{ComponentKind::kMultiplexer, fan_in, 1, 0, 0,
                                 std::move(label)});
}

ComponentId Netlist::add_beam_splitter(std::int64_t fan_out,
                                       std::string label) {
  OTIS_REQUIRE(fan_out >= 1, "Netlist: beam-splitter fan-out must be >= 1");
  return add_component(Component{ComponentKind::kBeamSplitter, 1, fan_out, 0,
                                 0, std::move(label)});
}

ComponentId Netlist::add_otis(std::int64_t groups, std::int64_t group_size,
                              std::string label) {
  OTIS_REQUIRE(groups >= 1 && group_size >= 1,
               "Netlist: OTIS parameters must be >= 1");
  const std::int64_t ports = groups * group_size;
  return add_component(Component{ComponentKind::kOtis, ports, ports, groups,
                                 group_size, std::move(label)});
}

ComponentId Netlist::add_fiber(std::string label) {
  return add_component(
      Component{ComponentKind::kFiber, 1, 1, 0, 0, std::move(label)});
}

const Component& Netlist::component(ComponentId id) const {
  OTIS_REQUIRE(id >= 0 && id < component_count(),
               "Netlist: component id out of range");
  return components_[static_cast<std::size_t>(id)];
}

void Netlist::check_output(PortRef ref) const {
  const Component& c = component(ref.component);
  OTIS_REQUIRE(ref.port >= 0 && ref.port < c.outputs,
               "Netlist: output port out of range on " + c.label);
}

void Netlist::check_input(PortRef ref) const {
  const Component& c = component(ref.component);
  OTIS_REQUIRE(ref.port >= 0 && ref.port < c.inputs,
               "Netlist: input port out of range on " + c.label);
}

void Netlist::connect(PortRef from, PortRef to) {
  check_output(from);
  check_input(to);
  auto& out_slot = out_links_[static_cast<std::size_t>(from.component)]
                             [static_cast<std::size_t>(from.port)];
  auto& in_slot = in_links_[static_cast<std::size_t>(to.component)]
                           [static_cast<std::size_t>(to.port)];
  OTIS_REQUIRE(!out_slot.has_value(),
               "Netlist: output port already wired on " +
                   component(from.component).label);
  OTIS_REQUIRE(!in_slot.has_value(),
               "Netlist: input port already wired on " +
                   component(to.component).label);
  out_slot = to;
  in_slot = from;
}

std::optional<PortRef> Netlist::link_from(PortRef output) const {
  check_output(output);
  return out_links_[static_cast<std::size_t>(output.component)]
                   [static_cast<std::size_t>(output.port)];
}

std::optional<PortRef> Netlist::link_into(PortRef input) const {
  check_input(input);
  return in_links_[static_cast<std::size_t>(input.component)]
                  [static_cast<std::size_t>(input.port)];
}

std::vector<PortRef> Netlist::propagate_inside(PortRef input) const {
  check_input(input);
  const Component& c = component(input.component);
  switch (c.kind) {
    case ComponentKind::kTransmitter:
      OTIS_ASSERT(false, "transmitter has no inputs");
      return {};
    case ComponentKind::kReceiver:
      return {};  // light terminates at the photodetector
    case ComponentKind::kMultiplexer:
      return {PortRef{input.component, 0}};
    case ComponentKind::kBeamSplitter: {
      std::vector<PortRef> outs;
      outs.reserve(static_cast<std::size_t>(c.outputs));
      for (std::int64_t p = 0; p < c.outputs; ++p) {
        outs.push_back(PortRef{input.component, p});
      }
      return outs;
    }
    case ComponentKind::kOtis: {
      ::otis::otis::Otis lens(c.otis_groups, c.otis_group_size);
      const std::int64_t out =
          lens.output_index(lens.map(lens.input_port(input.port)));
      return {PortRef{input.component, out}};
    }
    case ComponentKind::kFiber:
      return {PortRef{input.component, 0}};
  }
  return {};
}

std::int64_t Netlist::count(ComponentKind kind) const {
  std::int64_t n = 0;
  for (const Component& c : components_) {
    if (c.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::vector<ComponentId> Netlist::of_kind(ComponentKind kind) const {
  std::vector<ComponentId> ids;
  for (ComponentId id = 0; id < component_count(); ++id) {
    if (components_[static_cast<std::size_t>(id)].kind == kind) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::optional<std::string> Netlist::find_dangling_port() const {
  for (ComponentId id = 0; id < component_count(); ++id) {
    const Component& c = components_[static_cast<std::size_t>(id)];
    for (std::int64_t p = 0; p < c.outputs; ++p) {
      if (!out_links_[static_cast<std::size_t>(id)][static_cast<std::size_t>(
              p)]) {
        return std::string(kind_name(c.kind)) + " '" + c.label +
               "' output port " + std::to_string(p) + " is dangling";
      }
    }
    for (std::int64_t p = 0; p < c.inputs; ++p) {
      if (!in_links_[static_cast<std::size_t>(id)][static_cast<std::size_t>(
              p)]) {
        return std::string(kind_name(c.kind)) + " '" + c.label +
               "' input port " + std::to_string(p) + " is dangling";
      }
    }
  }
  return std::nullopt;
}

}  // namespace otis::optics
