// Fig. 6 of the paper: three line digraph iterations of the Kautz graph
// -- KG(2,1) = K_3, KG(2,2) = L(KG(2,1)), KG(2,3) = L^2(KG(2,1)).
// Regenerates all three with word labels and machine-checks both the
// iteration identity and the figure's arc structure.

#include <iostream>

#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "graph/line_digraph.hpp"
#include "topology/complete.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Fig. 6] line digraph iterations KG(2,1) -> KG(2,2) -> "
               "KG(2,3)\n\n";
  bool ok = true;

  for (int k = 1; k <= 3; ++k) {
    otis::topology::Kautz kautz(2, k);
    std::cout << "KG(2," << k << "): " << kautz.order()
              << " vertices, degree 2, diameter "
              << otis::graph::diameter(kautz.graph()) << "\n";
    otis::core::Table table({"vertex", "word", "out-neighbors (words)"});
    for (std::int64_t v = 0; v < kautz.order(); ++v) {
      std::string neighbors;
      for (std::int64_t w : kautz.graph().out_neighbors(v)) {
        neighbors += (neighbors.empty() ? "" : " ") +
                     otis::topology::Kautz::word_to_string(kautz.word_of(w));
      }
      table.add(v, otis::topology::Kautz::word_to_string(kautz.word_of(v)),
                neighbors);
    }
    table.print(std::cout);
    std::cout << "\n";
    ok = ok && otis::graph::diameter(kautz.graph()) == k;
  }

  // KG(2,1) = K_3.
  ok = ok && otis::topology::Kautz(2, 1).graph().same_arcs(
                 otis::topology::complete_digraph(
                     3, otis::topology::Loops::kWithout));
  // KG(2,k) = L(KG(2,k-1)), as graphs (identical numbering, see
  // topology/kautz.hpp).
  for (int k = 2; k <= 3; ++k) {
    otis::graph::Digraph line =
        otis::graph::line_digraph(otis::topology::Kautz(2, k - 1).graph())
            .graph;
    ok = ok && line.same_arcs(otis::topology::Kautz(2, k).graph());
  }
  // Spot-check arcs drawn in the figure: 010 -> 101 and 012 -> 120.
  otis::topology::Kautz kg23(2, 3);
  ok = ok && kg23.graph().has_arc(kg23.vertex_of({0, 1, 0}),
                                  kg23.vertex_of({1, 0, 1}));
  ok = ok && kg23.graph().has_arc(kg23.vertex_of({0, 1, 2}),
                                  kg23.vertex_of({1, 2, 0}));

  std::cout << "KG(2,1) = K_3, KG(2,k) = L(KG(2,k-1)), figure arcs present: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
