#pragma once
/// \file work_pool.hpp
/// A pool of worker threads with per-worker deques and work stealing.
///
/// Lives in core so every layer can fan out over it: the campaign
/// runner spreads grid cells across workers, and the routing compilers
/// split their per-source/per-group-pair loops over the same pool
/// (disjoint output ranges, so parallel compilation is bit-identical
/// to serial). Threads start once and persist across run() calls; each
/// run() scatters item indices into contiguous per-worker blocks,
/// workers drain their own block front-to-back and steal from the back
/// of victims' deques when empty.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace otis::core {

class WorkStealingPool {
 public:
  /// `threads` <= 0 means hardware concurrency.
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, count); returns when all completed.
  /// fn must be thread-safe across distinct items. Exceptions thrown by
  /// fn are captured and the first one is rethrown after the batch.
  /// NOT reentrant: fn must never call run() on the same pool.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// As above with the executing worker's index [0, thread_count())
  /// passed as the second argument -- the stable per-thread identity
  /// (steals included) that e.g. telemetry span tracks key off.
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn);

  /// One worker's lifetime counters (valid once stats are enabled).
  /// busy covers job execution, idle the batch-wait blocks, steal the
  /// queue scans; items/steals count executed vs stolen items. Wall
  /// clock not covered by the three (mutex handoffs, scheduling) is
  /// small, so busy + idle + steal tracks the pool's lifetime.
  struct WorkerStats {
    std::int64_t busy_ns = 0;
    std::int64_t idle_ns = 0;
    std::int64_t steal_ns = 0;
    std::int64_t items = 0;
    std::int64_t steals = 0;
  };

  /// Turns on per-worker accounting (relaxed atomics on worker-private
  /// cache lines; a few counter updates per item). Off by default so
  /// the route compilers' fine-grained batches pay nothing. Enable
  /// before the first run() whose items should be counted.
  void enable_stats();
  /// Snapshot of every worker's counters (zeros when never enabled).
  /// Racy against in-flight updates by design -- the numbers feed
  /// reports, not the simulation.
  [[nodiscard]] std::vector<WorkerStats> stats() const;
  /// Nanoseconds since the pool was constructed -- the wall clock the
  /// per-worker busy/idle/steal times are measured against.
  [[nodiscard]] std::int64_t stats_wall_ns() const;

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> items;
  };
  /// Worker-private counter block, padded to its own cache line.
  struct alignas(64) Counters {
    std::atomic<std::int64_t> busy_ns{0};
    std::atomic<std::int64_t> idle_ns{0};
    std::atomic<std::int64_t> steal_ns{0};
    std::atomic<std::int64_t> items{0};
    std::atomic<std::int64_t> steals{0};
  };

  void worker_main(std::size_t self);
  bool try_acquire(std::size_t self, std::size_t& item, bool& stolen);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Counters>> stats_;
  std::atomic<bool> stats_enabled_{false};
  std::chrono::steady_clock::time_point stats_epoch_ =
      std::chrono::steady_clock::now();

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;  ///< items of the current batch not yet done
  std::size_t active_ = 0;     ///< workers currently inside the batch
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace otis::core
