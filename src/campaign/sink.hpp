#pragma once
/// \file sink.hpp
/// Streaming result sinks for campaign runs.
///
/// The runner hands every finished cell to each attached sink *in cell
/// expansion order* (it reorders worker completions behind a buffer), so
/// sink output is a pure function of the spec -- bit-identical across
/// worker thread counts. File sinks open in append mode when a campaign
/// resumes, continuing the stream after the rows of the earlier run.
///
/// Shipped sinks:
///  - JsonlSink: one self-describing JSON object per cell (the format CI
///    archives and the thread-invariance test byte-compares);
///  - CsvSink: the same rows as CSV for spreadsheet/plot pipelines;
///  - AggregateSink: in-memory fold of seeds into sim::SweepPoint means
///    + stddevs per (topology, arbitration, load, wavelengths) group.

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/grid.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace otis::campaign {

/// A finished cell plus the context needed to normalize its metrics.
/// Traffic and timing travel inside `cell` (their labels carry the
/// shape/skew parameters into the row streams).
struct CellResult {
  CampaignCell cell;
  std::string topology_label;
  std::int64_t nodes = 0;
  std::int64_t couplers = 0;
  sim::RunMetrics metrics;
};

/// Consumer of campaign results. consume() is called from one thread at
/// a time, in cell expansion order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(const CellResult& result) = 0;
  /// Makes consumed rows durable; the runner calls this before marking
  /// cells complete in the manifest.
  virtual void flush() {}
  /// Called once after the last cell.
  virtual void close() { flush(); }
};

/// JSON-Lines writer: one object per cell with fixed key order and fixed
/// float formatting (6 decimals), so equal campaigns give equal bytes.
class JsonlSink : public ResultSink {
 public:
  JsonlSink(const std::string& path, bool append);
  void consume(const CellResult& result) override;
  void flush() override;

 private:
  std::ofstream out_;
};

/// CSV writer with the same per-cell fields as JsonlSink. The header row
/// is written only on fresh (non-append) opens.
class CsvSink : public ResultSink {
 public:
  CsvSink(const std::string& path, bool append);
  void consume(const CellResult& result) override;
  void flush() override;

  /// The column list, shared with docs/tests.
  [[nodiscard]] static const std::vector<std::string>& columns();

 private:
  std::ofstream out_;
};

/// Folds the seed axis: one sim::SweepPoint per distinct
/// (topology, arbitration, traffic, load, wavelengths, routes, timing,
/// workload) combination, merged with trial-count weighting (mean +
/// stddev per metric). Traffic, timing and workload are keyed by their
/// canonical labels -- shape-swept entries land in distinct groups.
/// Groups appear in first-cell order.
class AggregateSink : public ResultSink {
 public:
  struct Group {
    std::string topology;
    std::string arbitration;
    std::string traffic;  ///< TrafficSpec::label()
    double load = 0.0;
    std::int64_t wavelengths = 1;
    sim::RouteTable routes = sim::RouteTable::kAuto;
    std::string timing;    ///< TimingConfig::label()
    std::string workload;  ///< WorkloadSpec::label()
    std::int64_t nodes = 0;
    std::int64_t couplers = 0;
    sim::SweepPoint point;
  };

  void consume(const CellResult& result) override;

  /// Merges one trial point into its group directly. This is how a
  /// resumed campaign re-folds cells completed by an earlier run (their
  /// rows come from results.jsonl, not from a fresh simulation) so the
  /// aggregate covers the whole grid, not just this invocation's cells.
  void fold(const std::string& topology, const std::string& arbitration,
            const std::string& traffic, double load, std::int64_t wavelengths,
            sim::RouteTable routes, const std::string& timing,
            const std::string& workload, std::int64_t nodes,
            std::int64_t couplers, const sim::SweepPoint& trial);

  [[nodiscard]] const std::vector<Group>& groups() const noexcept {
    return groups_;
  }

  /// Writes groups as CSV (means + stddevs); used by campaign_runner for
  /// the end-of-run aggregate.csv.
  void write_csv(const std::string& path) const;

 private:
  std::vector<Group> groups_;
};

}  // namespace otis::campaign
