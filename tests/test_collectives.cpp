// Tests for collective communication schedules on POPS and stack-Kautz:
// physical validity (single wavelength), completion under the combining
// model, and optimality against the lower bounds.

#include <gtest/gtest.h>

#include "collectives/pops_collectives.hpp"
#include "collectives/schedule.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"

namespace otis::collectives {
namespace {

TEST(Schedule, ValidateRejectsDoubleCouplerUse) {
  hypergraph::Pops pops(2, 2);
  SlotSchedule schedule;
  const auto coupler = pops.coupler(0, 1);
  schedule.slots.push_back({Transmission{pops.processor(0, 0), coupler},
                            Transmission{pops.processor(0, 1), coupler}});
  const std::string error = validate_schedule(pops.stack(), schedule);
  EXPECT_NE(error.find("single wavelength"), std::string::npos);
}

TEST(Schedule, ValidateRejectsNonSourceSender) {
  hypergraph::Pops pops(2, 2);
  SlotSchedule schedule;
  // Processor of group 1 cannot feed coupler (0, 0).
  schedule.slots.push_back(
      {Transmission{pops.processor(1, 0), pops.coupler(0, 0)}});
  const std::string error = validate_schedule(pops.stack(), schedule);
  EXPECT_NE(error.find("cannot feed"), std::string::npos);
}

TEST(Schedule, ValidateAcceptsEmptyAndDisjoint) {
  hypergraph::Pops pops(2, 2);
  SlotSchedule schedule;
  schedule.slots.push_back({});
  schedule.slots.push_back(
      {Transmission{pops.processor(0, 0), pops.coupler(0, 0)},
       Transmission{pops.processor(1, 0), pops.coupler(1, 0)}});
  EXPECT_TRUE(validate_schedule(pops.stack(), schedule).empty());
  EXPECT_EQ(schedule.slot_count(), 2);
  EXPECT_EQ(schedule.transmission_count(), 2);
}

TEST(Schedule, InitialKnowledgeIsDiagonal) {
  Knowledge knowledge = initial_knowledge(4);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(knowledge[u][v] != 0, u == v);
    }
  }
  EXPECT_FALSE(gossip_complete(knowledge));
  EXPECT_FALSE(broadcast_complete(knowledge, 0));
}

TEST(Schedule, RunPropagatesThroughCoupler) {
  hypergraph::Pops pops(2, 2);
  SlotSchedule schedule;
  schedule.slots.push_back(
      {Transmission{pops.processor(0, 0), pops.coupler(0, 1)}});
  Knowledge after = run_schedule(pops.stack(), schedule,
                                 initial_knowledge(4));
  // Group 1 = processors 2, 3 heard processor 0's token.
  EXPECT_TRUE(after[2][0]);
  EXPECT_TRUE(after[3][0]);
  EXPECT_FALSE(after[1][0]);  // same-group sibling did not hear (0,1)
}

TEST(Schedule, SameSlotPayloadsAreSnapshotted) {
  // A -> B and B -> C in the same slot: C must NOT receive A's token
  // (B's payload is its knowledge at slot start).
  hypergraph::Pops pops(1, 3);
  SlotSchedule schedule;
  schedule.slots.push_back(
      {Transmission{pops.processor(0, 0), pops.coupler(0, 1)},
       Transmission{pops.processor(1, 0), pops.coupler(1, 2)}});
  Knowledge after = run_schedule(pops.stack(), schedule,
                                 initial_knowledge(3));
  EXPECT_TRUE(after[1][0]);   // B heard A
  EXPECT_TRUE(after[2][1]);   // C heard B's own token
  EXPECT_FALSE(after[2][0]);  // but not A's, which B learned this slot
}

class PopsCollectivesSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(PopsCollectivesSweep, OneToAllCompletesInOneSlot) {
  const auto [t, g] = GetParam();
  hypergraph::Pops pops(t, g);
  for (hypergraph::Node root : {hypergraph::Node{0},
                                pops.processor_count() / 2,
                                pops.processor_count() - 1}) {
    SlotSchedule schedule = pops_one_to_all(pops, root);
    EXPECT_EQ(schedule.slot_count(), 1);
    EXPECT_TRUE(validate_schedule(pops.stack(), schedule).empty());
    Knowledge after = run_schedule(pops.stack(), schedule,
                                   initial_knowledge(pops.processor_count()));
    EXPECT_TRUE(broadcast_complete(after, root));
  }
}

TEST_P(PopsCollectivesSweep, GossipCompletesInTSlots) {
  const auto [t, g] = GetParam();
  hypergraph::Pops pops(t, g);
  SlotSchedule schedule = pops_gossip(pops);
  EXPECT_EQ(schedule.slot_count(), t);
  EXPECT_EQ(schedule.slot_count(), pops_gossip_lower_bound(pops));
  EXPECT_TRUE(validate_schedule(pops.stack(), schedule).empty());
  Knowledge after = run_schedule(pops.stack(), schedule,
                                 initial_knowledge(pops.processor_count()));
  EXPECT_TRUE(gossip_complete(after));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PopsCollectivesSweep,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 1},
                      std::pair<std::int64_t, std::int64_t>{4, 2},
                      std::pair<std::int64_t, std::int64_t>{2, 4},
                      std::pair<std::int64_t, std::int64_t>{5, 3}));

class StackKautzCollectivesSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, int>> {};

TEST_P(StackKautzCollectivesSweep, OneToAllCompletesInKSlots) {
  const auto [s, d, k] = GetParam();
  hypergraph::StackKautz sk(s, d, k);
  for (hypergraph::Node root : {hypergraph::Node{0},
                                sk.processor_count() / 3,
                                sk.processor_count() - 1}) {
    SlotSchedule schedule = stack_kautz_one_to_all(sk, root);
    EXPECT_EQ(schedule.slot_count(), k);
    EXPECT_EQ(schedule.slot_count(), stack_kautz_broadcast_lower_bound(sk));
    EXPECT_TRUE(validate_schedule(sk.stack(), schedule).empty());
    Knowledge after = run_schedule(sk.stack(), schedule,
                                   initial_knowledge(sk.processor_count()));
    EXPECT_TRUE(broadcast_complete(after, root))
        << "root " << root << " on SK(" << s << "," << d << "," << k << ")";
  }
}

TEST_P(StackKautzCollectivesSweep, GossipCompletesInSPlusKSlots) {
  const auto [s, d, k] = GetParam();
  hypergraph::StackKautz sk(s, d, k);
  SlotSchedule schedule = stack_kautz_gossip(sk);
  EXPECT_EQ(schedule.slot_count(), s + k);
  EXPECT_TRUE(validate_schedule(sk.stack(), schedule).empty());
  Knowledge after = run_schedule(sk.stack(), schedule,
                                 initial_knowledge(sk.processor_count()));
  EXPECT_TRUE(gossip_complete(after));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackKautzCollectivesSweep,
    ::testing::Values(std::tuple<std::int64_t, int, int>{2, 2, 2},
                      std::tuple<std::int64_t, int, int>{6, 3, 2},
                      std::tuple<std::int64_t, int, int>{3, 2, 3},
                      std::tuple<std::int64_t, int, int>{1, 2, 2}));

TEST(StackKautzCollectives, BroadcastIsNotFasterThanDiameter) {
  // One fewer slot must leave someone uninformed (the schedule is tight).
  hypergraph::StackKautz sk(2, 2, 3);
  SlotSchedule schedule = stack_kautz_one_to_all(sk, 0);
  schedule.slots.pop_back();
  Knowledge after = run_schedule(sk.stack(), schedule,
                                 initial_knowledge(sk.processor_count()));
  EXPECT_FALSE(broadcast_complete(after, 0));
}

}  // namespace
}  // namespace otis::collectives
