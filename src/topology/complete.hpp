#pragma once
/// \file complete.hpp
/// Complete digraphs K_g and K+_g.
///
/// The POPS network (paper Sec. 2.4, Fig. 5) is the stack-graph of K+_g,
/// the complete digraph *with loops*: a group talks to every group
/// including itself, one OPS coupler per ordered pair (i, j).

#include "graph/digraph.hpp"

namespace otis::topology {

/// Loop policy for complete digraphs.
enum class Loops { kWithout, kWith };

/// K_g (loops == kWithout, g(g-1) arcs) or K+_g (loops == kWith, g^2 arcs).
/// Arcs out of each vertex are emitted in Imase-Itoh order, i.e. head
/// (-g*u - alpha) mod g for alpha = 1..g when loops are present; this makes
/// K+_g literally equal (not just isomorphic) to II(g, g), matching the
/// paper's use of OTIS(g,g) as the POPS interconnect.
[[nodiscard]] graph::Digraph complete_digraph(std::int64_t g, Loops loops);

}  // namespace otis::topology
