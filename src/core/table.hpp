#pragma once
/// \file table.hpp
/// Column-aligned plain-text tables.
///
/// Every bench binary regenerates a paper figure or claim as rows of a
/// table; this writer keeps that output consistent and diffable.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace otis::core {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded or truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each value with std::to_string-like rules.
  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    add_row(std::move(cells));
  }

  /// Number of data rows.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g. for stdout.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  [[nodiscard]] std::string to_string() const;

 private:
  static std::string to_cell(const std::string& v) { return v; }
  static std::string to_cell(const char* v) { return v; }
  static std::string to_cell(bool v) { return v ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 3) without trailing
/// locale surprises; shared by Table and the CSV writer.
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace otis::core
