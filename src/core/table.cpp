#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace otis::core {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::to_cell(double v) { return format_double(v); }

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace otis::core
