#include "sim/async_engine.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/error.hpp"
#include "sim/arbitration.hpp"
#include "sim/calendar_queue.hpp"

namespace otis::sim {
namespace {

/// Same per-run stream as the serial engines: the zero-delay limit must
/// consume the identical RNG sequence.
constexpr std::uint64_t kRunStream = 0x0715;

/// Slot-valued latency of a timed delivery: the number of whole slots
/// the packet needed, rounding a partially-used slot up. In the
/// zero-delay limit this equals the phased engine's (now - created + 1).
std::int64_t latency_slots(SimTime delivered_tick, SimTime created_tick) {
  return (delivered_tick - created_tick + kTicksPerSlot - 1) / kTicksPerSlot;
}

}  // namespace

template <routing::RouteView Routes>
AsyncEngineT<Routes>::AsyncEngineT(const hypergraph::StackGraph& network,
                                   const Routes& routes,
                                   TrafficGenerator& traffic,
                                   const SimConfig& config,
                                   const TimingModel& timing)
    : network_(network),
      routes_(routes),
      traffic_(traffic),
      config_(config),
      timing_(timing) {
  const auto& hg = network_.hypergraph();
  nodes_ = hg.node_count();
  couplers_ = hg.hyperarc_count();
  OTIS_REQUIRE(timing_.coupler_count() == couplers_,
               "AsyncEngine: timing model sized for another network");
  voq_base_.resize(static_cast<std::size_t>(nodes_) + 1);
  voq_base_[0] = 0;
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    voq_base_[static_cast<std::size_t>(v) + 1] =
        voq_base_[static_cast<std::size_t>(v)] + hg.out_degree(v);
  }
  feed_.build(hg, voq_base_);
  retune_.assign(static_cast<std::size_t>(voq_base_.back()), 0);
  token_.assign(static_cast<std::size_t>(couplers_), 0);
}

template <routing::RouteView Routes>
bool AsyncEngineT<Routes>::gates_open() const {
  if (timing_.guard() != 0) {
    return false;
  }
  for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
    if (timing_.tuning(h) != 0) {
      return false;
    }
  }
  return true;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run(
    std::vector<std::int64_t>& coupler_success) {
  if (config_.workload != nullptr) {
    return run_workload(coupler_success);
  }
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  core::Rng rng = core::Rng::stream(config_.seed, kRunStream);
  RunMetrics metrics;
  metrics.slots = config_.measure_slots;
  metrics.latency.reserve(
      std::min(config_.measure_slots * nodes_, kLatencyReserveCap));

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const SimTime warmup_tick = ticks_from_slots(config_.warmup_slots);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  std::int64_t inflight = 0;
  std::int64_t next_packet_id = 0;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  /// An in-flight transmission: coupler -> receivers, landing at the
  /// event's calendar time. `measuring` is the transmission slot's flag
  /// (the phased engine accounts deliveries in the slot that carried
  /// them, so the async engine must too).
  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
    bool measuring = false;
  };
  CalendarQueue<Arrival> propagations;

  // Hoisted scratch, as in the phased engine.
  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<std::uint64_t> eligible(
      open ? 0 : static_cast<std::size_t>(feed_.mask_base.back()), 0);
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const std::int64_t queue_cap = config_.queue_capacity;
  const Arbitration policy = config_.arbitration;

  // Telemetry (see phased run_serial): one pointer test per slot when
  // detached, state reads only at sampling boundaries. The async
  // engine additionally reports the calendar-queue pending count.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(),
                               config_.warmup_slots, horizon);
  }
  const auto fill_probes = [&]() {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events,
            static_cast<std::int64_t>(propagations.pending()));
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
  };

  /// Queues `entry` at `at`; `tick` is when it landed there (its
  /// transmitter is tuned `tuning` ticks later). Mirrors the phased
  /// engine's enqueue, including drop accounting. On the gates-open
  /// fast path ready is never read, so the next-coupler lookup that
  /// only feeds the tuning latency is skipped.
  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                           SimTime tick, bool measuring) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    if (queue_cap > 0 && static_cast<std::int64_t>(size) >= queue_cap) {
      if (measuring) {
        ++metrics.dropped_packets;
      }
      --inflight;
      return;
    }
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  /// Receive step of one landed transmission.
  const auto receive = [&](const Arrival& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      if (arrival.measuring) {
        ++metrics.delivered_packets;
        if (arrival.entry.created >= warmup_tick) {
          metrics.latency.record(latency_slots(tick, arrival.entry.created));
        }
      }
      --inflight;
    } else {
      enqueue(arrival.entry, relay, tick, arrival.measuring);
    }
  };

  for (SimTime now = 0;;) {
    const SimTime slot_tick = ticks_from_slots(now);
    const bool measuring = now >= config_.warmup_slots && now < horizon;

    // Receive every transmission that landed by this slot boundary --
    // the phased engine's phase 3 runs before the next slot's phase 1,
    // so arrivals at exactly the boundary precede this slot's work.
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(event.payload, event.time);
    }

    // Generate (stops at the horizon; drain only afterwards). Compact
    // batch: only the slot's actual senders come back.
    if (now < horizon) {
      const std::size_t sender_count =
          traffic_.demand_batch_senders(0, nodes_, rng, senders.data());
      if (measuring) {
        metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      }
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{next_packet_id++, d.destination, slot_tick, 0},
                d.source, slot_tick, measuring);
      }
    }

    // Arbitrate: winner selection over the occupied couplers,
    // restricted to head packets whose transmitter tuned in time (the
    // gates-open fast path arbitrates the occupancy words directly).
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const std::uint64_t* request = masks.request.data() + mb;
        if (!open) {
          // Head eligible iff its own tuning finished AND the
          // transmitter re-tuned since the queue's previous
          // transmission, both guard ticks before the boundary.
          std::uint64_t any = 0;
          for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = request[wi];
            std::uint64_t elig = 0;
            while (bits != 0) {
              const std::size_t si =
                  (wi << 6) +
                  static_cast<std::size_t>(std::countr_zero(bits));
              const std::uint64_t bit = bits & (~bits + 1);
              bits &= bits - 1;
              const std::size_t qi =
                  static_cast<std::size_t>(feed_.feed_qi[fb + si]);
              const SimTime gate =
                  std::max(voq.front_ready(qi), retune_[qi]);
              if (gate + guard <= slot_tick) {
                elig |= bit;
              }
            }
            eligible[mb + wi] = elig;
            any |= elig;
          }
          if (any == 0) {
            continue;
          }
          request = eligible.data() + mb;
        }
        const bool collided =
            detail::pick_winners(policy, capacity, source_count, request,
                                 words, token_[h], rng, winners, scratch);
        if (collided && measuring) {
          ++metrics.collisions;
        }
        for (std::size_t si : winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          TimedVoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          if (!open) {
            // Transmitter dead time: busy through this slot, re-tunes
            // after. (With gates open the re-tune lands exactly on the
            // next boundary and can never block, so it is not tracked.)
            retune_[qi] = slot_tick + kTicksPerSlot +
                          timing_.tuning(
                              static_cast<hypergraph::HyperarcId>(h));
          }
          ++entry.hops;
          if (measuring) {
            ++metrics.coupler_transmissions;
            ++coupler_success[h];
          }
          // Propagate: the transmission occupies slot `now` and lands
          // prop(h) ticks after the next boundary.
          propagations.push(
              slot_tick + kTicksPerSlot +
                  timing_.propagation(static_cast<hypergraph::HyperarcId>(h)),
              Arrival{VoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops},
                      static_cast<hypergraph::HyperarcId>(h), measuring});
        }
      }
    }

    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes();
        tel->sample(now);
      }
      tel_last = now;
    }

    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      break;
    }
    ++now;
    if (now > drain_bound) {
      break;
    }
  }

  // Transmissions of the final slot are still in flight; land them (the
  // phased engine's last phase 3 does the same work inside the slot).
  while (!propagations.empty()) {
    auto event = propagations.pop();
    receive(event.payload, event.time);
  }

  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes();
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run_workload(
    std::vector<std::int64_t>& coupler_success) {
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  workload::Workload& load = *config_.workload;
  load.reset();

  // Workload RNG contract (shared with the phased engines): generation
  // from per-node streams, arbitration from per-coupler streams.
  std::vector<core::Rng> gen_rng = detail::node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng =
      detail::coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  // Shared with the phased engines; skew can only defer deliveries by
  // bounded sub-slot amounts, so no extra headroom needed.
  const SimTime bound = detail::workload_slot_bound(load);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  std::int64_t inflight = 0;
  SimTime makespan_tick = 0;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
  };
  CalendarQueue<Arrival> propagations;

  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<std::uint64_t> eligible(
      open ? 0 : static_cast<std::size_t>(feed_.mask_base.back()), 0);
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  std::vector<workload::WorkloadPacket> inject;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const Arbitration policy = config_.arbitration;
  metrics.latency.reserve(std::min(background_base, kLatencyReserveCap));

  // Telemetry, as in the open-loop run above (no warmup window).
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(), 0, bound + 1);
  }
  const auto fill_probes = [&]() {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events,
            static_cast<std::int64_t>(propagations.pending()));
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
  };

  // queue_capacity is 0 in workload mode (validated): never drops.
  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                           SimTime tick) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  const auto receive = [&](const Arrival& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      ++metrics.delivered_packets;
      metrics.latency.record(latency_slots(tick, arrival.entry.created));
      if (arrival.entry.id < background_base) {
        load.delivered(arrival.entry.id);
        makespan_tick = std::max(makespan_tick, tick);
      }
      --inflight;
    } else {
      enqueue(arrival.entry, relay, tick);
    }
  };

  SimTime now = 0;
  for (;;) {
    const SimTime slot_tick = ticks_from_slots(now);

    // Receive everything that landed by this boundary; all of a
    // boundary's deliveries reach the workload before the poll below
    // (order within the boundary is irrelevant by the poll contract).
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(event.payload, event.time);
    }
    const bool load_done = load.done();
    if (load_done && inflight == 0) {
      break;
    }
    if (now > bound) {
      // The phased engines count the bound-hit boundary as a slot
      // (they break after ++now); do the same so slots/backlog agree
      // across engines even for runs the bound cuts off.
      ++now;
      break;
    }

    // Inject the packets that became eligible, then background traffic
    // (same per-node VOQ push order as the phased engines).
    if (!load_done) {
      inject.clear();
      load.poll(now, inject);
      for (const workload::WorkloadPacket& packet : inject) {
        ++metrics.offered_packets;
        ++inflight;
        enqueue(VoqEntry{packet.id, packet.destination, slot_tick, 0},
                packet.source, slot_tick);
      }
      const std::size_t sender_count = traffic_.demand_batch_senders_streams(
          0, nodes_, gen_rng.data(), senders.data());
      metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{background_base + now * nodes_ + d.source,
                         d.destination, slot_tick, 0},
                d.source, slot_tick);
      }
    }

    // Arbitrate over eligibility-gated heads, per-coupler streams.
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const std::uint64_t* request = masks.request.data() + mb;
        if (!open) {
          std::uint64_t any = 0;
          for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = request[wi];
            std::uint64_t elig = 0;
            while (bits != 0) {
              const std::size_t si =
                  (wi << 6) +
                  static_cast<std::size_t>(std::countr_zero(bits));
              const std::uint64_t bit = bits & (~bits + 1);
              bits &= bits - 1;
              const std::size_t qi =
                  static_cast<std::size_t>(feed_.feed_qi[fb + si]);
              const SimTime gate =
                  std::max(voq.front_ready(qi), retune_[qi]);
              if (gate + guard <= slot_tick) {
                elig |= bit;
              }
            }
            eligible[mb + wi] = elig;
            any |= elig;
          }
          if (any == 0) {
            continue;
          }
          request = eligible.data() + mb;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, request, words, token_[h],
            arb_rng[h], winners, scratch);
        if (collided) {
          ++metrics.collisions;
        }
        for (std::size_t si : winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          TimedVoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          if (!open) {
            retune_[qi] = slot_tick + kTicksPerSlot +
                          timing_.tuning(
                              static_cast<hypergraph::HyperarcId>(h));
          }
          ++entry.hops;
          ++metrics.coupler_transmissions;
          ++coupler_success[h];
          propagations.push(
              slot_tick + kTicksPerSlot +
                  timing_.propagation(static_cast<hypergraph::HyperarcId>(h)),
              Arrival{VoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops},
                      static_cast<hypergraph::HyperarcId>(h)});
        }
      }
    }

    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes();
        tel->sample(now);
      }
      tel_last = now;
    }
    ++now;
  }

  metrics.slots = now;
  metrics.makespan_slots =
      (makespan_tick + kTicksPerSlot - 1) / kTicksPerSlot;
  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes();
    tel->finish(tel_last);
  }
  return metrics;
}

template class AsyncEngineT<routing::CompiledRoutes>;
template class AsyncEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
