#include "topology/kautz.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"
#include "topology/imase_itoh.hpp"

namespace otis::topology {

Kautz::Kautz(int degree, int diameter) : d_(degree), k_(diameter) {
  OTIS_REQUIRE(d_ >= 1, "Kautz: degree must be >= 1");
  OTIS_REQUIRE(k_ >= 1, "Kautz: diameter must be >= 1");
  n_ = core::kautz_order(d_, k_);
  // By Corollary 1 / Imase-Itoh 1983 the arc set in iota numbering is that
  // of II(d, N); building it arithmetically is O(N d) and the word-level
  // definition is verified against it in tests.
  graph_ = ImaseItoh(d_, n_).graph();
}

bool Kautz::is_valid_word(const Word& word) const {
  if (static_cast<int>(word.size()) != k_) {
    return false;
  }
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (word[i] < 0 || word[i] > d_) {
      return false;
    }
    if (i > 0 && word[i] == word[i - 1]) {
      return false;
    }
  }
  return true;
}

std::int64_t Kautz::vertex_of_impl(const int* letters, int length) const {
  if (length == 1) {
    return letters[0];
  }
  const std::int64_t n_prev = core::kautz_order(d_, length - 1);
  const std::int64_t prefix = vertex_of_impl(letters, length - 1);
  const std::int64_t suffix = vertex_of_impl(letters + 1, length - 1);
  const std::int64_t alpha =
      core::floor_mod(-static_cast<std::int64_t>(d_) * prefix - suffix,
                      n_prev);
  OTIS_ASSERT(alpha >= 1 && alpha <= d_,
              "Kautz word numbering: alpha out of 1..d");
  return d_ * prefix + alpha - 1;
}

std::int64_t Kautz::vertex_of(const Word& word) const {
  OTIS_REQUIRE(is_valid_word(word), "Kautz::vertex_of: invalid word");
  return vertex_of_impl(word.data(), k_);
}

void Kautz::word_of_impl(std::int64_t v, int length, int* out) const {
  if (length == 1) {
    out[0] = static_cast<int>(v);
    return;
  }
  const std::int64_t n_prev = core::kautz_order(d_, length - 1);
  const std::int64_t prefix = v / d_;
  const int alpha = static_cast<int>(v % d_) + 1;
  const std::int64_t suffix =
      core::floor_mod(-static_cast<std::int64_t>(d_) * prefix - alpha, n_prev);
  // Decode prefix into out[0 .. length-2] and suffix into out[1 ..
  // length-1]; they overlap on length-2 letters, which must agree -- that
  // overlap is exactly the line-digraph consistency of the numbering.
  word_of_impl(prefix, length - 1, out);
  if (length >= 3) {
    const int prefix_second_letter = out[1];  // overwritten by suffix decode
    word_of_impl(suffix, length - 1, out + 1);
    OTIS_ASSERT(out[1] == prefix_second_letter,
                "Kautz word decoding: prefix/suffix overlap mismatch");
  } else {
    word_of_impl(suffix, length - 1, out + 1);
  }
}

Word Kautz::word_of(std::int64_t v) const {
  OTIS_REQUIRE(v >= 0 && v < n_, "Kautz::word_of: vertex out of range");
  Word word(static_cast<std::size_t>(k_));
  word_of_impl(v, k_, word.data());
  OTIS_ASSERT(is_valid_word(word), "Kautz::word_of produced invalid word");
  return word;
}

Word Kautz::shift(const Word& word, int z) {
  OTIS_REQUIRE(!word.empty(), "Kautz::shift: empty word");
  OTIS_REQUIRE(z != word.back(), "Kautz::shift: z equals last letter");
  Word next(word.begin() + 1, word.end());
  next.push_back(z);
  return next;
}

std::vector<Word> Kautz::all_words() const {
  std::vector<Word> words;
  words.reserve(static_cast<std::size_t>(n_));
  for (std::int64_t v = 0; v < n_; ++v) {
    words.push_back(word_of(v));
  }
  return words;
}

std::string Kautz::word_to_string(const Word& word) {
  bool wide = false;
  for (int letter : word) {
    if (letter > 9) {
      wide = true;
    }
  }
  std::string text;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (wide && i > 0) {
      text += '.';
    }
    text += std::to_string(word[i]);
  }
  return text;
}

graph::Digraph kautz_with_loops(int degree, int diameter) {
  Kautz kautz(degree, diameter);
  std::vector<graph::Arc> arcs;
  const graph::Digraph& base = kautz.graph();
  arcs.reserve(static_cast<std::size_t>(base.size() + base.order()));
  for (graph::Vertex v = 0; v < base.order(); ++v) {
    for (graph::ArcId a = base.out_begin(v); a < base.out_end(v); ++a) {
      arcs.push_back(graph::Arc{v, base.head(a)});
    }
    arcs.push_back(graph::Arc{v, v});  // the loop, last out-arc of v
  }
  return graph::Digraph::from_arcs(base.order(), arcs);
}

}  // namespace otis::topology
