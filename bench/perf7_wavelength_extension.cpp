// Perf F7 (future-work extension): multi-wavelength OPS couplers. The
// paper fixes "single-wavelength OPS couplers ... only one processor can
// send an optical signal through it per time step" (Sec. 2.2) and points
// at WDM as the enabling technology ([8, 20, 21]). This bench asks what
// W wavelengths per coupler buy the stack-Kautz network: saturation
// throughput should scale with min(W, contention) and then flatten once
// the couplers stop being the bottleneck (receiver/relay limits take
// over).
//
// The W axis is a campaign wavelengths sweep on one topology -- the
// routing table is compiled once and shared across all W cells (the
// full-scale version of this grid is specs/wdm_sweep.json).

#include <iostream>
#include <memory>
#include <vector>

#include "campaign/runner.hpp"
#include "core/table.hpp"

int main() {
  std::cout << "[Perf F7] WDM extension: wavelengths per coupler on "
               "saturated SK(6,3,2) (campaign API)\n\n";
  const std::vector<std::int64_t> wavelengths{1, 2, 3, 4, 6};

  otis::campaign::CampaignSpec spec;
  spec.name = "perf7-wdm-extension";
  spec.topologies = {otis::campaign::TopologySpec::stack_kautz(6, 3, 2)};
  spec.traffics = {otis::campaign::TrafficKind::kSaturation};
  spec.loads = {1.0};
  spec.wavelengths = wavelengths;
  spec.seeds = {31};
  spec.warmup_slots = 200;
  spec.measure_slots = 1000;

  auto aggregate = std::make_shared<otis::campaign::AggregateSink>();
  otis::campaign::CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  otis::campaign::CampaignOptions options;
  options.threads = 0;
  runner.run(options);

  otis::core::Table table({"W", "sat thr/node", "aggregate pkt/slot",
                           "coupler tx/slot", "speedup vs W=1"});
  double base = 0.0;
  std::vector<double> throughputs;
  for (std::size_t i = 0; i < wavelengths.size(); ++i) {
    const otis::campaign::AggregateSink::Group& group =
        aggregate->groups()[i];
    const double thr = group.point.throughput_per_node;
    if (wavelengths[i] == 1) {
      base = thr;
    }
    throughputs.push_back(thr);
    table.add(wavelengths[i], thr,
              thr * static_cast<double>(group.nodes),
              group.point.coupler_utilization *
                  static_cast<double>(group.couplers),
              base > 0 ? thr / base : 0.0);
  }
  table.print(std::cout);

  // Shapes: monotone non-decreasing in W; W=2 gives a material gain over
  // W=1; the curve flattens (diminishing returns) by W=6 because with
  // s = 6 senders per coupler at most 6 can ever transmit.
  bool ok = true;
  for (std::size_t i = 1; i < throughputs.size(); ++i) {
    ok = ok && throughputs[i] >= throughputs[i - 1] - 0.01;
  }
  ok = ok && throughputs[1] > throughputs[0] * 1.2;
  const double tail_gain =
      throughputs.back() - throughputs[throughputs.size() - 2];
  const double head_gain = throughputs[1] - throughputs[0];
  ok = ok && tail_gain < head_gain;
  std::cout << "\nthroughput monotone in W, >20% gain at W=2, diminishing "
               "returns at the tail: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
