// Unit tests for the SoA VOQ arena backing the slot engines: FIFO
// order, ring wraparound, segment growth (abandon-and-double), many
// queues interleaved in one pool, per-shard pools, and the timed
// arena's front_ready fast path -- each checked against a
// std::deque<Entry> reference model under a randomized op sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "core/rng.hpp"
#include "sim/voq_arena.hpp"

namespace otis::sim {
namespace {

VoqEntry make_entry(std::int64_t id) {
  return VoqEntry{id, id * 3 + 1, id * 7 + 2,
                  static_cast<std::int32_t>(id % 5)};
}

void expect_entry_eq(const VoqEntry& a, const VoqEntry& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.hops, b.hops);
}

TEST(VoqArena, FifoOrderWithinOneQueue) {
  VoqArena arena;
  arena.init(1);
  for (std::int64_t i = 0; i < 5; ++i) {
    arena.push(0, make_entry(i));
  }
  EXPECT_EQ(arena.size(0), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    expect_entry_eq(arena.front(0), make_entry(i));
    expect_entry_eq(arena.pop_front(0), make_entry(i));
  }
  EXPECT_TRUE(arena.empty(0));
}

TEST(VoqArena, RingWrapsWithoutGrowth) {
  // Cycle pushes and pops so head laps the segment many times while the
  // live size stays below kInitialCapacity: no growth, order preserved.
  VoqArena arena;
  arena.init(1);
  std::int64_t next = 0;
  std::int64_t expected = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    while (arena.size(0) < VoqArena::kInitialCapacity - 1) {
      arena.push(0, make_entry(next++));
    }
    while (arena.size(0) > 2) {
      expect_entry_eq(arena.pop_front(0), make_entry(expected++));
    }
  }
  while (!arena.empty(0)) {
    expect_entry_eq(arena.pop_front(0), make_entry(expected++));
  }
  EXPECT_EQ(expected, next);
}

TEST(VoqArena, GrowthPreservesOrderAcrossDoublings) {
  // Push far past kInitialCapacity with a wrapped head (pop a few
  // first) so every doubling has to linearize a wrapped ring into the
  // fresh segment.
  VoqArena arena;
  arena.init(1);
  for (std::int64_t i = 0; i < 6; ++i) {
    arena.push(0, make_entry(i));
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    arena.pop_front(0);
  }
  for (std::int64_t i = 6; i < 200; ++i) {
    arena.push(0, make_entry(i));
  }
  EXPECT_EQ(arena.size(0), 196u);
  for (std::int64_t i = 4; i < 200; ++i) {
    expect_entry_eq(arena.pop_front(0), make_entry(i));
  }
  EXPECT_TRUE(arena.empty(0));
}

TEST(VoqArena, RandomizedParityAgainstDequeAcrossManyQueues) {
  // 32 queues interleaved in one pool, random push/pop mix: the arena
  // must agree with an independent std::deque per queue at every step.
  constexpr std::size_t kQueues = 32;
  VoqArena arena;
  arena.init(kQueues);
  std::vector<std::deque<VoqEntry>> model(kQueues);
  core::Rng rng(99);
  std::int64_t next = 0;
  for (int op = 0; op < 20000; ++op) {
    const std::size_t q = static_cast<std::size_t>(rng.uniform(kQueues));
    if (model[q].empty() || rng.bernoulli(0.55)) {
      const VoqEntry e = make_entry(next++);
      arena.push(q, e);
      model[q].push_back(e);
    } else {
      expect_entry_eq(arena.front(q), model[q].front());
      expect_entry_eq(arena.pop_front(q), model[q].front());
      model[q].pop_front();
    }
    ASSERT_EQ(arena.size(q), model[q].size());
    ASSERT_EQ(arena.empty(q), model[q].empty());
  }
  for (std::size_t q = 0; q < kQueues; ++q) {
    while (!model[q].empty()) {
      expect_entry_eq(arena.pop_front(q), model[q].front());
      model[q].pop_front();
    }
    EXPECT_TRUE(arena.empty(q));
  }
}

TEST(VoqArena, PerShardPoolsGrowIndependently) {
  // Queues assigned to different pools (the sharded engines' layout):
  // growth in one pool must not disturb entries living in another.
  constexpr std::size_t kQueues = 8;
  constexpr std::size_t kPools = 4;
  VoqArena arena;
  arena.init(kQueues, kPools);
  for (std::size_t q = 0; q < kQueues; ++q) {
    arena.set_pool(q, static_cast<std::uint32_t>(q % kPools));
  }
  std::vector<std::deque<VoqEntry>> model(kQueues);
  std::int64_t next = 0;
  // Uneven load: queue q gets 10 * (q + 1) entries, so pools double at
  // different times.
  for (std::size_t q = 0; q < kQueues; ++q) {
    for (std::size_t i = 0; i < 10 * (q + 1); ++i) {
      const VoqEntry e = make_entry(next++);
      arena.push(q, e);
      model[q].push_back(e);
    }
  }
  for (std::size_t q = 0; q < kQueues; ++q) {
    while (!model[q].empty()) {
      expect_entry_eq(arena.pop_front(q), model[q].front());
      model[q].pop_front();
    }
    EXPECT_TRUE(arena.empty(q));
  }
}

TEST(VoqArena, InitResetsState) {
  VoqArena arena;
  arena.init(2);
  arena.push(0, make_entry(1));
  arena.push(1, make_entry(2));
  arena.init(3);
  EXPECT_EQ(arena.queue_count(), 3u);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_TRUE(arena.empty(q));
  }
}

TEST(TimedVoqArena, FrontReadyMatchesFrontThroughWrapAndGrowth) {
  TimedVoqArena arena;
  arena.init(2);
  std::deque<TimedVoqEntry> model;
  core::Rng rng(5);
  std::int64_t next = 0;
  for (int op = 0; op < 5000; ++op) {
    if (model.empty() || rng.bernoulli(0.6)) {
      TimedVoqEntry e;
      e.id = next;
      e.destination = next * 2;
      e.created = next * 3;
      e.hops = static_cast<std::int32_t>(next % 4);
      e.ready = next * 11 + 7;
      ++next;
      arena.push(1, e);
      model.push_back(e);
    } else {
      ASSERT_EQ(arena.front_ready(1), model.front().ready);
      const TimedVoqEntry got = arena.pop_front(1);
      EXPECT_EQ(got.id, model.front().id);
      EXPECT_EQ(got.destination, model.front().destination);
      EXPECT_EQ(got.created, model.front().created);
      EXPECT_EQ(got.hops, model.front().hops);
      EXPECT_EQ(got.ready, model.front().ready);
      model.pop_front();
    }
    ASSERT_EQ(arena.size(1), model.size());
  }
}

}  // namespace
}  // namespace otis::sim
