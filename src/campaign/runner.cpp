#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "campaign/manifest.hpp"
#include "core/error.hpp"
#include "obs/runtime_stats.hpp"
#include "obs/telemetry.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/kernels.hpp"
#include "workload/schedule_workload.hpp"
#include "workload/trace.hpp"

namespace otis::campaign {

namespace {

std::unique_ptr<sim::TrafficGenerator> make_traffic(const CampaignCell& cell,
                                                    std::int64_t nodes) {
  // Shape values live on the cell's TrafficSpec (per axis entry), so a
  // grid can sweep hotspot fractions or burst lengths.
  const TrafficSpec& traffic = cell.traffic;
  switch (traffic.kind) {
    case TrafficKind::kSaturation:
      return std::make_unique<sim::SaturationTraffic>(nodes);
    case TrafficKind::kHotspot:
      return std::make_unique<sim::HotspotTraffic>(
          nodes, cell.load, traffic.hotspot_node, traffic.hotspot_fraction);
    case TrafficKind::kPermutation:
      // The permutation is drawn from the cell seed, so each seed axis
      // value is an independent partner assignment.
      return std::make_unique<sim::PermutationTraffic>(nodes, cell.load,
                                                       cell.seed);
    case TrafficKind::kBursty:
      return std::make_unique<sim::BurstyTraffic>(
          nodes, cell.load, traffic.bursty_enter_on, traffic.bursty_exit_on);
    case TrafficKind::kUniform:
      break;
  }
  return std::make_unique<sim::UniformTraffic>(nodes, cell.load);
}

/// Builds the cell's closed-loop driver (null for open-loop cells).
/// Workloads are stateful single-run objects, so every cell gets its
/// own instance; schedule kinds compile the topology's analytic
/// schedule, trace kinds load the file per cell (cheap next to the
/// simulation itself).
std::shared_ptr<workload::Workload> make_workload(
    const CampaignCell& cell, const CompiledTopology& topology) {
  const WorkloadSpec& spec = cell.workload;
  const std::int64_t nodes = topology.processor_count();
  switch (spec.kind) {
    case WorkloadKind::kNone:
      return nullptr;
    case WorkloadKind::kOneToAll:
      return workload::schedule_workload(
          topology.stack(),
          topology.collective_schedule(/*gossip=*/false, spec.root));
    case WorkloadKind::kGossip:
      return workload::schedule_workload(
          topology.stack(),
          topology.collective_schedule(/*gossip=*/true, 0));
    case WorkloadKind::kBsp:
      return workload::bsp_exchange(nodes, spec.phases, spec.shift);
    case WorkloadKind::kReduce:
      return workload::reduce_tree(nodes, spec.arity, spec.root);
    case WorkloadKind::kGather:
      return workload::gather_incast(nodes, spec.root);
    case WorkloadKind::kTrace: {
      auto trace = workload::Trace::load(spec.trace_file);
      OTIS_REQUIRE(trace.nodes == nodes,
                   "campaign: trace " + spec.trace_file + " was recorded on " +
                       std::to_string(trace.nodes) + " nodes, cell runs " +
                       std::to_string(nodes));
      return std::make_shared<workload::TraceWorkload>(std::move(trace));
    }
  }
  return nullptr;
}

/// Telemetry output paths resolve against out_dir (cwd when unset).
std::string resolve_out_path(const std::string& out_dir,
                             const std::string& path) {
  const std::filesystem::path p(path);
  if (p.is_absolute() || out_dir.empty()) {
    return path;
  }
  return (std::filesystem::path(out_dir) / p).string();
}

CellResult simulate_cell(const CampaignSpec& spec,
                         const CompiledTopology& topology,
                         const CampaignCell& cell,
                         std::shared_ptr<obs::Telemetry> telemetry,
                         std::shared_ptr<obs::RuntimeStats> runtime_stats,
                         const std::string& checkpoint_path,
                         bool checkpoint_resume,
                         std::int64_t checkpoint_stop) {
  sim::SimConfig config;
  config.arbitration = cell.arbitration;
  config.warmup_slots = spec.warmup_slots;
  config.measure_slots = spec.measure_slots;
  config.queue_capacity = spec.queue_capacity;
  config.seed = cell.seed;
  config.wavelengths = cell.wavelengths;
  config.engine = cell.engine;
  config.threads = cell.engine_threads;
  config.timing = cell.timing;
  config.workload = make_workload(cell, topology);
  config.telemetry = std::move(telemetry);
  config.runtime_stats = std::move(runtime_stats);
  config.latency_mode = spec.latency_stats;
  if (!checkpoint_path.empty()) {
    config.checkpoint_every_slots = spec.checkpoint_every;
    config.checkpoint_path = checkpoint_path;
    config.checkpoint_resume = checkpoint_resume;
    config.checkpoint_stop_at = checkpoint_stop;
  }

  std::unique_ptr<sim::TrafficGenerator> traffic =
      make_traffic(cell, topology.processor_count());

  CellResult result;
  result.cell = cell;
  result.topology_label = topology.label();
  result.nodes = topology.processor_count();
  result.couplers = topology.coupler_count();
  if (sim::resolve_route_table(cell.routes, topology.processor_count()) ==
      sim::RouteTable::kCompressed) {
    sim::OpsNetworkSim sim(topology.stack(), topology.compressed_routes(),
                           std::move(traffic), config);
    result.metrics = sim.run();
  } else {
    sim::OpsNetworkSim sim(topology.stack(), topology.routes(),
                           std::move(traffic), config);
    result.metrics = sim.run();
  }
  return result;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

void CampaignRunner::add_sink(std::shared_ptr<ResultSink> sink) {
  OTIS_REQUIRE(sink != nullptr, "CampaignRunner: sink must be set");
  extra_sinks_.push_back(std::move(sink));
}

CampaignReport CampaignRunner::run(const CampaignOptions& options) {
  const auto start_time = std::chrono::steady_clock::now();
  CampaignReport report;

  const std::vector<CampaignCell> cells = expand_grid(spec_);
  report.total_cells = static_cast<std::int64_t>(cells.size());

  // Output files + manifest-based skip set.
  std::vector<std::shared_ptr<ResultSink>> sinks = extra_sinks_;
  std::unique_ptr<Manifest> manifest;
  std::unordered_set<std::string> completed;
  if (!options.out_dir.empty()) {
    std::filesystem::create_directories(options.out_dir);
    const std::filesystem::path dir(options.out_dir);
    if (options.resume) {
      completed = Manifest::load((dir / kManifestFile).string());
    }
    if (options.write_jsonl) {
      sinks.push_back(std::make_shared<JsonlSink>(
          (dir / kJsonlFile).string(), options.resume));
    }
    if (options.write_csv) {
      sinks.push_back(std::make_shared<CsvSink>((dir / kCsvFile).string(),
                                                options.resume));
    }
    manifest =
        std::make_unique<Manifest>((dir / kManifestFile).string(),
                                   options.resume);
  }

  // Shared telemetry sinks: one timeseries writer and one trace sink
  // for the whole campaign; every cell's rows and spans are tagged, so
  // concurrent writers interleave without ambiguity.
  const obs::TelemetryConfig& tcfg = spec_.telemetry;
  std::shared_ptr<obs::TimeSeriesWriter> ts_writer;
  std::shared_ptr<obs::ChromeTraceSink> trace_sink;
  if (tcfg.sample_period > 0) {
    ts_writer = std::make_shared<obs::TimeSeriesWriter>(
        tcfg.timeseries_path.empty()
            ? std::string()
            : resolve_out_path(options.out_dir, tcfg.timeseries_path));
  }
  if (!tcfg.trace_path.empty()) {
    trace_sink = std::make_shared<obs::ChromeTraceSink>(
        resolve_out_path(options.out_dir, tcfg.trace_path));
  }
  obs::Span campaign_span;
  if (trace_sink != nullptr) {
    campaign_span =
        obs::Span(trace_sink.get(), 0, "campaign " + spec_.name, "campaign",
                  {{"cells", std::to_string(report.total_cells)}});
  }
  // The runtime channel: one shared writer for the campaign; each cell
  // gets its own session tagged with the cell id, and the pool's worker
  // rows land under a "campaign" session after the batch.
  std::shared_ptr<obs::RuntimeStatsWriter> rt_writer;
  if (!spec_.runtime_stats_path.empty()) {
    rt_writer = std::make_shared<obs::RuntimeStatsWriter>(
        resolve_out_path(options.out_dir, spec_.runtime_stats_path));
  }

  OTIS_REQUIRE(options.shard_count >= 1 && options.shard_index >= 0 &&
                   options.shard_index < options.shard_count,
               "CampaignRunner: shard must be i/n with 0 <= i < n");

  // Intra-cell checkpoints: one blob per cell under out_dir/checkpoints,
  // written every spec.checkpoint_every slots and deleted when the cell
  // completes. Only open-loop cells without a chrome-trace sink are
  // eligible (the blob cannot carry a workload's or trace sink's state);
  // ineligible cells simply run without checkpoints.
  std::filesystem::path checkpoint_dir;
  if (spec_.checkpoint_every > 0 && !options.out_dir.empty()) {
    checkpoint_dir =
        std::filesystem::path(options.out_dir) / "checkpoints";
    std::filesystem::create_directories(checkpoint_dir);
  }
  auto cell_checkpoint_path = [&](const CampaignCell& cell) -> std::string {
    if (checkpoint_dir.empty() ||
        cell.workload.kind != WorkloadKind::kNone ||
        cell.engine == sim::Engine::kEventQueue || trace_sink != nullptr) {
      return {};
    }
    return (checkpoint_dir /
            ("cell-" + std::to_string(cell.index) + ".ckpt"))
        .string();
  };

  std::vector<const CampaignCell*> pending;
  pending.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    // Shard split first (a pure function of the spec), manifest skip
    // second, so --shard composes with --resume: a shard resumed against
    // its own (or a merged) manifest re-runs only its missing cells.
    if (cell.index % options.shard_count != options.shard_index) {
      ++report.out_of_shard_cells;
    } else if (completed.count(cell.id) > 0) {
      ++report.skipped_cells;
    } else {
      pending.push_back(&cell);
    }
  }

  // One build per distinct topology that still has pending work; all of
  // a topology's cells share the same immutable tables. Only the table
  // representations its cells resolve to are compiled -- a compressed-
  // only topology never materializes the O(N^2) dense table.
  struct TableNeeds {
    bool dense = false;
    bool compressed = false;
  };
  std::map<std::size_t, TableNeeds> needs;
  for (const CampaignCell* cell : pending) {
    TableNeeds& need = needs[cell->topology];
    const sim::RouteTable resolved = sim::resolve_route_table(
        cell->routes, spec_.topologies[cell->topology].processor_count());
    (resolved == sim::RouteTable::kCompressed ? need.compressed
                                              : need.dense) = true;
  }
  // The cell pool doubles as the route-compile pool: builds happen
  // before the cell batch starts, when every worker is otherwise idle,
  // and parallel compilation is bit-identical to serial by construction.
  WorkStealingPool pool(options.threads);
  if (rt_writer != nullptr) {
    // Enabled before the route compiles so the worker rows cover the
    // pool's whole lifetime (compile batches included).
    pool.enable_stats();
  }

  std::map<std::size_t, std::shared_ptr<const CompiledTopology>> topologies;
  for (const auto& [index, need] : needs) {
    obs::Span compile_span;
    if (trace_sink != nullptr) {
      compile_span = obs::Span(trace_sink.get(), 0,
                               "compile " + spec_.topologies[index].label(),
                               "compile");
    }
    topologies[index] = CompiledTopology::build(
        spec_.topologies[index], need.dense, need.compressed, &pool);
    ++report.topologies_compiled;
  }

  // Reorder buffer: workers finish in steal order, sinks consume in
  // expansion order. A cell becomes durable (manifest line) only after
  // its rows reached every sink. Drill-interrupted cells hold a slot in
  // the order but never reach a sink or the manifest: their partial
  // metrics are not results, their checkpoint blob is.
  struct EmitEntry {
    CellResult result;
    bool interrupted = false;
  };
  std::mutex emit_mutex;
  std::map<std::size_t, EmitEntry> ready;
  std::size_t next_emit = 0;
  std::int64_t interrupted_cells = 0;
  auto emit_ready = [&]() {
    while (!ready.empty() && ready.begin()->first == next_emit) {
      const EmitEntry& entry = ready.begin()->second;
      if (entry.interrupted) {
        ++interrupted_cells;
      } else {
        for (const std::shared_ptr<ResultSink>& sink : sinks) {
          sink->consume(entry.result);
        }
        if (manifest != nullptr) {
          for (const std::shared_ptr<ResultSink>& sink : sinks) {
            sink->flush();
          }
          manifest->record(entry.result.cell.id);
        }
      }
      ready.erase(ready.begin());
      ++next_emit;
    }
  };

  // --progress heartbeat: a detached-from-the-results stderr line every
  // ~2 s while the grid runs. Counters are relaxed atomics -- they feed
  // a human, not the simulation. The rate/ETA cover only cells executed
  // by THIS invocation: manifest-skipped cells never enter `pending`,
  // so a --resume of a mostly-done campaign reports the true remaining
  // time instead of the stale full-grid rate (skips are shown apart).
  // When the runtime channel is on, sharded cells contribute their
  // barrier-wait/total-time split to a running stall share.
  std::atomic<std::int64_t> cells_done{0};
  std::atomic<int> busy_workers{0};
  std::atomic<std::int64_t> agg_wait_ns{0};
  std::atomic<std::int64_t> agg_shard_ns{0};
  std::atomic<bool> progress_stop{false};
  std::thread progress_thread;
  if (options.progress) {
    progress_thread = std::thread([&, total = pending.size(),
                                   skipped = report.skipped_cells] {
      const auto t0 = std::chrono::steady_clock::now();
      auto next = t0 + std::chrono::seconds(2);
      while (!progress_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const auto tick = std::chrono::steady_clock::now();
        if (tick < next) {
          continue;
        }
        next = tick + std::chrono::seconds(2);
        const double elapsed = std::chrono::duration<double>(tick - t0).count();
        const std::int64_t done = cells_done.load(std::memory_order_relaxed);
        const double rate = elapsed > 0.0
                                ? static_cast<double>(done) / elapsed
                                : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(
                             static_cast<std::int64_t>(total) - done) /
                             rate
                       : 0.0;
        std::string extra;
        if (skipped > 0) {
          extra += "  resumed past " + std::to_string(skipped) + " cells";
        }
        const std::int64_t wait = agg_wait_ns.load(std::memory_order_relaxed);
        const std::int64_t busy = agg_shard_ns.load(std::memory_order_relaxed);
        if (busy > 0) {
          char stall[48];
          std::snprintf(stall, sizeof(stall), "  stall %.1f%%",
                        100.0 * static_cast<double>(wait) /
                            static_cast<double>(busy));
          extra += stall;
        }
        std::fprintf(stderr,
                     "[campaign] %lld/%zu cells  %.2f cells/s  eta %.0f s  "
                     "workers %d/%d busy%s\n",
                     static_cast<long long>(done), total, rate, eta,
                     busy_workers.load(std::memory_order_relaxed),
                     pool.thread_count(), extra.c_str());
      }
    });
  }

  std::exception_ptr run_error;
  try {
    pool.run(pending.size(), [&](std::size_t i, std::size_t worker) {
      const CampaignCell& cell = *pending[i];
      busy_workers.fetch_add(1, std::memory_order_relaxed);
      // Per-cell telemetry session over the shared sinks; the cell span
      // sits on the worker's track (tid 1 + w) and encloses the
      // engine's sim.run / window spans.
      std::shared_ptr<obs::Telemetry> tel;
      obs::Span cell_span;
      if (ts_writer != nullptr || trace_sink != nullptr) {
        const auto tid = static_cast<std::int32_t>(1 + worker);
        tel = obs::Telemetry::attach(tcfg, ts_writer, trace_sink, cell.id,
                                     tid);
        if (trace_sink != nullptr) {
          cell_span = obs::Span(trace_sink.get(), tid, cell.id, "cell");
        }
      }
      // Per-cell runtime session over the shared runtime writer. Only
      // the sharded engine loops fill it; the finish() below still runs
      // for every cell (it is a no-op without shard rows).
      std::shared_ptr<obs::RuntimeStats> rt;
      if (rt_writer != nullptr) {
        rt = obs::RuntimeStats::attach(rt_writer, cell.id);
      }
      const std::string ckpt_path = cell_checkpoint_path(cell);
      CellResult result = simulate_cell(
          spec_, *topologies.at(cell.topology), cell, std::move(tel), rt,
          ckpt_path, options.resume, options.checkpoint_stop);
      if (rt != nullptr) {
        const obs::RuntimeStats::StallSummary stall = rt->stall_summary();
        rt->finish();
        if (stall.shards > 0) {
          agg_wait_ns.fetch_add(stall.barrier_wait_ns,
                                std::memory_order_relaxed);
          agg_shard_ns.fetch_add(
              static_cast<std::int64_t>(stall.shards) * stall.wall_ns,
              std::memory_order_relaxed);
          if (options.progress) {
            // The stall-attribution line: which shard the others waited
            // for, and how much of the total barrier wait it explains.
            std::fprintf(
                stderr,
                "[campaign] cell %s  %lld shards  stall %.1f%%  shard %lld "
                "caused %.0f%% of barrier wait\n",
                cell.id.c_str(), static_cast<long long>(stall.shards),
                100.0 * stall.stall_share,
                static_cast<long long>(stall.blamed_shard),
                100.0 * stall.blamed_share);
          }
        }
      }
      // A drill-interrupted cell's blob is its handoff to --resume; a
      // completed cell's blob has served its purpose.
      const bool interrupted = result.metrics.interrupted;
      if (!ckpt_path.empty() && !interrupted) {
        std::error_code ignored;
        std::filesystem::remove(ckpt_path, ignored);
      }
      cell_span.end();
      busy_workers.fetch_sub(1, std::memory_order_relaxed);
      cells_done.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(emit_mutex);
      ready.emplace(i, EmitEntry{std::move(result), interrupted});
      emit_ready();
    });
  } catch (...) {
    run_error = std::current_exception();
  }
  progress_stop.store(true, std::memory_order_relaxed);
  if (progress_thread.joinable()) {
    progress_thread.join();
    std::fprintf(stderr, "[campaign] %lld/%zu cells done\n",
                 static_cast<long long>(
                     cells_done.load(std::memory_order_relaxed)),
                 pending.size());
  }
  campaign_span.end();
  if (ts_writer != nullptr) {
    ts_writer->close();
  }
  if (trace_sink != nullptr) {
    trace_sink->close();
  }
  if (rt_writer != nullptr) {
    // Pool-level utilization rows under a "campaign" session: one row
    // per worker covering the pool's lifetime (compiles + cells).
    const std::vector<WorkStealingPool::WorkerStats> pool_stats =
        pool.stats();
    std::vector<obs::WorkerRuntime> workers(pool_stats.size());
    for (std::size_t w = 0; w < pool_stats.size(); ++w) {
      workers[w].busy_ns = pool_stats[w].busy_ns;
      workers[w].idle_ns = pool_stats[w].idle_ns;
      workers[w].steal_ns = pool_stats[w].steal_ns;
      workers[w].items = pool_stats[w].items;
      workers[w].steals = pool_stats[w].steals;
    }
    const std::shared_ptr<obs::RuntimeStats> campaign_rt =
        obs::RuntimeStats::attach(rt_writer, "campaign");
    campaign_rt->record_workers(pool.stats_wall_ns(), workers);
    report.runtime_rows = rt_writer->rows();
    rt_writer->close();
  }
  if (run_error) {
    std::rethrow_exception(run_error);
  }
  OTIS_ASSERT(ready.empty() && next_emit == pending.size(),
              "CampaignRunner: reorder buffer drained");

  for (const std::shared_ptr<ResultSink>& sink : sinks) {
    sink->close();
  }
  report.interrupted_cells = interrupted_cells;
  report.completed_cells =
      static_cast<std::int64_t>(pending.size()) - interrupted_cells;
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return report;
}

}  // namespace otis::campaign
