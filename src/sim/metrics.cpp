#include "sim/metrics.hpp"

#include <algorithm>

namespace otis::sim {

void LatencyStats::merge(const LatencyStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double LatencyStats::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  // Exact integer sum: the mean is a pure function of the sample
  // multiset, independent of recording order (the sharded engine merges
  // per-worker stats and must stay bit-identical across thread counts).
  std::int64_t total = 0;
  for (std::int64_t s : samples_) {
    total += s;
  }
  return static_cast<double>(total) / static_cast<double>(samples_.size());
}

std::int64_t LatencyStats::max() const {
  if (samples_.empty()) {
    return 0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

std::int64_t LatencyStats::percentile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) {
    return samples_.front();
  }
  if (q >= 1.0) {
    return samples_.back();
  }
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

double RunMetrics::throughput_per_node(std::int64_t nodes) const {
  if (slots == 0 || nodes == 0) {
    return 0.0;
  }
  return static_cast<double>(delivered_packets) /
         (static_cast<double>(slots) * static_cast<double>(nodes));
}

double RunMetrics::coupler_utilization(std::int64_t couplers) const {
  if (slots == 0 || couplers == 0) {
    return 0.0;
  }
  return static_cast<double>(coupler_transmissions) /
         (static_cast<double>(slots) * static_cast<double>(couplers));
}

}  // namespace otis::sim
