#include "topology/complete.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace otis::topology {

graph::Digraph complete_digraph(std::int64_t g, Loops loops) {
  OTIS_REQUIRE(g >= 1, "complete_digraph: g must be >= 1");
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(g * g));
  for (std::int64_t u = 0; u < g; ++u) {
    if (loops == Loops::kWith) {
      // Imase-Itoh order: alpha = 1..g, head = (-g*u - alpha) mod g
      // = (g - alpha) mod g, independent of u.
      for (std::int64_t alpha = 1; alpha <= g; ++alpha) {
        arcs.push_back(graph::Arc{u, core::floor_mod(-g * u - alpha, g)});
      }
    } else {
      for (std::int64_t v = 0; v < g; ++v) {
        if (v != u) {
          arcs.push_back(graph::Arc{u, v});
        }
      }
    }
  }
  return graph::Digraph::from_arcs(g, arcs);
}

}  // namespace otis::topology
