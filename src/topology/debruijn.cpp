#include "topology/debruijn.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace otis::topology {

DeBruijn::DeBruijn(int degree, int dimension) : d_(degree), k_(dimension) {
  OTIS_REQUIRE(d_ >= 1, "DeBruijn: degree must be >= 1");
  OTIS_REQUIRE(k_ >= 1, "DeBruijn: dimension must be >= 1");
  n_ = core::ipow(d_, static_cast<unsigned>(k_));
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(d_));
  for (std::int64_t u = 0; u < n_; ++u) {
    for (int alpha = 0; alpha < d_; ++alpha) {
      arcs.push_back(graph::Arc{u, core::floor_mod(d_ * u + alpha, n_)});
    }
  }
  graph_ = graph::Digraph::from_arcs(n_, arcs);
}

Word DeBruijn::word_of(std::int64_t v) const {
  OTIS_REQUIRE(v >= 0 && v < n_, "DeBruijn::word_of: vertex out of range");
  Word word(static_cast<std::size_t>(k_));
  for (int i = k_ - 1; i >= 0; --i) {
    word[static_cast<std::size_t>(i)] = static_cast<int>(v % d_);
    v /= d_;
  }
  return word;
}

std::int64_t DeBruijn::vertex_of(const Word& word) const {
  OTIS_REQUIRE(static_cast<int>(word.size()) == k_,
               "DeBruijn::vertex_of: wrong word length");
  std::int64_t v = 0;
  for (int letter : word) {
    OTIS_REQUIRE(letter >= 0 && letter < d_,
                 "DeBruijn::vertex_of: letter out of range");
    v = v * d_ + letter;
  }
  return v;
}

}  // namespace otis::topology
