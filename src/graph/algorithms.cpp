#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace otis::graph {

std::vector<std::int64_t> bfs_distances(const Digraph& g, Vertex source) {
  std::vector<std::int64_t> dist(static_cast<std::size_t>(g.order()),
                                 kUnreachable);
  OTIS_REQUIRE(source >= 0 && source < g.order(),
               "bfs_distances: source out of range");
  std::vector<Vertex> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  std::int64_t level = 0;
  std::vector<Vertex> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (Vertex u : frontier) {
      for (ArcId a = g.out_begin(u); a < g.out_end(u); ++a) {
        Vertex v = g.head(a);
        if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
          dist[static_cast<std::size_t>(v)] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

namespace {

std::optional<std::vector<Vertex>> bfs_path(const Digraph& g, Vertex source,
                                            Vertex target,
                                            const std::vector<char>& blocked) {
  std::vector<Vertex> parent(static_cast<std::size_t>(g.order()), -2);
  std::queue<Vertex> queue;
  queue.push(source);
  parent[static_cast<std::size_t>(source)] = -1;
  while (!queue.empty()) {
    Vertex u = queue.front();
    queue.pop();
    if (u == target) {
      std::vector<Vertex> path;
      for (Vertex v = target; v != -1;
           v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (ArcId a = g.out_begin(u); a < g.out_end(u); ++a) {
      Vertex v = g.head(a);
      if (parent[static_cast<std::size_t>(v)] != -2) {
        continue;
      }
      if (!blocked.empty() && blocked[static_cast<std::size_t>(v)] &&
          v != target) {
        continue;
      }
      parent[static_cast<std::size_t>(v)] = u;
      queue.push(v);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Vertex>> shortest_path(const Digraph& g,
                                                 Vertex source, Vertex target) {
  OTIS_REQUIRE(source >= 0 && source < g.order(), "shortest_path: bad source");
  OTIS_REQUIRE(target >= 0 && target < g.order(), "shortest_path: bad target");
  return bfs_path(g, source, target, {});
}

std::optional<std::vector<Vertex>> shortest_path_avoiding(
    const Digraph& g, Vertex source, Vertex target,
    const std::vector<Vertex>& forbidden) {
  OTIS_REQUIRE(source >= 0 && source < g.order(), "shortest_path: bad source");
  OTIS_REQUIRE(target >= 0 && target < g.order(), "shortest_path: bad target");
  std::vector<char> blocked(static_cast<std::size_t>(g.order()), 0);
  for (Vertex v : forbidden) {
    if (v >= 0 && v < g.order() && v != source && v != target) {
      blocked[static_cast<std::size_t>(v)] = 1;
    }
  }
  return bfs_path(g, source, target, blocked);
}

std::optional<std::vector<Vertex>> shortest_path_avoiding_arcs(
    const Digraph& g, Vertex source, Vertex target,
    const std::vector<Arc>& forbidden_arcs) {
  OTIS_REQUIRE(source >= 0 && source < g.order(), "shortest_path: bad source");
  OTIS_REQUIRE(target >= 0 && target < g.order(), "shortest_path: bad target");
  std::vector<Vertex> parent(static_cast<std::size_t>(g.order()), -2);
  std::queue<Vertex> queue;
  queue.push(source);
  parent[static_cast<std::size_t>(source)] = -1;
  auto blocked = [&](Vertex u, Vertex v) {
    return std::find(forbidden_arcs.begin(), forbidden_arcs.end(),
                     Arc{u, v}) != forbidden_arcs.end();
  };
  while (!queue.empty()) {
    Vertex u = queue.front();
    queue.pop();
    if (u == target) {
      std::vector<Vertex> path;
      for (Vertex v = target; v != -1;
           v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (ArcId a = g.out_begin(u); a < g.out_end(u); ++a) {
      Vertex v = g.head(a);
      if (parent[static_cast<std::size_t>(v)] != -2 || blocked(u, v)) {
        continue;
      }
      parent[static_cast<std::size_t>(v)] = u;
      queue.push(v);
    }
  }
  return std::nullopt;
}

DistanceStats distance_stats(const Digraph& g) {
  DistanceStats stats;
  if (g.order() <= 1) {
    return stats;
  }
  std::int64_t radius = -1;
  double total = 0.0;
  std::int64_t pairs = 0;
  for (Vertex u = 0; u < g.order(); ++u) {
    auto dist = bfs_distances(g, u);
    std::int64_t ecc = 0;
    for (Vertex v = 0; v < g.order(); ++v) {
      if (v == u) {
        continue;
      }
      std::int64_t d = dist[static_cast<std::size_t>(v)];
      if (d == kUnreachable) {
        stats.strongly_connected = false;
        continue;
      }
      ecc = std::max(ecc, d);
      total += static_cast<double>(d);
      ++pairs;
    }
    stats.diameter = std::max(stats.diameter, ecc);
    if (radius < 0 || ecc < radius) {
      radius = ecc;
    }
  }
  stats.radius = radius < 0 ? 0 : radius;
  stats.mean_distance = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  return stats;
}

std::int64_t diameter(const Digraph& g) {
  DistanceStats stats = distance_stats(g);
  OTIS_REQUIRE(stats.strongly_connected,
               "diameter: graph is not strongly connected");
  return stats.diameter;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.order() == 0) {
    return true;
  }
  // Forward BFS from 0 plus backward BFS (on the reverse graph) from 0.
  auto forward = bfs_distances(g, 0);
  for (std::int64_t d : forward) {
    if (d == kUnreachable) {
      return false;
    }
  }
  std::vector<Arc> reversed;
  reversed.reserve(static_cast<std::size_t>(g.size()));
  for (const Arc& a : g.arcs()) {
    reversed.push_back(Arc{a.head, a.tail});
  }
  Digraph rev = Digraph::from_arcs(g.order(), reversed);
  auto backward = bfs_distances(rev, 0);
  for (std::int64_t d : backward) {
    if (d == kUnreachable) {
      return false;
    }
  }
  return true;
}

bool is_eulerian(const Digraph& g) {
  for (Vertex v = 0; v < g.order(); ++v) {
    if (g.in_degree(v) != g.out_degree(v)) {
      return false;
    }
  }
  return is_strongly_connected(g);
}

namespace {

bool hamiltonian_dfs(const Digraph& g, Vertex start, Vertex current,
                     std::vector<char>& visited, std::vector<Vertex>& path,
                     std::int64_t& steps, std::int64_t max_steps) {
  if (steps++ > max_steps) {
    return false;
  }
  if (static_cast<Vertex>(path.size()) == g.order()) {
    return g.has_arc(current, start);
  }
  for (ArcId a = g.out_begin(current); a < g.out_end(current); ++a) {
    Vertex v = g.head(a);
    if (visited[static_cast<std::size_t>(v)]) {
      continue;
    }
    visited[static_cast<std::size_t>(v)] = 1;
    path.push_back(v);
    if (hamiltonian_dfs(g, start, v, visited, path, steps, max_steps)) {
      return true;
    }
    path.pop_back();
    visited[static_cast<std::size_t>(v)] = 0;
  }
  return false;
}

}  // namespace

std::optional<std::vector<Vertex>> find_hamiltonian_cycle(
    const Digraph& g, std::int64_t max_steps) {
  if (g.order() == 0) {
    return std::nullopt;
  }
  std::vector<char> visited(static_cast<std::size_t>(g.order()), 0);
  std::vector<Vertex> path{0};
  visited[0] = 1;
  std::int64_t steps = 0;
  if (hamiltonian_dfs(g, 0, 0, visited, path, steps, max_steps)) {
    return path;
  }
  return std::nullopt;
}

std::optional<std::int64_t> girth_ignoring_loops(const Digraph& g) {
  std::optional<std::int64_t> best;
  for (Vertex u = 0; u < g.order(); ++u) {
    // Shortest cycle through u = 1 + min distance from any non-loop
    // out-neighbour of u back to u.
    std::vector<Vertex> starts;
    for (ArcId a = g.out_begin(u); a < g.out_end(u); ++a) {
      if (g.head(a) != u) {
        starts.push_back(g.head(a));
      }
    }
    for (Vertex s : starts) {
      auto dist = bfs_distances(g, s);
      std::int64_t back = dist[static_cast<std::size_t>(u)];
      if (back != kUnreachable) {
        std::int64_t cycle = back + 1;
        if (!best || cycle < *best) {
          best = cycle;
        }
      }
    }
  }
  return best;
}

bool is_walk(const Digraph& g, const std::vector<Vertex>& path) {
  if (path.empty()) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_arc(path[i], path[i + 1])) {
      return false;
    }
  }
  return true;
}

}  // namespace otis::graph
