// Perf F5 (ablation): the stacking factor s is THE design knob of the
// stack-graph approach -- it multiplies processors without adding
// couplers or OTIS stages, at the price of 10*log10(s) dB splitting loss
// and more contention per coupler. Sweeps SK(s,3,2): N, saturation
// throughput per node, aggregate throughput, max path loss, and power
// feasibility under the nominal budget.
//
// The six SK(s,3,2) instances are one campaign grid over the topology
// axis (saturation traffic, one compiled routing table per instance).
//
// Expected shape: aggregate saturation throughput is bounded by the
// coupler pool (48 couplers, ~1.9 mean hops), so per-node throughput
// falls roughly as 1/s while N rises as s; loss rises logarithmically
// until the budget cuts off.

#include <iostream>
#include <memory>
#include <vector>

#include "campaign/runner.hpp"
#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "optics/power.hpp"

int main() {
  std::cout << "[Perf F5] stacking-factor ablation on SK(s,3,2) "
               "(campaign API)\n\n";
  const std::vector<std::int64_t> stackings{1, 2, 4, 6, 8, 12};

  otis::campaign::CampaignSpec spec;
  spec.name = "perf5-stacking-sweep";
  for (std::int64_t s : stackings) {
    spec.topologies.push_back(
        otis::campaign::TopologySpec::stack_kautz(s, 3, 2));
  }
  spec.traffics = {otis::campaign::TrafficKind::kSaturation};
  spec.loads = {1.0};
  spec.seeds = {7};
  spec.warmup_slots = 200;
  spec.measure_slots = 800;

  auto aggregate = std::make_shared<otis::campaign::AggregateSink>();
  otis::campaign::CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  otis::campaign::CampaignOptions options;
  options.threads = 0;
  runner.run(options);

  otis::optics::LossModel model;
  otis::optics::PowerBudget budget;  // nominal

  otis::core::Table table({"s", "N", "couplers", "sat thr/node",
                           "sat aggregate", "max loss dB", "budget ok"});
  bool ok = true;
  std::vector<double> per_node;
  for (std::size_t i = 0; i < stackings.size(); ++i) {
    const std::int64_t s = stackings[i];
    const otis::campaign::AggregateSink::Group& group =
        aggregate->groups()[i];
    const double thr = group.point.throughput_per_node;
    const double total = thr * static_cast<double>(group.nodes);
    const double loss = otis::optics::canonical_hop_loss_db(model, s);
    table.add(s, group.nodes, group.couplers, thr, total,
              otis::core::format_double(loss, 2), budget.feasible(loss));
    per_node.push_back(thr);
  }
  table.print(std::cout);

  // Shape: per-node throughput decreases in s (same coupler pool shared
  // by more processors); the design remains budget-feasible across the
  // sweep under the nominal budget.
  for (std::size_t i = 1; i < per_node.size(); ++i) {
    ok = ok && per_node[i] <= per_node[i - 1] + 0.02;
  }
  // And the optics verify for a couple of sizes.
  for (std::int64_t s : {1, 6}) {
    ok = ok &&
         otis::designs::verify_design(otis::designs::stack_kautz_design(s, 3,
                                                                        2))
             .ok;
  }
  std::cout << "\nper-node saturation throughput non-increasing in s, "
               "designs verified: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
