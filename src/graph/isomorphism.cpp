#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>

namespace otis::graph {

bool verify_isomorphism(const Digraph& g, const Digraph& h,
                        const std::vector<Vertex>& mapping) {
  if (g.order() != h.order() || g.size() != h.size()) {
    return false;
  }
  if (static_cast<Vertex>(mapping.size()) != g.order()) {
    return false;
  }
  std::vector<char> seen(static_cast<std::size_t>(h.order()), 0);
  for (Vertex image : mapping) {
    if (image < 0 || image >= h.order() ||
        seen[static_cast<std::size_t>(image)]) {
      return false;
    }
    seen[static_cast<std::size_t>(image)] = 1;
  }
  std::vector<Arc> mapped;
  mapped.reserve(static_cast<std::size_t>(g.size()));
  for (const Arc& a : g.arcs()) {
    mapped.push_back(Arc{mapping[static_cast<std::size_t>(a.tail)],
                         mapping[static_cast<std::size_t>(a.head)]});
  }
  std::sort(mapped.begin(), mapped.end());
  return mapped == sorted_arcs(h);
}

namespace {

struct SearchState {
  const Digraph& g;
  const Digraph& h;
  std::vector<Vertex> mapping;         // g-vertex -> h-vertex or -1
  std::vector<char> used;              // h-vertex already an image
  std::int64_t steps = 0;
  std::int64_t max_steps;
};

/// Partial consistency: all arcs between already-mapped vertices must be
/// preserved with the right multiplicity in both directions.
bool consistent(SearchState& s, Vertex u) {
  Vertex mu = s.mapping[static_cast<std::size_t>(u)];
  for (Vertex v = 0; v <= u; ++v) {
    Vertex mv = s.mapping[static_cast<std::size_t>(v)];
    if (mv < 0) {
      continue;
    }
    if (s.g.arc_multiplicity(u, v) != s.h.arc_multiplicity(mu, mv)) {
      return false;
    }
    if (s.g.arc_multiplicity(v, u) != s.h.arc_multiplicity(mv, mu)) {
      return false;
    }
  }
  return true;
}

bool search(SearchState& s, Vertex u) {
  if (s.steps++ > s.max_steps) {
    return false;
  }
  if (u == s.g.order()) {
    return true;
  }
  for (Vertex cand = 0; cand < s.h.order(); ++cand) {
    if (s.used[static_cast<std::size_t>(cand)]) {
      continue;
    }
    if (s.g.out_degree(u) != s.h.out_degree(cand) ||
        s.g.in_degree(u) != s.h.in_degree(cand)) {
      continue;
    }
    s.mapping[static_cast<std::size_t>(u)] = cand;
    s.used[static_cast<std::size_t>(cand)] = 1;
    if (consistent(s, u) && search(s, u + 1)) {
      return true;
    }
    s.mapping[static_cast<std::size_t>(u)] = -1;
    s.used[static_cast<std::size_t>(cand)] = 0;
  }
  return false;
}

}  // namespace

std::optional<std::vector<Vertex>> find_isomorphism(const Digraph& g,
                                                    const Digraph& h,
                                                    std::int64_t max_steps) {
  if (g.order() != h.order() || g.size() != h.size()) {
    return std::nullopt;
  }
  // Degree-profile quick reject: the multiset of (out, in) degree pairs
  // must agree before any search is worth starting.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> gprof, hprof;
  for (Vertex v = 0; v < g.order(); ++v) {
    ++gprof[{g.out_degree(v), g.in_degree(v)}];
    ++hprof[{h.out_degree(v), h.in_degree(v)}];
  }
  if (gprof != hprof) {
    return std::nullopt;
  }
  SearchState s{g, h,
                std::vector<Vertex>(static_cast<std::size_t>(g.order()), -1),
                std::vector<char>(static_cast<std::size_t>(h.order()), 0), 0,
                max_steps};
  if (search(s, 0)) {
    return s.mapping;
  }
  return std::nullopt;
}

}  // namespace otis::graph
