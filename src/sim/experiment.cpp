#include "sim/experiment.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#include "core/error.hpp"

namespace otis::sim {

namespace {

/// Weighted combination of two (mean, population-stddev) summaries with
/// n1 and n2 samples (parallel-variance / parallel-axis form). Exact for
/// any split of the underlying sample multiset, so merges commute.
void merge_moments(double& mean, double& stddev, std::int64_t n1,
                   double other_mean, double other_stddev, std::int64_t n2) {
  const double total = static_cast<double>(n1 + n2);
  if (total <= 0.0) {
    return;
  }
  const double combined_mean = (static_cast<double>(n1) * mean +
                                static_cast<double>(n2) * other_mean) /
                               total;
  const double second_moment =
      (static_cast<double>(n1) * (stddev * stddev + mean * mean) +
       static_cast<double>(n2) *
           (other_stddev * other_stddev + other_mean * other_mean)) /
      total;
  const double variance = second_moment - combined_mean * combined_mean;
  mean = combined_mean;
  stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
}

}  // namespace

SweepPoint SweepPoint::from_trial(const RunMetrics& metrics, double load,
                                  std::int64_t nodes, std::int64_t couplers) {
  SweepPoint point;
  point.load = load;
  point.throughput_per_node = metrics.throughput_per_node(nodes);
  point.mean_latency = metrics.latency.mean();
  point.p95_latency = static_cast<double>(metrics.latency.percentile(0.95));
  point.coupler_utilization = metrics.coupler_utilization(couplers);
  point.collision_rate =
      couplers > 0 && metrics.slots > 0
          ? static_cast<double>(metrics.collisions) /
                (static_cast<double>(couplers) *
                 static_cast<double>(metrics.slots))
          : 0.0;
  point.delivered_fraction =
      metrics.offered_packets > 0
          ? static_cast<double>(metrics.delivered_packets) /
                static_cast<double>(metrics.offered_packets)
          : 0.0;
  point.makespan = static_cast<double>(metrics.makespan_slots);
  point.trials = 1;
  return point;
}

void SweepPoint::merge(const SweepPoint& other) {
  if (other.trials <= 0) {
    return;
  }
  if (trials <= 0) {
    *this = other;
    return;
  }
  merge_moments(throughput_per_node, throughput_stddev, trials,
                other.throughput_per_node, other.throughput_stddev,
                other.trials);
  merge_moments(mean_latency, mean_latency_stddev, trials, other.mean_latency,
                other.mean_latency_stddev, other.trials);
  merge_moments(p95_latency, p95_latency_stddev, trials, other.p95_latency,
                other.p95_latency_stddev, other.trials);
  merge_moments(coupler_utilization, coupler_utilization_stddev, trials,
                other.coupler_utilization, other.coupler_utilization_stddev,
                other.trials);
  merge_moments(collision_rate, collision_rate_stddev, trials,
                other.collision_rate, other.collision_rate_stddev,
                other.trials);
  merge_moments(delivered_fraction, delivered_fraction_stddev, trials,
                other.delivered_fraction, other.delivered_fraction_stddev,
                other.trials);
  merge_moments(makespan, makespan_stddev, trials, other.makespan,
                other.makespan_stddev, other.trials);
  trials += other.trials;
}

std::vector<SweepPoint> run_load_sweep(
    const TrialFactory& factory, const std::vector<double>& loads,
    std::int64_t nodes, std::int64_t couplers,
    const std::vector<std::uint64_t>& seeds, int threads) {
  OTIS_REQUIRE(factory != nullptr, "run_load_sweep: factory must be set");
  OTIS_REQUIRE(!seeds.empty(), "run_load_sweep: need at least one seed");

  struct Trial {
    std::size_t load_index;
    std::uint64_t seed;
    RunMetrics metrics;
  };
  std::vector<Trial> trials;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (std::uint64_t seed : seeds) {
      trials.push_back(Trial{li, seed, {}});
    }
  }

  int worker_count = threads;
  if (worker_count <= 0) {
    worker_count = static_cast<int>(std::thread::hardware_concurrency());
    if (worker_count <= 0) {
      worker_count = 1;
    }
  }
  worker_count = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(worker_count),
                            trials.size()));

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= trials.size()) {
        return;
      }
      trials[i].metrics =
          factory(loads[trials[i].load_index], trials[i].seed);
    }
  };
  if (worker_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(worker_count));
    for (int w = 0; w < worker_count; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  std::vector<SweepPoint> points(loads.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    points[li].load = loads[li];
  }
  for (const Trial& trial : trials) {
    points[trial.load_index].merge(SweepPoint::from_trial(
        trial.metrics, loads[trial.load_index], nodes, couplers));
  }
  return points;
}

}  // namespace otis::sim
