#include "workload/workload.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"

namespace otis::workload {

DagWorkload::DagWorkload(std::int64_t node_count,
                         std::vector<WorkloadPacket> packets,
                         std::vector<std::vector<std::int64_t>> deps)
    : node_count_(node_count),
      packets_(std::move(packets)),
      deps_(std::move(deps)) {
  OTIS_REQUIRE(node_count_ >= 1, "DagWorkload: need at least one node");
  OTIS_REQUIRE(deps_.size() == packets_.size(),
               "DagWorkload: one dependency list per packet");
  const std::int64_t n = packet_count();
  dependents_.resize(packets_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    WorkloadPacket& packet = packets_[static_cast<std::size_t>(i)];
    packet.id = i;
    OTIS_REQUIRE(packet.source >= 0 && packet.source < node_count_ &&
                     packet.destination >= 0 &&
                     packet.destination < node_count_,
                 "DagWorkload: packet endpoint out of range");
    OTIS_REQUIRE(packet.source != packet.destination,
                 "DagWorkload: packet source equals destination");
    for (std::int64_t dep : deps_[static_cast<std::size_t>(i)]) {
      OTIS_REQUIRE(dep >= 0 && dep < n && dep != i,
                   "DagWorkload: dependency out of range");
      dependents_[static_cast<std::size_t>(dep)].push_back(i);
    }
  }
  // Kahn pass: if the indegree peeling cannot reach every packet the
  // dependency structure is cyclic and the run would never terminate.
  std::vector<std::int64_t> missing(packets_.size());
  std::vector<std::int64_t> frontier;
  for (std::int64_t i = 0; i < n; ++i) {
    missing[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(deps_[static_cast<std::size_t>(i)].size());
    if (missing[static_cast<std::size_t>(i)] == 0) {
      frontier.push_back(i);
    }
  }
  std::int64_t reached = 0;
  while (!frontier.empty()) {
    const std::int64_t i = frontier.back();
    frontier.pop_back();
    ++reached;
    for (std::int64_t dependent : dependents_[static_cast<std::size_t>(i)]) {
      if (--missing[static_cast<std::size_t>(dependent)] == 0) {
        frontier.push_back(dependent);
      }
    }
  }
  OTIS_REQUIRE(reached == n, "DagWorkload: dependency cycle detected");
  reset();
}

void DagWorkload::reset() {
  missing_.resize(packets_.size());
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    missing_[i] = static_cast<std::int64_t>(deps_[i].size());
  }
  ready_.clear();
  for (std::int64_t i = 0; i < packet_count(); ++i) {
    if (missing_[static_cast<std::size_t>(i)] == 0) {
      ready_.push_back(i);
    }
  }
  delivered_count_ = 0;
}

void DagWorkload::poll(std::int64_t /*slot*/,
                       std::vector<WorkloadPacket>& out) {
  if (ready_.empty()) {
    return;
  }
  // Sorted emission makes the injection order a pure function of the
  // delivered SET, not of the order delivered() calls arrived in.
  std::sort(ready_.begin(), ready_.end());
  for (std::int64_t id : ready_) {
    out.push_back(packets_[static_cast<std::size_t>(id)]);
  }
  ready_.clear();
}

void DagWorkload::delivered(std::int64_t id) {
  OTIS_REQUIRE(id >= 0 && id < packet_count(),
               "DagWorkload: delivered id out of range");
  ++delivered_count_;
  for (std::int64_t dependent : dependents_[static_cast<std::size_t>(id)]) {
    if (--missing_[static_cast<std::size_t>(dependent)] == 0) {
      ready_.push_back(dependent);
    }
  }
}

WaveWorkload::WaveWorkload(std::int64_t node_count,
                           std::vector<std::vector<WorkloadPacket>> waves)
    : node_count_(node_count), waves_(std::move(waves)) {
  OTIS_REQUIRE(node_count_ >= 1, "WaveWorkload: need at least one node");
  std::int64_t id = 0;
  for (auto& wave : waves_) {
    OTIS_REQUIRE(!wave.empty(),
                 "WaveWorkload: empty wave would stall the barrier chain");
    for (WorkloadPacket& packet : wave) {
      packet.id = id++;
      OTIS_REQUIRE(packet.source >= 0 && packet.source < node_count_ &&
                       packet.destination >= 0 &&
                       packet.destination < node_count_,
                   "WaveWorkload: packet endpoint out of range");
      OTIS_REQUIRE(packet.source != packet.destination,
                   "WaveWorkload: packet source equals destination");
    }
  }
  total_ = id;
  reset();
}

void WaveWorkload::reset() {
  next_wave_ = 0;
  wave_remaining_ = 0;
  delivered_count_ = 0;
}

void WaveWorkload::poll(std::int64_t /*slot*/,
                        std::vector<WorkloadPacket>& out) {
  if (wave_remaining_ > 0 || next_wave_ >= waves_.size()) {
    return;
  }
  // Ids are assigned in (wave, position) order, so wave emission is
  // sorted by construction.
  const std::vector<WorkloadPacket>& wave = waves_[next_wave_];
  out.insert(out.end(), wave.begin(), wave.end());
  wave_remaining_ = static_cast<std::int64_t>(wave.size());
  ++next_wave_;
}

void WaveWorkload::delivered(std::int64_t id) {
  OTIS_REQUIRE(id >= 0 && id < total_,
               "WaveWorkload: delivered id out of range");
  ++delivered_count_;
  --wave_remaining_;
}

}  // namespace otis::workload
