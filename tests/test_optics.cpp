// Tests for the optical netlist, light tracing and the power budget
// model: component wiring rules, propagation through every component
// kind, loss accounting, feasibility bounds on the stacking factor.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "optics/netlist.hpp"
#include "optics/power.hpp"
#include "optics/trace.hpp"

namespace otis::optics {
namespace {

TEST(Netlist, ComponentShapes) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId rx = n.add_receiver("rx");
  const ComponentId mux = n.add_multiplexer(4, "mux");
  const ComponentId split = n.add_beam_splitter(4, "split");
  const ComponentId otis = n.add_otis(3, 6, "otis");
  const ComponentId fiber = n.add_fiber("fiber");
  EXPECT_EQ(n.component(tx).outputs, 1);
  EXPECT_EQ(n.component(tx).inputs, 0);
  EXPECT_EQ(n.component(rx).inputs, 1);
  EXPECT_EQ(n.component(mux).inputs, 4);
  EXPECT_EQ(n.component(mux).outputs, 1);
  EXPECT_EQ(n.component(split).inputs, 1);
  EXPECT_EQ(n.component(split).outputs, 4);
  EXPECT_EQ(n.component(otis).inputs, 18);
  EXPECT_EQ(n.component(otis).outputs, 18);
  EXPECT_EQ(n.component(fiber).inputs, 1);
  EXPECT_EQ(n.component(fiber).outputs, 1);
  EXPECT_EQ(n.count(ComponentKind::kTransmitter), 1);
  EXPECT_EQ(n.of_kind(ComponentKind::kOtis),
            (std::vector<ComponentId>{otis}));
}

TEST(Netlist, ConnectRejectsDoubleWiring) {
  Netlist n;
  const ComponentId tx1 = n.add_transmitter("tx1");
  const ComponentId tx2 = n.add_transmitter("tx2");
  const ComponentId rx = n.add_receiver("rx");
  n.connect({tx1, 0}, {rx, 0});
  EXPECT_THROW(n.connect({tx1, 0}, {rx, 0}), core::Error);
  EXPECT_THROW(n.connect({tx2, 0}, {rx, 0}), core::Error);
}

TEST(Netlist, ConnectRejectsBadPorts) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId rx = n.add_receiver("rx");
  EXPECT_THROW(n.connect({tx, 1}, {rx, 0}), core::Error);
  EXPECT_THROW(n.connect({tx, 0}, {rx, 5}), core::Error);
}

TEST(Netlist, LinksAreQueryable) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId rx = n.add_receiver("rx");
  EXPECT_FALSE(n.link_from({tx, 0}).has_value());
  n.connect({tx, 0}, {rx, 0});
  ASSERT_TRUE(n.link_from({tx, 0}).has_value());
  EXPECT_EQ(n.link_from({tx, 0})->component, rx);
  ASSERT_TRUE(n.link_into({rx, 0}).has_value());
  EXPECT_EQ(n.link_into({rx, 0})->component, tx);
}

TEST(Netlist, PropagateInsideOtisUsesTranspose) {
  Netlist n;
  const ComponentId otis = n.add_otis(2, 3, "otis");
  // Input (0,0) = linear 0 -> output (2,1) = linear 2*2+1 = 5.
  auto outs = n.propagate_inside({otis, 0});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 5);
}

TEST(Netlist, PropagateInsideSplitterFansOut) {
  Netlist n;
  const ComponentId split = n.add_beam_splitter(3, "split");
  auto outs = n.propagate_inside({split, 0});
  EXPECT_EQ(outs.size(), 3u);
}

TEST(Netlist, DanglingPortDetection) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("lonely");
  EXPECT_TRUE(n.find_dangling_port().has_value());
  const ComponentId rx = n.add_receiver("rx");
  n.connect({tx, 0}, {rx, 0});
  EXPECT_FALSE(n.find_dangling_port().has_value());
}

TEST(Trace, DirectLink) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId rx = n.add_receiver("rx");
  n.connect({tx, 0}, {rx, 0});
  auto endpoints = trace_from_transmitter(n, tx, LossModel{});
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0].receiver, rx);
  EXPECT_EQ(endpoints[0].couplers, 0);
  EXPECT_EQ(endpoints[0].path,
            (std::vector<ComponentId>{tx, rx}));
}

TEST(Trace, CouplerBroadcast) {
  // tx0, tx1 -> mux -> splitter -> rx0, rx1: one OPS coupler of degree 2.
  Netlist n;
  LossModel model;
  const ComponentId tx0 = n.add_transmitter("tx0");
  const ComponentId tx1 = n.add_transmitter("tx1");
  const ComponentId mux = n.add_multiplexer(2, "mux");
  const ComponentId split = n.add_beam_splitter(2, "split");
  const ComponentId rx0 = n.add_receiver("rx0");
  const ComponentId rx1 = n.add_receiver("rx1");
  n.connect({tx0, 0}, {mux, 0});
  n.connect({tx1, 0}, {mux, 1});
  n.connect({mux, 0}, {split, 0});
  n.connect({split, 0}, {rx0, 0});
  n.connect({split, 1}, {rx1, 0});
  auto endpoints = trace_from_transmitter(n, tx0, model);
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0].receiver, rx0);
  EXPECT_EQ(endpoints[1].receiver, rx1);
  EXPECT_EQ(endpoints[0].couplers, 1);
  // Loss: tx coupling + mux + splitter (3 dB split + excess) + rx.
  const double expected = model.transmitter_coupling_db +
                          model.multiplexer_db + model.beam_splitter_db(2) +
                          model.receiver_coupling_db;
  EXPECT_NEAR(endpoints[0].loss_db, expected, 1e-9);
}

TEST(Trace, ThroughOtisAndFiber) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId otis = n.add_otis(1, 1, "otis");
  const ComponentId fiber = n.add_fiber("fiber");
  const ComponentId rx = n.add_receiver("rx");
  n.connect({tx, 0}, {otis, 0});
  n.connect({otis, 0}, {fiber, 0});
  n.connect({fiber, 0}, {rx, 0});
  auto endpoints = trace_from_transmitter(n, tx, LossModel{});
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0].path,
            (std::vector<ComponentId>{tx, otis, fiber, rx}));
}

TEST(Trace, DanglingPathThrows) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  EXPECT_THROW(trace_from_transmitter(n, tx, LossModel{}), core::Error);
}

TEST(Trace, CycleDetectedByStepLimit) {
  Netlist n;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId f1 = n.add_fiber("f1");
  const ComponentId f2 = n.add_fiber("f2");
  const ComponentId mux = n.add_multiplexer(2, "mux");
  n.connect({tx, 0}, {mux, 0});
  n.connect({mux, 0}, {f1, 0});
  n.connect({f1, 0}, {f2, 0});
  n.connect({f2, 0}, {mux, 1});  // loop back
  EXPECT_THROW(trace_from_transmitter(n, tx, LossModel{}), core::Error);
}

TEST(Trace, MaxLossOverNetlist) {
  Netlist n;
  LossModel model;
  const ComponentId tx = n.add_transmitter("tx");
  const ComponentId split = n.add_beam_splitter(8, "split");
  std::vector<ComponentId> rx;
  const ComponentId mux = n.add_multiplexer(1, "mux");
  n.connect({tx, 0}, {mux, 0});
  n.connect({mux, 0}, {split, 0});
  for (int i = 0; i < 8; ++i) {
    rx.push_back(n.add_receiver("rx" + std::to_string(i)));
    n.connect({split, i}, {rx.back(), 0});
  }
  const double expected = model.transmitter_coupling_db +
                          model.multiplexer_db + model.beam_splitter_db(8) +
                          model.receiver_coupling_db;
  EXPECT_NEAR(max_loss_db(n, model), expected, 1e-9);
}

TEST(Power, SplitterLossIsLogarithmic) {
  LossModel model;
  EXPECT_NEAR(model.beam_splitter_db(1), model.splitter_excess_db, 1e-12);
  EXPECT_NEAR(model.beam_splitter_db(10),
              10.0 + model.splitter_excess_db, 1e-9);
  EXPECT_NEAR(model.beam_splitter_db(100),
              20.0 + model.splitter_excess_db, 1e-9);
}

TEST(Power, LossAllowance) {
  PowerBudget budget;
  budget.transmit_power_dbm = 0.0;
  budget.receiver_sensitivity_dbm = -30.0;
  budget.system_margin_db = 3.0;
  EXPECT_DOUBLE_EQ(budget.loss_allowance_db(), 27.0);
  EXPECT_TRUE(budget.feasible(27.0));
  EXPECT_FALSE(budget.feasible(27.01));
}

TEST(Power, MaxStackingFactorMonotoneInBudget) {
  LossModel model;
  PowerBudget poor{-3.0, -20.0, 3.0};
  PowerBudget rich{0.0, -35.0, 3.0};
  const std::int64_t s_poor = max_stacking_factor(poor, model);
  const std::int64_t s_rich = max_stacking_factor(rich, model);
  EXPECT_LE(s_poor, s_rich);
  EXPECT_GT(s_rich, 0);
  // The returned s must be feasible and s+1 infeasible.
  if (s_rich > 0) {
    EXPECT_TRUE(rich.feasible(canonical_hop_loss_db(model, s_rich)));
    EXPECT_FALSE(rich.feasible(canonical_hop_loss_db(model, s_rich + 1)));
  }
}

TEST(Power, HopelessBudgetGivesZero) {
  LossModel model;
  PowerBudget hopeless{-10.0, -5.0, 3.0};  // negative allowance
  EXPECT_EQ(max_stacking_factor(hopeless, model), 0);
}

TEST(Power, CanonicalHopLossGrowsWithS) {
  LossModel model;
  EXPECT_LT(canonical_hop_loss_db(model, 2),
            canonical_hop_loss_db(model, 16));
  // 10x fan-out costs exactly 10 dB more.
  EXPECT_NEAR(canonical_hop_loss_db(model, 60) -
                  canonical_hop_loss_db(model, 6),
              10.0, 1e-9);
}

}  // namespace
}  // namespace otis::optics
