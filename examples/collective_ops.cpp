// collective_ops: broadcast and gossip on the paper's networks, showing
// the one-to-many power of multi-OPS couplers slot by slot.
//
// Usage: collective_ops [--network=sk|pops] [--s=6] [--d=3] [--k=2]
//                       [--t=4] [--g=3] [--root=0]

#include <iostream>

#include "collectives/pops_collectives.hpp"
#include "collectives/schedule.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/args.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"

namespace {

/// Prints how knowledge spreads slot by slot.
void narrate(const otis::hypergraph::StackGraph& network,
             const otis::collectives::SlotSchedule& schedule,
             otis::hypergraph::Node root) {
  otis::collectives::Knowledge knowledge =
      otis::collectives::initial_knowledge(network.node_count());
  otis::core::Table table(
      {"slot", "transmissions", "nodes knowing root's token"});
  auto count_informed = [&] {
    std::int64_t informed = 0;
    for (const auto& known : knowledge) {
      informed += known[static_cast<std::size_t>(root)] ? 1 : 0;
    }
    return informed;
  };
  table.add(std::string("start"), std::string("-"), count_informed());
  for (std::size_t i = 0; i < schedule.slots.size(); ++i) {
    otis::collectives::SlotSchedule one;
    one.slots.push_back(schedule.slots[i]);
    knowledge = otis::collectives::run_schedule(network, one,
                                                std::move(knowledge));
    table.add(static_cast<std::int64_t>(i + 1),
              static_cast<std::int64_t>(schedule.slots[i].size()),
              count_informed());
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv,
                        {"network", "s", "d", "k", "t", "g", "root"});
  const std::string kind = args.get("network", "sk");
  const otis::hypergraph::Node root = args.get_int("root", 0);

  if (kind == "pops") {
    otis::hypergraph::Pops pops(args.get_int("t", 4), args.get_int("g", 3));
    std::cout << "one-to-all on POPS(" << pops.group_size() << ","
              << pops.group_count() << "), root " << root << ":\n";
    narrate(pops.stack(), otis::collectives::pops_one_to_all(pops, root),
            root);
    auto gossip = otis::collectives::pops_gossip(pops);
    auto after = otis::collectives::run_schedule(
        pops.stack(), gossip,
        otis::collectives::initial_knowledge(pops.processor_count()));
    std::cout << "\ngossip: " << gossip.slot_count() << " slots, "
              << gossip.transmission_count() << " transmissions, complete: "
              << (otis::collectives::gossip_complete(after) ? "yes" : "NO")
              << "\n";
    return 0;
  }

  otis::hypergraph::StackKautz sk(args.get_int("s", 6),
                                  static_cast<int>(args.get_int("d", 3)),
                                  static_cast<int>(args.get_int("k", 2)));
  std::cout << "one-to-all on SK(" << sk.stacking_factor() << ","
            << sk.kautz_degree() << "," << sk.diameter() << "), root "
            << root << " (diameter " << sk.diameter() << " = slot count):\n";
  narrate(sk.stack(), otis::collectives::stack_kautz_one_to_all(sk, root),
          root);
  auto gossip = otis::collectives::stack_kautz_gossip(sk);
  auto after = otis::collectives::run_schedule(
      sk.stack(), gossip,
      otis::collectives::initial_knowledge(sk.processor_count()));
  std::cout << "\ngossip: " << gossip.slot_count() << " slots (s + k), "
            << gossip.transmission_count() << " transmissions, complete: "
            << (otis::collectives::gossip_complete(after) ? "yes" : "NO")
            << "\n";
  return 0;
}
