#include "core/error.hpp"
#include "designs/builders.hpp"
#include "designs/group_block.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"

namespace otis::designs {

using optics::PortRef;

namespace {

/// Shared construction for SK(s, d, k) and SII(s, d, n): both are
/// s-stacked Imase-Itoh graphs with loops, differing only in the group
/// count n (Kautz restricts n to d^{k-1}(d+1)). Per paper Sec. 4.2:
///   - each of the n groups gets a transmit block OTIS(s, d+1) with d+1
///     multiplexers, and a receive block OTIS(d+1, s) with d+1
///     beam-splitters;
///   - the d non-loop multiplexers of group x feed the single central
///     OTIS(d, n) at inputs d*x + c (c = alpha - 1), whose output group v
///     feeds the first d splitter slots of group v (Proposition 1);
///   - the loop coupler (slot d) bypasses the central OTIS through a
///     fiber, "connected using an appropriate technique (e.g., optical
///     fiber)" as the paper puts it.
NetworkDesign build_stacked(std::int64_t s, int degree, std::int64_t n,
                            std::string name,
                            hypergraph::DirectedHypergraph target) {
  const std::int64_t d = degree;
  NetworkDesign design;
  design.name = std::move(name);
  design.processor_count = s * n;
  design.tx_of_processor.resize(static_cast<std::size_t>(s * n));
  design.rx_of_processor.resize(static_cast<std::size_t>(s * n));

  std::vector<GroupTxBlock> txb;
  std::vector<GroupRxBlock> rxb;
  txb.reserve(static_cast<std::size_t>(n));
  rxb.reserve(static_cast<std::size_t>(n));
  for (std::int64_t x = 0; x < n; ++x) {
    const std::string prefix = "group" + std::to_string(x);
    txb.push_back(build_group_tx(design.netlist, s, d + 1, prefix));
    rxb.push_back(build_group_rx(design.netlist, d + 1, s, prefix));
    for (std::int64_t y = 0; y < s; ++y) {
      const std::size_t p = static_cast<std::size_t>(x * s + y);
      design.tx_of_processor[p] = txb.back().tx[static_cast<std::size_t>(y)];
      design.rx_of_processor[p] = rxb.back().rx[static_cast<std::size_t>(y)];
    }
  }

  // Central OTIS(d, n): carries every non-loop arc (Proposition 1 /
  // Corollary 1).
  optics::ComponentId central =
      design.netlist.add_otis(d, n, design.name + "/otis-central");
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t c = 0; c < d; ++c) {
      design.netlist.connect(
          PortRef{txb[static_cast<std::size_t>(x)]
                      .mux[static_cast<std::size_t>(c)],
                  0},
          PortRef{central, d * x + c});
    }
  }
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::int64_t b = 0; b < d; ++b) {
      design.netlist.connect(
          PortRef{central, v * d + b},
          PortRef{rxb[static_cast<std::size_t>(v)]
                      .splitter[static_cast<std::size_t>(b)],
                  0});
    }
  }

  // Loop couplers: multiplexer slot d of group x -> fiber -> splitter
  // slot d of the same group.
  for (std::int64_t x = 0; x < n; ++x) {
    optics::ComponentId fiber = design.netlist.add_fiber(
        "group" + std::to_string(x) + "/loop-fiber");
    design.netlist.connect(
        PortRef{txb[static_cast<std::size_t>(x)]
                    .mux[static_cast<std::size_t>(d)],
                0},
        PortRef{fiber, 0});
    design.netlist.connect(
        PortRef{fiber, 0},
        PortRef{rxb[static_cast<std::size_t>(x)]
                    .splitter[static_cast<std::size_t>(d)],
                0});
  }

  design.target_hypergraph = std::move(target);
  design.finalize();
  return design;
}

}  // namespace

NetworkDesign stack_kautz_design(std::int64_t stacking_factor, int degree,
                                 int diameter) {
  OTIS_REQUIRE(stacking_factor >= 1,
               "stack_kautz_design: stacking factor must be >= 1");
  hypergraph::StackKautz sk(stacking_factor, degree, diameter);
  std::string name = "SK(" + std::to_string(stacking_factor) + "," +
                     std::to_string(degree) + "," + std::to_string(diameter) +
                     ")";
  return build_stacked(stacking_factor, degree, sk.group_count(),
                       std::move(name), sk.stack().hypergraph());
}

NetworkDesign stack_imase_itoh_design(std::int64_t stacking_factor, int degree,
                                      std::int64_t group_count) {
  OTIS_REQUIRE(stacking_factor >= 1,
               "stack_imase_itoh_design: stacking factor must be >= 1");
  hypergraph::StackImaseItoh sii(stacking_factor, degree, group_count);
  std::string name = "SII(" + std::to_string(stacking_factor) + "," +
                     std::to_string(degree) + "," +
                     std::to_string(group_count) + ")";
  return build_stacked(stacking_factor, degree, group_count, std::move(name),
                       sii.stack().hypergraph());
}

}  // namespace otis::designs
