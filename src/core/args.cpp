#include "core/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/error.hpp"

namespace otis::core {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& spec) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (!spec.empty() &&
        std::find(spec.begin(), spec.end(), name) == spec.end()) {
      OTIS_REQUIRE(false, "unknown option --" + name);
    }
    options_[name] = value;
  }
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  char* end = nullptr;
  std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  OTIS_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "option --" + name + " expects an integer");
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  OTIS_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "option --" + name + " expects a number");
  return value;
}

}  // namespace otis::core
