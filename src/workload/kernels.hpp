#pragma once
/// \file kernels.hpp
/// Synthetic dependency kernels: the classic communication skeletons of
/// bulk-synchronous and tree-structured parallel programs, expressed as
/// closed-loop Workloads. Unlike the open-loop TrafficGenerators these
/// carry real data dependencies, so queueing delay on one packet stalls
/// every packet downstream of it -- the effect collective-latency
/// analyses care about and slot-count arithmetic cannot capture.

#include <cstdint>
#include <memory>

#include "hypergraph/hypergraph.hpp"
#include "workload/workload.hpp"

namespace otis::workload {

/// Bulk-synchronous phase exchange: in phase p every node v sends one
/// packet to (v + shift_p) mod nodes with shift_p = ((p * shift)
/// mod (nodes - 1)) + 1, and phase p+1 starts only once phase p is
/// fully delivered (a global barrier). `phases` >= 1, `shift` >= 1,
/// `nodes` >= 2.
[[nodiscard]] std::unique_ptr<Workload> bsp_exchange(std::int64_t nodes,
                                                     std::int64_t phases,
                                                     std::int64_t shift = 1);

/// Reduce over an `arity`-ary combining tree rooted at `root`: every
/// non-root node sends one packet to its tree parent, eligible only
/// after the packets of all its own children arrived (its partial
/// result is complete). Leaves fire immediately; the makespan is at
/// least the tree depth.
[[nodiscard]] std::unique_ptr<Workload> reduce_tree(std::int64_t nodes,
                                                    std::int64_t arity = 2,
                                                    hypergraph::Node root = 0);

/// Personalized gather: every node sends its own packet directly to
/// `root`, all eligible at slot 0 -- a pure incast that stresses the
/// root's in-couplers with no dependency structure at all.
[[nodiscard]] std::unique_ptr<Workload> gather_incast(
    std::int64_t nodes, hypergraph::Node root = 0);

}  // namespace otis::workload
