// Fig. 2 of the paper: a degree-4 optical passive star coupler -- an
// optical multiplexer feeding a beam-splitter. Regenerates the figure as
// a netlist, traces every source to every destination, and reports the
// physical properties the paper leans on: passivity (no power source in
// the model), 1/s power split, and the single-wavelength constraint.

#include <cmath>
#include <iostream>

#include "core/table.hpp"
#include "optics/netlist.hpp"
#include "optics/power.hpp"
#include "optics/trace.hpp"

int main() {
  constexpr std::int64_t kDegree = 4;
  std::cout << "[Fig. 2] degree-" << kDegree
            << " OPS coupler = multiplexer + beam-splitter\n\n";

  otis::optics::Netlist netlist;
  otis::optics::LossModel model;
  std::vector<otis::optics::ComponentId> tx;
  std::vector<otis::optics::ComponentId> rx;
  const auto mux = netlist.add_multiplexer(kDegree, "ops/mux");
  const auto split = netlist.add_beam_splitter(kDegree, "ops/split");
  netlist.connect({mux, 0}, {split, 0});
  for (std::int64_t p = 0; p < kDegree; ++p) {
    tx.push_back(netlist.add_transmitter("src" + std::to_string(p)));
    rx.push_back(netlist.add_receiver("dst" + std::to_string(p + kDegree)));
    netlist.connect({tx.back(), 0}, {mux, p});
    netlist.connect({split, p}, {rx.back(), 0});
  }

  otis::core::Table table({"source", "destination", "couplers", "loss dB"});
  bool ok = true;
  for (std::int64_t p = 0; p < kDegree; ++p) {
    auto endpoints = otis::optics::trace_from_transmitter(netlist, tx[p],
                                                          model);
    ok = ok && endpoints.size() == kDegree;
    for (const auto& e : endpoints) {
      table.add("src" + std::to_string(p),
                netlist.component(e.receiver).label, e.couplers,
                otis::core::format_double(e.loss_db, 2));
      ok = ok && e.couplers == 1;
    }
  }
  table.print(std::cout);

  const double split_db = model.beam_splitter_db(kDegree);
  std::cout << "\nsplitting loss 10*log10(" << kDegree << ") + excess = "
            << otis::core::format_double(split_db, 2) << " dB ("
            << otis::core::format_double(
                   100.0 * std::pow(10.0, -split_db / 10.0), 1)
            << "% of input power per destination)\n"
            << "single wavelength => at most ONE of the " << kDegree
            << " sources may transmit per slot (enforced by the simulator's"
               " arbitration)\n"
            << "passive: 0 powered components in the coupler netlist\n";
  std::cout << "\nall " << kDegree << "x" << kDegree
            << " source->destination lightpaths present: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
