#pragma once
/// \file generic_stack_routing.hpp
/// Table-driven routing for ANY stack-graph network.
///
/// StackKautzRouter exploits Kautz labels; this router serves the rest:
/// stack-Imase-Itoh networks (where the arithmetic router could be used,
/// but a table is simpler and exact), OTIS-G style bases, or ad-hoc
/// topologies. Group-level next hops come from a TableRouter over the
/// base digraph; relays follow the same convention as the Kautz router
/// (the member of the next group with the destination's in-group index).

#include "hypergraph/stack_graph.hpp"
#include "routing/table_router.hpp"

namespace otis::routing {

/// Shortest-path router over an arbitrary stack-graph.
class GenericStackRouter {
 public:
  /// `network` must outlive the router. The base digraph must contain a
  /// loop at every vertex if same-group traffic is expected (stack-Kautz
  /// and stack-Imase-Itoh bases do).
  explicit GenericStackRouter(const hypergraph::StackGraph& network);

  /// Coupler transmissions needed between two processors (0 for self;
  /// 1 for same group via the loop; else base shortest-path distance).
  [[nodiscard]] std::int64_t distance(hypergraph::Node source,
                                      hypergraph::Node target) const;

  /// Next coupler for a packet at `current` toward `target`.
  [[nodiscard]] hypergraph::HyperarcId next_coupler(
      hypergraph::Node current, hypergraph::Node target) const;

  /// The node that consumes a packet delivered on `coupler` when headed
  /// for `target` (the destination itself once it is in the coupler's
  /// target set).
  [[nodiscard]] hypergraph::Node relay_on(hypergraph::HyperarcId coupler,
                                          hypergraph::Node target) const;

 private:
  /// First base arc from `from` to `to` (loops included).
  [[nodiscard]] graph::ArcId arc_between(graph::Vertex from,
                                         graph::Vertex to) const;

  const hypergraph::StackGraph& network_;
  TableRouter table_;
};

}  // namespace otis::routing
