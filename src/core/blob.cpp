#include "core/blob.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace otis::core {

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    OTIS_REQUIRE(out.good(), "write_file_atomic: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    OTIS_REQUIRE(out.good(), "write_file_atomic: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  OTIS_REQUIRE(!ec, "write_file_atomic: rename to " + path + " failed");
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    return false;
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return false;
  }
  in.seekg(0);
  bytes.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  return in.good();
}

}  // namespace otis::core
