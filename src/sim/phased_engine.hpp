#pragma once
/// \file phased_engine.hpp
/// Direct three-phase slot engines behind OpsNetworkSim.
///
/// One simulated slot is three phases over flat state:
///   1. generate  -- one batched traffic call fills the per-node demand
///                   scratch (traffic.hpp demand_batch: same draw
///                   sequence as per-node calls, one virtual dispatch
///                   per slot) and every firing node pushes onto the
///                   VOQ chosen by the route view;
///   2. arbitrate -- couplers with any non-empty feed (found by a
///                   count-trailing-zeros scan over the occupancy
///                   summary bitmap) pick winners straight off their
///                   request-mask words (sim/arbitration.hpp) and pop
///                   them from the SoA VOQ arena;
///   3. receive   -- every winner is consumed by its relay: counted as
///                   delivered at the destination or re-enqueued onward.
///
/// VOQs live in a structure-of-arrays arena (voq_arena.hpp): one
/// contiguous array per packet field plus flat head/size cursors, so
/// the loops touch dense cache lines instead of chasing per-queue ring
/// buffers. Per-coupler occupancy bitmasks (occupancy.hpp), maintained
/// on VOQ push/pop, let arbitration skip empty couplers outright.
///
/// The engine is templated over the RouteView (route_view.hpp): the
/// dense CompiledRoutes and the group-factored CompressedRoutes compile
/// into the same loop with no virtual dispatch, so a hop stays two
/// array loads (+ the group/copy arithmetic for compressed tables).
/// Because both views answer every query identically, the two
/// instantiations are bit-identical for every seed and thread count.
///
/// Serial mode iterates nodes then couplers in id order drawing from the
/// single legacy RNG stream, which makes it bit-identical to the
/// event-queue engine for every seed. Sharded mode partitions nodes and
/// couplers across worker threads with barrier-synced phases; all
/// randomness comes from per-node (generation) and per-coupler
/// (arbitration) streams, so the outcome is a pure function of the seed
/// -- identical for every thread count and every partition. (Sharded
/// workers rebuild request words locally instead of sharing the
/// occupancy masks -- no atomics on the hot path -- and each shard owns
/// its own arena pool so pushes never race on a growing allocation.)
///
/// Workload (closed-loop) mode -- SimConfig::workload set -- replaces
/// the fixed measure window with run-to-completion: phase 1 injects the
/// packets the workload reports eligible (plus open-loop background
/// traffic until the workload completes), phase 3 feeds deliveries back
/// to the workload, and the loop ends when every workload packet has
/// been delivered and the network drained. BOTH serial and sharded
/// workload runs use the per-node/per-coupler streams, so workload
/// results are bit-identical across engines as well as thread counts.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/route_view.hpp"
#include "sim/metrics.hpp"
#include "sim/occupancy.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "sim/voq_arena.hpp"

namespace otis::sim {

/// Internal engine used by OpsNetworkSim for Engine::kPhased and
/// Engine::kSharded. Single-run object: construct, run() once.
template <routing::RouteView Routes>
class PhasedEngineT {
 public:
  /// All references must outlive the engine. `config` must be validated
  /// by the caller (OpsNetworkSim does).
  PhasedEngineT(const hypergraph::StackGraph& network, const Routes& routes,
                TrafficGenerator& traffic, const SimConfig& config);

  /// Runs the configured window; returns measurement-window metrics and
  /// fills per-coupler success counts (sized to the coupler count).
  RunMetrics run(std::vector<std::int64_t>& coupler_success);

 private:
  RunMetrics run_serial(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_sharded(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_workload_serial(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_workload_sharded(std::vector<std::int64_t>& coupler_success);

  const hypergraph::StackGraph& network_;
  const Routes& routes_;
  TrafficGenerator& traffic_;
  const SimConfig& config_;

  std::int64_t nodes_ = 0;
  std::int64_t couplers_ = 0;
  /// Flat VOQ index space: node v's queues are voq_base_[v] + slot.
  std::vector<std::int64_t> voq_base_;
  /// Feed -> VOQ map and request-mask geometry (immutable per network).
  detail::FeedIndex feed_;
  std::vector<std::int64_t> token_;
};

/// The dense-table instantiation, the default engine.
using PhasedEngine = PhasedEngineT<routing::CompiledRoutes>;

extern template class PhasedEngineT<routing::CompiledRoutes>;
extern template class PhasedEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
