// Dense <-> compressed routing-table parity, the correctness bar of the
// group-factored RouteView layer:
//  - CompressedRoutes agrees with CompiledRoutes on next_coupler /
//    next_slot / relay for every (node, dest) pair on SK, SII, POPS and
//    a generic stack-graph;
//  - compress() (fold the dense table, exhaustive verification) and
//    compile() (O(G^2) router evaluations, the dense table never built)
//    produce identical tables;
//  - engine bit-parity: dense and compressed tables give identical
//    RunMetrics and coupler-success vectors on the phased, sharded (all
//    thread counts) and event-queue engines;
//  - non-group-factored routers are rejected, not silently compressed;
//  - the memory model: a >= 10^4-node stack-Kautz compresses to under
//    1/50 of the dense footprint (the ISSUE acceptance bound).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/error.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/stack_routing.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

namespace otis {
namespace {

/// Every routing answer the engines consume must agree: next coupler
/// and VOQ slot for each (node, dest), and the relay of the coupler the
/// route actually chose.
void expect_route_parity(const hypergraph::StackGraph& stack,
                         const routing::CompiledRoutes& dense,
                         const routing::CompressedRoutes& compressed) {
  ASSERT_EQ(dense.node_count(), compressed.node_count());
  ASSERT_EQ(dense.coupler_count(), compressed.coupler_count());
  for (hypergraph::Node v = 0; v < dense.node_count(); ++v) {
    for (hypergraph::Node d = 0; d < dense.node_count(); ++d) {
      if (v == d) {
        continue;
      }
      const hypergraph::HyperarcId h = dense.next_coupler(v, d);
      EXPECT_EQ(compressed.next_coupler(v, d), h) << "v=" << v << " d=" << d;
      EXPECT_EQ(compressed.next_slot(v, d), dense.next_slot(v, d))
          << "v=" << v << " d=" << d;
      EXPECT_EQ(compressed.relay(h, d), dense.relay(h, d))
          << "h=" << h << " d=" << d;
    }
  }
  (void)stack;
}

TEST(CompressedRoutes, MatchesDenseOnStackKautz) {
  hypergraph::StackKautz sk(4, 3, 2);
  const routing::CompiledRoutes dense = routing::compile_stack_kautz_routes(sk);
  const routing::CompressedRoutes compressed =
      routing::compress_stack_kautz_routes(sk);
  expect_route_parity(sk.stack(), dense, compressed);
  EXPECT_EQ(compressed.group_count(), sk.group_count());
  EXPECT_EQ(compressed.stacking_factor(), 4);
  EXPECT_LT(compressed.memory_bytes(), dense.memory_bytes());
}

TEST(CompressedRoutes, MatchesDenseOnPops) {
  hypergraph::Pops pops(4, 5);
  const routing::CompiledRoutes dense = routing::compile_pops_routes(pops);
  const routing::CompressedRoutes compressed =
      routing::compress_pops_routes(pops);
  expect_route_parity(pops.stack(), dense, compressed);
}

TEST(CompressedRoutes, MatchesDenseOnStackImaseItoh) {
  hypergraph::StackImaseItoh sii(3, 2, 7);
  const routing::CompiledRoutes dense =
      routing::compile_stack_imase_itoh_routes(sii);
  const routing::CompressedRoutes compressed =
      routing::compress_stack_imase_itoh_routes(sii);
  expect_route_parity(sii.stack(), dense, compressed);
}

TEST(CompressedRoutes, MatchesDenseOnGenericStackGraph) {
  // A stack-graph the per-family adapters never see: s = 1 over a plain
  // de Bruijn base (no loops needed -- every group is a single node, so
  // same-group traffic does not exist and the (g, g) entries stay
  // unbaked).
  topology::DeBruijn db(2, 3);
  hypergraph::StackGraph stack(1, db.graph());
  const routing::CompiledRoutes dense =
      routing::compile_generic_stack_routes(stack);
  const routing::CompressedRoutes compressed =
      routing::compress_generic_stack_routes(stack);
  expect_route_parity(stack, dense, compressed);

  // And s = 3 over a looped base via the generic router.
  hypergraph::StackGraph looped(
      3, hypergraph::imase_itoh_with_loops(2, 5));
  expect_route_parity(looped, routing::compile_generic_stack_routes(looped),
                      routing::compress_generic_stack_routes(looped));
}

TEST(CompressedRoutes, CompressFromDenseEqualsCompileFromRouter) {
  // compress() exhaustively verifies the dense table while folding it;
  // its output must match the group-sampled compile() path everywhere.
  hypergraph::StackKautz sk(3, 2, 3);
  const routing::CompiledRoutes dense = routing::compile_stack_kautz_routes(sk);
  const routing::CompressedRoutes folded =
      routing::CompressedRoutes::compress(sk.stack(), dense);
  const routing::CompressedRoutes compiled =
      routing::compress_stack_kautz_routes(sk);
  ASSERT_EQ(folded.memory_bytes(), compiled.memory_bytes());
  for (hypergraph::Node v = 0; v < folded.node_count(); ++v) {
    for (hypergraph::Node d = 0; d < folded.node_count(); ++d) {
      if (v == d) {
        continue;
      }
      ASSERT_EQ(folded.next_coupler(v, d), compiled.next_coupler(v, d));
      ASSERT_EQ(folded.next_slot(v, d), compiled.next_slot(v, d));
    }
  }
}

TEST(CompressedRoutes, RejectsNonGroupFactoredRouters) {
  hypergraph::StackKautz sk(2, 2, 2);
  const routing::StackKautzRouter router(sk);

  // Copy 1 always transmits on its loop coupler: feedable, but a
  // different group decision than copy 0's -- not factored.
  const auto skewed_next = [&](hypergraph::Node c, hypergraph::Node d) {
    if (sk.index_in_group(c) == 1 && sk.group_of(c) != sk.group_of(d)) {
      return sk.loop_coupler(sk.group_of(c));
    }
    return router.next_coupler(c, d);
  };
  const auto relay = [&](hypergraph::HyperarcId h, hypergraph::Node d) {
    return router.relay_on(h, d);
  };
  EXPECT_THROW(
      routing::CompressedRoutes::compile(sk.stack(), skewed_next, relay),
      core::Error);

  // A relay that picks a valid target of the coupler but not the copy
  // with the destination's index breaks the index-preserving convention.
  const auto next = [&](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  const auto skewed_relay = [&](hypergraph::HyperarcId h, hypergraph::Node d) {
    const hypergraph::Node honest = router.relay_on(h, d);
    const graph::Vertex group = sk.group_of(honest);
    return sk.processor(group,
                        (sk.index_in_group(honest) + 1) %
                            sk.stacking_factor());
  };
  EXPECT_THROW(
      routing::CompressedRoutes::compile(sk.stack(), next, skewed_relay),
      core::Error);

  // The same non-factored decisions baked densely are caught by the
  // exhaustive compress() verifier too.
  hypergraph::StackKautz sk3(3, 2, 2);
  const routing::StackKautzRouter router3(sk3);
  const auto skewed_mid = [&](hypergraph::Node c, hypergraph::Node d) {
    // Only the middle copy deviates: the compile() spot check (copies 0
    // and s-1) cannot see it, the exhaustive fold must.
    if (sk3.index_in_group(c) == 1 && sk3.group_of(c) != sk3.group_of(d)) {
      return sk3.loop_coupler(sk3.group_of(c));
    }
    return router3.next_coupler(c, d);
  };
  const routing::CompiledRoutes dense = routing::CompiledRoutes::compile(
      sk3.stack(), skewed_mid,
      [&](hypergraph::HyperarcId h, hypergraph::Node d) {
        return router3.relay_on(h, d);
      });
  EXPECT_THROW(routing::CompressedRoutes::compress(sk3.stack(), dense),
               core::Error);
}

// ------------------------------------------------------ engine parity

void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

struct ParityCase {
  const hypergraph::StackGraph& stack;
  routing::CompiledRoutes dense;
  routing::CompressedRoutes compressed;
  std::int64_t nodes;
  std::uint64_t seed;
};

void expect_engine_parity(const ParityCase& c) {
  auto run = [&](bool compressed, sim::Engine engine, int threads,
                 std::vector<std::int64_t>& successes) {
    sim::SimConfig config;
    config.warmup_slots = 20;
    config.measure_slots = 200;
    config.seed = c.seed;
    config.engine = engine;
    config.threads = threads;
    config.arbitration = sim::Arbitration::kRandomWinner;
    auto traffic = std::make_unique<sim::UniformTraffic>(c.nodes, 0.4);
    sim::RunMetrics metrics;
    if (compressed) {
      sim::OpsNetworkSim sim(c.stack, c.compressed, std::move(traffic),
                             config);
      metrics = sim.run();
      successes = sim.coupler_successes();
    } else {
      sim::OpsNetworkSim sim(c.stack, c.dense, std::move(traffic), config);
      metrics = sim.run();
      successes = sim.coupler_successes();
    }
    return metrics;
  };

  // Serial phased and the event-queue engine (whose callbacks are served
  // from whichever table the simulator was built with).
  for (sim::Engine engine : {sim::Engine::kPhased, sim::Engine::kEventQueue}) {
    SCOPED_TRACE(sim::engine_name(engine));
    std::vector<std::int64_t> dense_successes;
    std::vector<std::int64_t> compressed_successes;
    const sim::RunMetrics dense =
        run(false, engine, 1, dense_successes);
    const sim::RunMetrics compressed =
        run(true, engine, 1, compressed_successes);
    expect_identical(dense, compressed);
    EXPECT_EQ(dense_successes, compressed_successes);
  }
  // Sharded across thread counts.
  for (int threads : {1, 3}) {
    SCOPED_TRACE("sharded/" + std::to_string(threads));
    std::vector<std::int64_t> dense_successes;
    std::vector<std::int64_t> compressed_successes;
    const sim::RunMetrics dense =
        run(false, sim::Engine::kSharded, threads, dense_successes);
    const sim::RunMetrics compressed =
        run(true, sim::Engine::kSharded, threads, compressed_successes);
    expect_identical(dense, compressed);
    EXPECT_EQ(dense_successes, compressed_successes);
  }
}

TEST(CompressedEngineParity, StackKautz) {
  hypergraph::StackKautz sk(4, 3, 2);
  expect_engine_parity(
      ParityCase{sk.stack(), routing::compile_stack_kautz_routes(sk),
                 routing::compress_stack_kautz_routes(sk),
                 sk.processor_count(), 42});
}

TEST(CompressedEngineParity, Pops) {
  hypergraph::Pops pops(6, 12);
  expect_engine_parity(
      ParityCase{pops.stack(), routing::compile_pops_routes(pops),
                 routing::compress_pops_routes(pops), pops.processor_count(),
                 7});
}

TEST(CompressedEngineParity, StackImaseItoh) {
  hypergraph::StackImaseItoh sii(4, 2, 12);
  expect_engine_parity(
      ParityCase{sii.stack(), routing::compile_stack_imase_itoh_routes(sii),
                 routing::compress_stack_imase_itoh_routes(sii),
                 sii.processor_count(), 11});
}

// ---------------------------------------------------- memory model

TEST(CompressedRoutes, AutoRouteTableFlipsAtTheThreshold) {
  EXPECT_EQ(sim::resolve_route_table(sim::RouteTable::kAuto,
                                     sim::kAutoRouteTableNodes - 1),
            sim::RouteTable::kDense);
  EXPECT_EQ(sim::resolve_route_table(sim::RouteTable::kAuto,
                                     sim::kAutoRouteTableNodes),
            sim::RouteTable::kCompressed);
  EXPECT_EQ(sim::resolve_route_table(sim::RouteTable::kDense, 1 << 20),
            sim::RouteTable::kDense);
  EXPECT_EQ(sim::resolve_route_table(sim::RouteTable::kCompressed, 2),
            sim::RouteTable::kCompressed);
}

TEST(CompressedRoutes, LargeStackKautzCompressesBelowFiftiethOfDense) {
  // SK(10, 10, 3): N = 11000 processors, G = 1100 groups. The dense
  // table would be ~1.5 GB and is never built; the compressed one is a
  // few MB, compiled from the router at group granularity.
  hypergraph::StackKautz sk(10, 10, 3);
  ASSERT_EQ(sk.processor_count(), 11000);
  const routing::CompressedRoutes compressed =
      routing::compress_stack_kautz_routes(sk);
  EXPECT_EQ(compressed.node_count(), 11000);
  const std::size_t dense_bytes = routing::CompiledRoutes::dense_bytes(
      sk.processor_count(), sk.coupler_count());
  EXPECT_LE(compressed.memory_bytes() * 50, dense_bytes)
      << "compressed=" << compressed.memory_bytes()
      << " dense=" << dense_bytes;
}

}  // namespace
}  // namespace otis
