// Perf F4: collective communication on the paper's networks -- the
// one-to-many capability its Sec. 1 motivates. Regenerates optimal slot
// counts for one-to-all and gossip on POPS(t,g) and SK(s,d,k),
// validates every schedule against the single-wavelength constraint,
// and EXECUTES it on the slot engine via the workload subsystem: the
// schedule compiles into a dependency-DAG workload (waves eligible only
// after the previous wave delivered) and runs under real arbitration.
// The simulated makespan doubles as the completion proof -- every
// packet delivered -- and must equal the analytic slot count exactly in
// this uncontended single-wavelength setting (the schedules are
// conflict-free). perf9 sweeps the contended cases.
//
// Expected shape: POPS broadcasts in 1 slot and gossips in t; SK
// broadcasts in k (its diameter -- optimal) and gossips in s + k. The
// multi-OPS point: a broadcast informs a whole group per transmission,
// so slot counts are independent of N for fixed (t,g)/(s,d,k) shape.

#include <iostream>
#include <memory>

#include "collectives/pops_collectives.hpp"
#include "collectives/schedule.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/schedule_workload.hpp"

namespace {

/// Runs the compiled schedule to completion on the phased engine
/// (token, W = 1, no background traffic) and returns the makespan; -1
/// when the workload did not fully deliver.
std::int64_t simulate_makespan(
    const otis::hypergraph::StackGraph& network,
    std::shared_ptr<const otis::routing::CompiledRoutes> routes,
    const otis::collectives::SlotSchedule& schedule) {
  std::shared_ptr<otis::workload::Workload> load =
      otis::workload::schedule_workload(network, schedule);
  otis::sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: workload runs go to completion
  config.workload = load;
  otis::sim::OpsNetworkSim sim(
      network, std::move(routes),
      std::make_unique<otis::sim::UniformTraffic>(network.node_count(), 0.0),
      config);
  const otis::sim::RunMetrics metrics = sim.run();
  const bool complete =
      metrics.delivered_packets == load->packet_count() &&
      metrics.backlog == 0 && load->done();
  return complete ? metrics.makespan_slots : -1;
}

}  // namespace

int main() {
  std::cout << "[Perf F4] collective communication: analytic slot counts "
               "and simulated makespans\n\n";
  otis::core::Table table({"network", "N", "operation", "slots",
                           "transmissions", "bound", "makespan", "ok"});
  bool ok = true;

  const auto check = [&](const std::string& name, std::int64_t processors,
                         const char* operation,
                         const otis::hypergraph::StackGraph& network,
                         std::shared_ptr<const otis::routing::CompiledRoutes>
                             routes,
                         const otis::collectives::SlotSchedule& schedule,
                         std::int64_t bound, std::int64_t expected_slots) {
    const bool valid =
        otis::collectives::validate_schedule(network, schedule).empty();
    const std::int64_t makespan =
        valid ? simulate_makespan(network, std::move(routes), schedule) : -1;
    // The uncontended single-wavelength makespan must be EXACTLY the
    // schedule's slot count: execution proves the analysis.
    const bool row_ok = valid && schedule.slot_count() == expected_slots &&
                        makespan == schedule.slot_count();
    table.add(name, processors, operation, schedule.slot_count(),
              schedule.transmission_count(), bound, makespan, row_ok);
    ok = ok && row_ok;
  };

  struct PopsParams {
    std::int64_t t, g;
  };
  for (const PopsParams& p : {PopsParams{4, 2}, PopsParams{6, 12},
                              PopsParams{8, 8}}) {
    otis::hypergraph::Pops pops(p.t, p.g);
    auto routes = std::make_shared<const otis::routing::CompiledRoutes>(
        otis::routing::compile_pops_routes(pops));
    const std::string name =
        "POPS(" + std::to_string(p.t) + "," + std::to_string(p.g) + ")";
    check(name, pops.processor_count(), "one-to-all", pops.stack(), routes,
          otis::collectives::pops_one_to_all(pops, 0), 1, 1);
    check(name, pops.processor_count(), "gossip", pops.stack(), routes,
          otis::collectives::pops_gossip(pops),
          otis::collectives::pops_gossip_lower_bound(pops), p.t);
  }

  struct SkParams {
    std::int64_t s;
    int d, k;
  };
  for (const SkParams& p : {SkParams{6, 3, 2}, SkParams{2, 2, 3},
                            SkParams{4, 2, 2}}) {
    otis::hypergraph::StackKautz sk(p.s, p.d, p.k);
    auto routes = std::make_shared<const otis::routing::CompiledRoutes>(
        otis::routing::compile_stack_kautz_routes(sk));
    const std::string name = "SK(" + std::to_string(p.s) + "," +
                             std::to_string(p.d) + "," +
                             std::to_string(p.k) + ")";
    check(name, sk.processor_count(), "one-to-all", sk.stack(), routes,
          otis::collectives::stack_kautz_one_to_all(sk, 0),
          otis::collectives::stack_kautz_broadcast_lower_bound(sk), p.k);
    check(name, sk.processor_count(), "gossip", sk.stack(), routes,
          otis::collectives::stack_kautz_gossip(sk),
          static_cast<std::int64_t>(p.s + p.k), p.s + p.k);
  }

  table.print(std::cout);
  std::cout << "\nPOPS broadcast is 1 slot; SK broadcast equals its "
               "diameter (optimal); all schedules single-wavelength valid "
               "and their SIMULATED makespans equal the analytic slot "
               "counts: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
