#include "collectives/pops_collectives.hpp"

#include "core/error.hpp"

namespace otis::collectives {

SlotSchedule pops_one_to_all(const hypergraph::Pops& network,
                             hypergraph::Node root) {
  OTIS_REQUIRE(root >= 0 && root < network.processor_count(),
               "pops_one_to_all: root out of range");
  SlotSchedule schedule;
  std::vector<Transmission> slot;
  const std::int64_t i = network.group_of(root);
  for (std::int64_t j = 0; j < network.group_count(); ++j) {
    slot.push_back(Transmission{root, network.coupler(i, j)});
  }
  schedule.slots.push_back(std::move(slot));
  return schedule;
}

SlotSchedule pops_gossip(const hypergraph::Pops& network) {
  SlotSchedule schedule;
  for (std::int64_t y = 0; y < network.group_size(); ++y) {
    std::vector<Transmission> slot;
    for (std::int64_t i = 0; i < network.group_count(); ++i) {
      const hypergraph::Node sender = network.processor(i, y);
      for (std::int64_t j = 0; j < network.group_count(); ++j) {
        slot.push_back(Transmission{sender, network.coupler(i, j)});
      }
    }
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

std::int64_t pops_gossip_lower_bound(const hypergraph::Pops& network) {
  // Without combining, t tokens of group i must each cross coupler
  // (i, j), one per slot. (With combining the bound drops; the measured
  // schedule is reported against this conservative bound.)
  return network.group_size();
}

}  // namespace otis::collectives
