#include "routing/stack_routing.hpp"

#include "core/error.hpp"

namespace otis::routing {

StackKautzRouter::StackKautzRouter(const hypergraph::StackKautz& network)
    : network_(network),
      kautz_router_(topology::Kautz(network.kautz_degree(),
                                    network.diameter())) {}

int StackKautzRouter::distance(hypergraph::Node source,
                               hypergraph::Node target) const {
  if (source == target) {
    return 0;
  }
  const graph::Vertex gs = network_.group_of(source);
  const graph::Vertex gt = network_.group_of(target);
  if (gs == gt) {
    return 1;  // loop coupler
  }
  return kautz_router_.distance(gs, gt);
}

std::vector<StackHop> StackKautzRouter::route(hypergraph::Node source,
                                              hypergraph::Node target) const {
  std::vector<StackHop> hops;
  if (source == target) {
    return hops;
  }
  const graph::Vertex gs = network_.group_of(source);
  const graph::Vertex gt = network_.group_of(target);
  const std::int64_t target_index = network_.index_in_group(target);
  if (gs == gt) {
    hops.push_back(StackHop{source, network_.loop_coupler(gs), target});
    return hops;
  }
  hypergraph::Node current = source;
  for (const std::int64_t group : kautz_router_.route(gs, gt)) {
    if (group == network_.group_of(current)) {
      continue;  // first entry is the source group
    }
    const hypergraph::HyperarcId coupler =
        network_.coupler_between(network_.group_of(current), group);
    const hypergraph::Node relay = network_.processor(group, target_index);
    hops.push_back(StackHop{current, coupler, relay});
    current = relay;
  }
  OTIS_ASSERT(current == target, "StackKautzRouter: route missed target");
  return hops;
}

hypergraph::HyperarcId StackKautzRouter::next_coupler(
    hypergraph::Node current, hypergraph::Node target) const {
  OTIS_REQUIRE(current != target,
               "StackKautzRouter::next_coupler: already delivered");
  const graph::Vertex gc = network_.group_of(current);
  const graph::Vertex gt = network_.group_of(target);
  if (gc == gt) {
    return network_.loop_coupler(gc);
  }
  const std::int64_t next_group = kautz_router_.next_hop(gc, gt);
  return network_.coupler_between(gc, next_group);
}

hypergraph::Node StackKautzRouter::relay_on(hypergraph::HyperarcId coupler,
                                            hypergraph::Node target) const {
  const auto& arc = network_.stack().hypergraph().hyperarc(coupler);
  OTIS_ASSERT(!arc.targets.empty(), "relay_on: coupler has no targets");
  const graph::Vertex group = network_.group_of(arc.targets.front());
  if (group == network_.group_of(target)) {
    return target;
  }
  return network_.processor(group, network_.index_in_group(target));
}

int StackKautzRouter::max_hops() const { return network_.diameter(); }

PopsRouter::PopsRouter(const hypergraph::Pops& network) : network_(network) {}

int PopsRouter::distance(hypergraph::Node source,
                         hypergraph::Node target) const {
  return source == target ? 0 : 1;
}

std::vector<StackHop> PopsRouter::route(hypergraph::Node source,
                                        hypergraph::Node target) const {
  std::vector<StackHop> hops;
  if (source == target) {
    return hops;
  }
  hops.push_back(StackHop{
      source,
      network_.coupler(network_.group_of(source), network_.group_of(target)),
      target});
  return hops;
}

hypergraph::HyperarcId PopsRouter::next_coupler(
    hypergraph::Node current, hypergraph::Node target) const {
  OTIS_REQUIRE(current != target,
               "PopsRouter::next_coupler: already delivered");
  return network_.coupler(network_.group_of(current),
                          network_.group_of(target));
}

}  // namespace otis::routing
