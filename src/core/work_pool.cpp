#include "core/work_pool.hpp"

#include "core/error.hpp"

namespace otis::core {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  int count = threads;
  if (count <= 0) {
    count = static_cast<int>(std::thread::hardware_concurrency());
    if (count <= 0) {
      count = 1;
    }
  }
  queues_.reserve(static_cast<std::size_t>(count));
  stats_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Queue>());
    stats_.push_back(std::make_unique<Counters>());
  }
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkStealingPool::enable_stats() {
  stats_enabled_.store(true, std::memory_order_relaxed);
}

std::vector<WorkStealingPool::WorkerStats> WorkStealingPool::stats() const {
  std::vector<WorkerStats> out(stats_.size());
  for (std::size_t w = 0; w < stats_.size(); ++w) {
    const Counters& c = *stats_[w];
    out[w].busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    out[w].idle_ns = c.idle_ns.load(std::memory_order_relaxed);
    out[w].steal_ns = c.steal_ns.load(std::memory_order_relaxed);
    out[w].items = c.items.load(std::memory_order_relaxed);
    out[w].steals = c.steals.load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t WorkStealingPool::stats_wall_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - stats_epoch_)
      .count();
}

bool WorkStealingPool::try_acquire(std::size_t self, std::size_t& item,
                                   bool& stolen) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.items.empty()) {
      item = own.items.front();
      own.items.pop_front();
      stolen = false;
      return true;
    }
  }
  // Steal from the back of the victim with work, scanning round-robin
  // from our right-hand neighbour.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.items.empty()) {
      item = victim.items.back();
      victim.items.pop_back();
      stolen = true;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_main(std::size_t self) {
  Counters& stat = *stats_[self];
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    bool collecting = stats_enabled_.load(std::memory_order_relaxed);
    {
      const std::int64_t wait0 = collecting ? now_ns() : 0;
      std::unique_lock<std::mutex> lock(mutex_);
      // job_ != nullptr keeps late wakers out of a batch that already
      // finished (run() clears the pointer before returning).
      start_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (collecting) {
        stat.idle_ns.fetch_add(now_ns() - wait0, std::memory_order_relaxed);
      }
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      job = job_;
      ++active_;
      // Re-read under the lock: a worker that parked before
      // enable_stats() must still count the batch that wakes it -- the
      // "enable before the first counted run()" contract only works if
      // the flag is sampled per batch, not per park.
      collecting = stats_enabled_.load(std::memory_order_relaxed);
    }
    while (true) {
      std::size_t item = 0;
      bool was_stolen = false;
      const std::int64_t scan0 = collecting ? now_ns() : 0;
      const bool acquired = try_acquire(self, item, was_stolen);
      if (collecting) {
        stat.steal_ns.fetch_add(now_ns() - scan0,
                                std::memory_order_relaxed);
      }
      if (!acquired) {
        break;
      }
      std::exception_ptr error;
      const std::int64_t busy0 = collecting ? now_ns() : 0;
      try {
        (*job)(item, self);
      } catch (...) {
        error = std::current_exception();
      }
      if (collecting) {
        stat.busy_ns.fetch_add(now_ns() - busy0, std::memory_order_relaxed);
        stat.items.fetch_add(1, std::memory_order_relaxed);
        if (was_stolen) {
          stat.steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) {
        first_error_ = error;
      }
      --remaining_;
    }
    // run() returns only once every worker that entered the batch has
    // also left it, so `job` can never dangle into the next batch.
    std::lock_guard<std::mutex> lock(mutex_);
    if (--active_ == 0 && remaining_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void WorkStealingPool::run(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  run(count, std::function<void(std::size_t, std::size_t)>(
                 [&fn](std::size_t item, std::size_t) { fn(item); }));
}

void WorkStealingPool::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OTIS_REQUIRE(job_ == nullptr, "WorkStealingPool: run() is not reentrant");
    // Contiguous blocks: worker w owns items [w*len, (w+1)*len). Early
    // cells land on low workers, which keeps the runner's ordered emit
    // buffer shallow.
    const std::size_t workers = queues_.size();
    const std::size_t base = count / workers;
    const std::size_t extra = count % workers;
    std::size_t next = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      for (std::size_t i = 0; i < len; ++i) {
        queues_[w]->items.push_back(next++);
      }
    }
    job_ = &fn;
    remaining_ = count;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0 && active_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace otis::core
