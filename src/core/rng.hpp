#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// Simulation experiments must be reproducible across runs and platforms,
/// so otisnet ships its own xoshiro256** generator (public-domain
/// algorithm by Blackman & Vigna) seeded through splitmix64 instead of
/// relying on implementation-defined std::default_random_engine behaviour.

#include <array>
#include <cstdint>
#include <vector>

namespace otis::core {

/// splitmix64 step; used for seeding and for hashing seeds into streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can
/// drive <random> distributions, but the helpers below avoid distribution
/// portability issues entirely.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Creates an independent stream for (seed, stream) pairs; used by the
  /// experiment runner to give each trial its own generator.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_real() noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Random permutation of {0, .., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// k distinct values sampled uniformly from {0, .., n-1} (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace otis::core
