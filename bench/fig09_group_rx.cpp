// Fig. 9 of the paper: interconnecting the outputs of 3 OPS couplers to
// a group of 5 processors with one OTIS(3,5) plus 3 beam-splitters.
// Regenerates the wiring and machine-checks the receive-side invariant:
// every splitter reaches all 5 processors, each on a distinct receiver,
// and each processor hears each splitter exactly once.

#include <iostream>

#include "core/table.hpp"
#include "designs/group_block.hpp"
#include "optics/netlist.hpp"
#include "optics/trace.hpp"

int main() {
  std::cout << "[Fig. 9] 3 beam-splitters -> group of 5 processors via "
               "OTIS(3,5)\n\n";
  otis::optics::Netlist netlist;
  otis::designs::GroupRxBlock block =
      otis::designs::build_group_rx(netlist, 3, 5, "grp");

  // Drive each splitter from a probe transmitter.
  std::vector<otis::optics::ComponentId> probe(3);
  for (std::int64_t r = 0; r < 3; ++r) {
    probe[static_cast<std::size_t>(r)] =
        netlist.add_transmitter("probe-split" + std::to_string(r));
    netlist.connect({probe[static_cast<std::size_t>(r)], 0},
                    {block.splitter[static_cast<std::size_t>(r)], 0});
  }

  otis::core::Table table({"splitter", "processors reached",
                           "receiver slots used"});
  bool ok = true;
  std::vector<std::vector<int>> heard(
      5, std::vector<int>(3, 0));  // [processor][splitter]
  for (std::int64_t r = 0; r < 3; ++r) {
    auto endpoints = otis::optics::trace_from_transmitter(
        netlist, probe[static_cast<std::size_t>(r)], {});
    ok = ok && endpoints.size() == 5;
    std::string procs;
    std::string slots;
    for (const auto& e : endpoints) {
      for (std::int64_t j = 0; j < 5; ++j) {
        for (std::int64_t q = 0; q < 3; ++q) {
          if (block.rx[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(q)] == e.receiver) {
            procs += (procs.empty() ? "" : ",") + std::to_string(j);
            slots += (slots.empty() ? "" : ",") + std::to_string(q);
            ++heard[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
          }
        }
      }
    }
    table.add(r, procs, slots);
  }
  table.print(std::cout);

  for (const auto& row : heard) {
    for (int count : row) {
      ok = ok && count == 1;
    }
  }
  std::cout << "\neach processor hears each splitter exactly once: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
