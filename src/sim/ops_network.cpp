#include "sim/ops_network.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "sim/async_engine.hpp"
#include "sim/phased_engine.hpp"

namespace otis::sim {

const char* arbitration_name(Arbitration policy) {
  switch (policy) {
    case Arbitration::kTokenRoundRobin:
      return "token";
    case Arbitration::kRandomWinner:
      return "random";
    case Arbitration::kSlottedAloha:
      return "aloha";
  }
  return "?";
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kEventQueue:
      return "event-queue";
    case Engine::kPhased:
      return "phased";
    case Engine::kSharded:
      return "sharded";
    case Engine::kAsync:
      return "async";
    case Engine::kAsyncSharded:
      return "async-sharded";
  }
  return "?";
}

const char* route_table_name(RouteTable table) {
  switch (table) {
    case RouteTable::kDense:
      return "dense";
    case RouteTable::kCompressed:
      return "compressed";
    case RouteTable::kAuto:
      return "auto";
  }
  return "?";
}

const char* latency_mode_name(LatencyMode mode) {
  switch (mode) {
    case LatencyMode::kFull:
      return "full";
    case LatencyMode::kSketch:
      return "sketch";
    case LatencyMode::kAuto:
      return "auto";
  }
  return "?";
}

void OpsNetworkSim::validate_config() const {
  OTIS_REQUIRE(config_.wavelengths >= 1,
               "OpsNetworkSim: wavelengths must be >= 1");
  OTIS_REQUIRE(config_.measure_slots > 0,
               "OpsNetworkSim: measure_slots must be > 0");
  OTIS_REQUIRE(config_.warmup_slots >= 0,
               "OpsNetworkSim: warmup_slots must be >= 0");
  OTIS_REQUIRE(config_.queue_capacity >= 0,
               "OpsNetworkSim: queue_capacity must be >= 0");
  config_.timing.validate();
  OTIS_REQUIRE(config_.engine == Engine::kAsync ||
                   config_.engine == Engine::kAsyncSharded ||
                   config_.timing.is_slot_aligned(),
               "OpsNetworkSim: timing delays require Engine::kAsync or "
               "Engine::kAsyncSharded (the slotted engines cannot honour "
               "sub-slot skew)");
  if (config_.workload != nullptr) {
    OTIS_REQUIRE(config_.engine != Engine::kEventQueue,
                 "OpsNetworkSim: workloads need delivery feedback, which "
                 "the tests-only event-queue fixture does not implement "
                 "(use phased/sharded/async)");
    OTIS_REQUIRE(config_.queue_capacity == 0,
                 "OpsNetworkSim: workloads require unbounded VOQs (a "
                 "dropped dependency would stall its dependents forever)");
    OTIS_REQUIRE(config_.workload->node_count() == network_.node_count(),
                 "OpsNetworkSim: workload built for another node count");
  }
  if (config_.recorder != nullptr) {
    OTIS_REQUIRE(config_.engine != Engine::kEventQueue,
                 "OpsNetworkSim: trace recording is implemented by the "
                 "phased/sharded/async engines only");
    OTIS_REQUIRE(config_.recorder->node_count() == network_.node_count(),
                 "OpsNetworkSim: recorder built for another node count");
  }
  OTIS_REQUIRE(config_.telemetry == nullptr ||
                   config_.engine != Engine::kEventQueue,
               "OpsNetworkSim: telemetry is implemented by the "
               "phased/sharded/async engines only");
  OTIS_REQUIRE(config_.checkpoint_every_slots >= 0,
               "OpsNetworkSim: checkpoint_every_slots must be >= 0");
  if (config_.checkpoint_every_slots > 0 || config_.checkpoint_resume ||
      config_.checkpoint_stop_at >= 0) {
    OTIS_REQUIRE(!config_.checkpoint_path.empty(),
                 "OpsNetworkSim: checkpointing requires checkpoint_path");
    OTIS_REQUIRE(config_.engine != Engine::kEventQueue,
                 "OpsNetworkSim: checkpointing is implemented by the "
                 "phased/sharded/async engines only");
    OTIS_REQUIRE(config_.workload == nullptr,
                 "OpsNetworkSim: checkpointing covers open-loop runs only "
                 "(workload completion state is not serialized)");
    OTIS_REQUIRE(config_.recorder == nullptr,
                 "OpsNetworkSim: checkpointing cannot restore a partially "
                 "written trace recording");
    OTIS_REQUIRE(config_.telemetry == nullptr ||
                     config_.telemetry->trace_sink() == nullptr,
                 "OpsNetworkSim: checkpointing excludes Chrome-trace spans "
                 "(wall-clock timestamps cannot be resumed); timeseries "
                 "sampling is supported");
  }
}

OpsNetworkSim::OpsNetworkSim(const hypergraph::StackGraph& network,
                             RoutingHooks routing,
                             std::unique_ptr<TrafficGenerator> traffic,
                             SimConfig config)
    : network_(network),
      routing_(std::move(routing)),
      traffic_(std::move(traffic)),
      config_(config),
      rng_(core::Rng::stream(config.seed, 0x0715)) {
  OTIS_REQUIRE(routing_.next_coupler && routing_.relay_on,
               "OpsNetworkSim: routing hooks must be set");
  OTIS_REQUIRE(traffic_ != nullptr, "OpsNetworkSim: traffic must be set");
  validate_config();
  if (config_.engine != Engine::kEventQueue) {
    if (resolve_route_table(config_.route_table, network_.node_count()) ==
        RouteTable::kCompressed) {
      try {
        compressed_routes_ =
            std::make_shared<const routing::CompressedRoutes>(
                routing::CompressedRoutes::compile(
                    network_, routing_.next_coupler, routing_.relay_on));
      } catch (const core::Error&) {
        // kAuto must never change which hook routers are accepted: a
        // router that is not group-factored simply keeps its dense
        // tables. An explicit kCompressed request still surfaces the
        // compile error.
        if (config_.route_table != RouteTable::kAuto) {
          throw;
        }
      }
    }
    if (compressed_routes_ == nullptr) {
      routes_ = std::make_shared<const routing::CompiledRoutes>(
          routing::CompiledRoutes::compile(network_, routing_.next_coupler,
                                           routing_.relay_on));
    }
  }
  coupler_success_.assign(
      static_cast<std::size_t>(network_.hypergraph().hyperarc_count()), 0);
}

OpsNetworkSim::OpsNetworkSim(
    const hypergraph::StackGraph& network,
    std::shared_ptr<const routing::CompiledRoutes> routes,
    std::unique_ptr<TrafficGenerator> traffic, SimConfig config)
    : network_(network),
      routes_(std::move(routes)),
      traffic_(std::move(traffic)),
      config_(config),
      rng_(core::Rng::stream(config.seed, 0x0715)) {
  OTIS_REQUIRE(routes_ != nullptr, "OpsNetworkSim: routes must be set");
  OTIS_REQUIRE(traffic_ != nullptr, "OpsNetworkSim: traffic must be set");
  OTIS_REQUIRE(routes_->node_count() == network_.node_count(),
               "OpsNetworkSim: routes were compiled for another network");
  validate_config();
  // The event-queue engine still routes through callbacks; serve them
  // from the baked tables.
  routing_.next_coupler = routes_->next_coupler_fn();
  routing_.relay_on = routes_->relay_fn();
  coupler_success_.assign(
      static_cast<std::size_t>(network_.hypergraph().hyperarc_count()), 0);
}

OpsNetworkSim::OpsNetworkSim(const hypergraph::StackGraph& network,
                             routing::CompiledRoutes routes,
                             std::unique_ptr<TrafficGenerator> traffic,
                             SimConfig config)
    : OpsNetworkSim(network,
                    std::make_shared<const routing::CompiledRoutes>(
                        std::move(routes)),
                    std::move(traffic), config) {}

OpsNetworkSim::OpsNetworkSim(
    const hypergraph::StackGraph& network,
    std::shared_ptr<const routing::CompressedRoutes> routes,
    std::unique_ptr<TrafficGenerator> traffic, SimConfig config)
    : network_(network),
      compressed_routes_(std::move(routes)),
      traffic_(std::move(traffic)),
      config_(config),
      rng_(core::Rng::stream(config.seed, 0x0715)) {
  OTIS_REQUIRE(compressed_routes_ != nullptr,
               "OpsNetworkSim: routes must be set");
  OTIS_REQUIRE(traffic_ != nullptr, "OpsNetworkSim: traffic must be set");
  OTIS_REQUIRE(compressed_routes_->node_count() == network_.node_count(),
               "OpsNetworkSim: routes were compiled for another network");
  validate_config();
  routing_.next_coupler = compressed_routes_->next_coupler_fn();
  routing_.relay_on = compressed_routes_->relay_fn();
  coupler_success_.assign(
      static_cast<std::size_t>(network_.hypergraph().hyperarc_count()), 0);
}

OpsNetworkSim::OpsNetworkSim(const hypergraph::StackGraph& network,
                             routing::CompressedRoutes routes,
                             std::unique_ptr<TrafficGenerator> traffic,
                             SimConfig config)
    : OpsNetworkSim(network,
                    std::make_shared<const routing::CompressedRoutes>(
                        std::move(routes)),
                    std::move(traffic), config) {}

// NOTE: the event-queue engine below is deliberately kept as the seed
// wrote it -- std::find scans, per-coupler scratch allocation, routing
// callbacks per hop. It is the reference implementation the phased
// engines are bit-compared against, and the baseline the slots/sec
// benchmarks measure their speedup from. Do not "optimize" it; speed
// work belongs in phased_engine.cpp. (Sole exception, per the
// arbitration.hpp contract: the token round-robin cursor below wraps
// on compare instead of taking a per-step remainder, mirroring the
// mask arbitration; it visits the identical position sequence.)
void OpsNetworkSim::enqueue(Packet packet, hypergraph::Node at) {
  const auto& hg = network_.hypergraph();
  const hypergraph::HyperarcId coupler =
      routing_.next_coupler(at, packet.destination);
  const auto& outs = hg.out_hyperarcs(at);
  auto it = std::find(outs.begin(), outs.end(), coupler);
  OTIS_REQUIRE(it != outs.end(),
               "OpsNetworkSim: router chose a coupler the node cannot feed");
  const std::size_t slot_index =
      static_cast<std::size_t>(it - outs.begin());
  auto& queue = voq_[static_cast<std::size_t>(at)][slot_index];
  if (config_.queue_capacity > 0 &&
      static_cast<std::int64_t>(queue.size()) >= config_.queue_capacity) {
    if (measuring_) {
      ++metrics_.dropped_packets;
    }
    --inflight_;
    return;
  }
  queue.push_back(std::move(packet));
}

void OpsNetworkSim::slot() {
  const auto& hg = network_.hypergraph();
  const SimTime now = queue_.now();

  // Phase 1: traffic generation (skipped while draining).
  const bool generating =
      now < config_.warmup_slots + config_.measure_slots;
  if (generating) {
    for (hypergraph::Node v = 0; v < hg.node_count(); ++v) {
      TrafficDemand demand = traffic_->demand(v, rng_);
      if (!demand.has_packet || demand.destination == v) {
        continue;
      }
      if (measuring_) {
        ++metrics_.offered_packets;
      }
      ++inflight_;
      enqueue(Packet{next_packet_id_++, v, demand.destination, now, 0}, v);
    }
  }

  // Phase 2: per-coupler arbitration over the head packets of the VOQs
  // feeding it. Winners are collected first and forwarded afterwards so a
  // packet advances at most one hop per slot.
  struct Delivery {
    Packet packet;
    hypergraph::HyperarcId coupler;
  };
  std::vector<Delivery> deliveries;
  for (hypergraph::HyperarcId h = 0; h < hg.hyperarc_count(); ++h) {
    const auto& sources = hg.hyperarc(h).sources;
    // Contenders: indices into `sources` whose VOQ toward h is non-empty.
    std::vector<std::size_t> contenders;
    for (std::size_t si = 0; si < sources.size(); ++si) {
      const hypergraph::Node node = sources[si];
      const auto& outs = hg.out_hyperarcs(node);
      const std::size_t slot_index = static_cast<std::size_t>(
          std::find(outs.begin(), outs.end(), h) - outs.begin());
      if (!voq_[static_cast<std::size_t>(node)][slot_index].empty()) {
        contenders.push_back(si);
      }
    }
    if (contenders.empty()) {
      continue;
    }
    // Up to `wavelengths` contenders succeed per coupler-slot (the paper's
    // single-wavelength couplers are W = 1).
    const std::size_t capacity =
        static_cast<std::size_t>(config_.wavelengths);
    std::vector<std::size_t> winners;
    switch (config_.arbitration) {
      case Arbitration::kTokenRoundRobin: {
        // Scan sources starting at the token cursor; the first W
        // contenders win and the token moves just past the last winner.
        std::size_t si =
            static_cast<std::size_t>(token_[static_cast<std::size_t>(h)]);
        for (std::size_t step = 0;
             step < sources.size() && winners.size() < capacity; ++step) {
          if (std::find(contenders.begin(), contenders.end(), si) !=
              contenders.end()) {
            winners.push_back(si);
            token_[static_cast<std::size_t>(h)] =
                si + 1 == sources.size() ? 0
                                         : static_cast<std::int64_t>(si + 1);
          }
          ++si;
          if (si == sources.size()) {
            si = 0;
          }
        }
        break;
      }
      case Arbitration::kRandomWinner: {
        // Partial Fisher-Yates over the contender list.
        for (std::size_t i = 0;
             i < contenders.size() && winners.size() < capacity; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.uniform(contenders.size() -
                                                        i));
          std::swap(contenders[i], contenders[j]);
          winners.push_back(contenders[i]);
        }
        break;
      }
      case Arbitration::kSlottedAloha: {
        // Every contender independently transmits with probability 1/2;
        // at most W simultaneous transmitters succeed, more collide.
        std::vector<std::size_t> transmitting;
        for (std::size_t si : contenders) {
          if (rng_.bernoulli(0.5)) {
            transmitting.push_back(si);
          }
        }
        if (!transmitting.empty() && transmitting.size() <= capacity) {
          winners = std::move(transmitting);
        } else if (transmitting.size() > capacity && measuring_) {
          ++metrics_.collisions;
        }
        break;
      }
    }
    for (std::size_t winner_si : winners) {
      const hypergraph::Node winner = sources[winner_si];
      const auto& outs = hg.out_hyperarcs(winner);
      const std::size_t slot_index = static_cast<std::size_t>(
          std::find(outs.begin(), outs.end(), h) - outs.begin());
      auto& queue = voq_[static_cast<std::size_t>(winner)][slot_index];
      Packet packet = std::move(queue.front());
      queue.pop_front();
      ++packet.hops;
      if (measuring_) {
        ++metrics_.coupler_transmissions;
        ++coupler_success_[static_cast<std::size_t>(h)];
      }
      deliveries.push_back(Delivery{std::move(packet), h});
    }
  }

  // Phase 3: receivers pick winners off their couplers.
  for (Delivery& d : deliveries) {
    const hypergraph::Node relay =
        routing_.relay_on(d.coupler, d.packet.destination);
    if (relay == d.packet.destination) {
      if (measuring_) {
        ++metrics_.delivered_packets;
        if (d.packet.created >= config_.warmup_slots) {
          metrics_.latency.record(now - d.packet.created + 1);
        }
      }
      --inflight_;
    } else {
      enqueue(std::move(d.packet), relay);
    }
  }

  // Schedule the next slot while work remains.
  const bool more_traffic = now + 1 < config_.warmup_slots +
                                          config_.measure_slots;
  const bool keep_draining = config_.drain && inflight_ > 0;
  if (more_traffic || keep_draining) {
    queue_.schedule_in(1, [this] { slot(); });
  }
}

RunMetrics OpsNetworkSim::run_event_queue() {
  // VOQs and tokens are this engine's private state; the phased engines
  // keep their own flat ring buffers, so allocate only when actually
  // running on the event queue.
  const auto& hg = network_.hypergraph();
  voq_.resize(static_cast<std::size_t>(hg.node_count()));
  for (hypergraph::Node v = 0; v < hg.node_count(); ++v) {
    voq_[static_cast<std::size_t>(v)].resize(hg.out_hyperarcs(v).size());
  }
  token_.assign(static_cast<std::size_t>(hg.hyperarc_count()), 0);
  metrics_ = RunMetrics{};
  metrics_.slots = config_.measure_slots;
  queue_.schedule_at(0, [this] { slot(); });
  // Warmup window: run without recording.
  measuring_ = false;
  queue_.run_until(config_.warmup_slots - 1);
  measuring_ = true;
  queue_.run_until(config_.warmup_slots + config_.measure_slots - 1);
  measuring_ = false;
  if (config_.drain) {
    // Generous bound: every in-flight packet can always progress under
    // token/random arbitration; aloha needs slack.
    queue_.run_until(config_.warmup_slots + config_.measure_slots +
                     1'000'000);
  }
  metrics_.backlog = inflight_;
  return metrics_;
}

void OpsNetworkSim::set_timing_model(
    std::shared_ptr<const TimingModel> timing) {
  OTIS_REQUIRE(timing != nullptr, "OpsNetworkSim: timing must be set");
  // Same refuse-don't-ignore contract as SimConfig::timing: a model
  // injected under a slotted engine would be silently dropped.
  OTIS_REQUIRE(config_.engine == Engine::kAsync ||
                   config_.engine == Engine::kAsyncSharded,
               "OpsNetworkSim: timing models require Engine::kAsync or "
               "Engine::kAsyncSharded");
  OTIS_REQUIRE(timing->coupler_count() ==
                   network_.hypergraph().hyperarc_count(),
               "OpsNetworkSim: timing model sized for another network");
  timing_model_ = std::move(timing);
}

RunMetrics OpsNetworkSim::run() {
  if (config_.engine == Engine::kEventQueue) {
    return run_event_queue();
  }
  // One span covering the whole engine run; the engines nest their
  // warmup/measure/drain window spans inside it on the same track.
  obs::Span run_span;
  if (config_.telemetry != nullptr &&
      config_.telemetry->trace_sink() != nullptr) {
    run_span = obs::Span(
        config_.telemetry->trace_sink(), config_.telemetry->tid(), "sim.run",
        "engine",
        {{"engine", engine_name(config_.engine)},
         {"arbitration", arbitration_name(config_.arbitration)},
         {"nodes", std::to_string(network_.node_count())},
         {"couplers",
          std::to_string(network_.hypergraph().hyperarc_count())}});
  }
  if (config_.engine == Engine::kAsync ||
      config_.engine == Engine::kAsyncSharded) {
    std::shared_ptr<const TimingModel> timing = timing_model_;
    if (timing == nullptr) {
      timing = std::make_shared<const TimingModel>(
          TimingModel::compile(network_, config_.timing));
    }
    if (compressed_routes_ != nullptr) {
      AsyncEngineT<routing::CompressedRoutes> engine(
          network_, *compressed_routes_, *traffic_, config_, *timing);
      metrics_ = engine.run(coupler_success_);
    } else {
      AsyncEngineT<routing::CompiledRoutes> engine(network_, *routes_,
                                                   *traffic_, config_,
                                                   *timing);
      metrics_ = engine.run(coupler_success_);
    }
    return metrics_;
  }
  if (compressed_routes_ != nullptr) {
    PhasedEngineT<routing::CompressedRoutes> engine(
        network_, *compressed_routes_, *traffic_, config_);
    metrics_ = engine.run(coupler_success_);
  } else {
    PhasedEngineT<routing::CompiledRoutes> engine(network_, *routes_,
                                                  *traffic_, config_);
    metrics_ = engine.run(coupler_success_);
  }
  return metrics_;
}

}  // namespace otis::sim
