#include "sim/phased_engine.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "sim/arbitration.hpp"
#include "sim/checkpoint.hpp"

namespace otis::sim {
namespace {

/// Legacy per-run stream tag (must match the event-queue engine).
constexpr std::uint64_t kRunStream = 0x0715;
/// Sharded/workload per-unit streams and the closed-loop slot bound
/// are shared with the async engine (ops_network.hpp detail) so
/// workload runs agree across engines.
using detail::coupler_streams;
using detail::node_streams;
using detail::workload_slot_bound;

/// Ceiling-free contiguous partition of [0, count) into `parts` ranges.
std::pair<std::int64_t, std::int64_t> partition(std::int64_t count, int part,
                                                int parts) {
  const std::int64_t lo = count * part / parts;
  const std::int64_t hi = count * (part + 1) / parts;
  return {lo, hi};
}

/// How far ahead the phase-3 delivery walks prefetch relay entries.
/// Deliveries for one coupler land on scattered relay-table rows, so a
/// short look-ahead hides the load latency without thrashing the
/// prefetch queue.
constexpr std::size_t kRelayPrefetchAhead = 8;

/// Widest request mask of any coupler, in words (per-shard scratch size).
std::size_t max_mask_words(const detail::FeedIndex& fi) {
  std::size_t widest = 1;
  for (std::size_t h = 0; h < fi.coupler_count(); ++h) {
    widest = std::max(widest, static_cast<std::size_t>(fi.mask_base[h + 1] -
                                                       fi.mask_base[h]));
  }
  return widest;
}

}  // namespace

template <routing::RouteView Routes>
PhasedEngineT<Routes>::PhasedEngineT(const hypergraph::StackGraph& network,
                                     const Routes& routes,
                                     TrafficGenerator& traffic,
                                     const SimConfig& config)
    : network_(network),
      routes_(routes),
      traffic_(traffic),
      config_(config) {
  const auto& hg = network_.hypergraph();
  nodes_ = hg.node_count();
  couplers_ = hg.hyperarc_count();
  voq_base_.resize(static_cast<std::size_t>(nodes_) + 1);
  voq_base_[0] = 0;
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    voq_base_[static_cast<std::size_t>(v) + 1] =
        voq_base_[static_cast<std::size_t>(v)] + hg.out_degree(v);
  }
  feed_.build(hg, voq_base_);
  token_.assign(static_cast<std::size_t>(couplers_), 0);
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run(
    std::vector<std::int64_t>& coupler_success) {
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  if (config_.workload != nullptr) {
    return config_.engine == Engine::kSharded
               ? run_workload_sharded(coupler_success)
               : run_workload_serial(coupler_success);
  }
  if (config_.engine == Engine::kSharded) {
    return run_sharded(coupler_success);
  }
  return run_serial(coupler_success);
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_serial(
    std::vector<std::int64_t>& coupler_success) {
  core::Rng rng = core::Rng::stream(config_.seed, kRunStream);
  RunMetrics metrics;
  metrics.slots = config_.measure_slots;
  if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
    metrics.latency.use_sketch();
  }
  metrics.latency.reserve(
      std::min(config_.measure_slots * nodes_, kLatencyReserveCap));

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  std::int64_t inflight = 0;
  std::int64_t next_packet_id = 0;

  VoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  // Hoisted scratch: one allocation per run, not per coupler-slot.
  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  /// Transmissions whose receiver relays them onward. Packets that
  /// reached their destination are counted inline during arbitration
  /// (metric updates cannot disturb same-slot winner selection); only
  /// relays defer to phase 3, because their enqueues would make queues
  /// non-empty for couplers arbitrated later in the same slot.
  struct Relay {
    VoqEntry entry;
    hypergraph::Node node;
  };
  std::vector<Relay> relays;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const std::int64_t queue_cap = config_.queue_capacity;
  const Arbitration policy = config_.arbitration;
  const bool single_token =
      policy == Arbitration::kTokenRoundRobin && capacity == 1;
  PhaseBreakdown* breakdown = config_.phase_breakdown;
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0, t1, t2;

  // Telemetry: one pointer test per slot when detached; sampling work
  // only at tel->due() boundaries. State reads only -- never RNG.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(),
                               config_.warmup_slots, horizon);
  }
  const auto fill_probes = [&](const VoqArena& arena) {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, arena, 0, couplers_);
  };

  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                           bool measuring) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    if (queue_cap > 0 && static_cast<std::int64_t>(size) >= queue_cap) {
      if (measuring) {
        ++metrics.dropped_packets;
      }
      --inflight;
      return;
    }
    voq.push(qi, entry);
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  // Checkpointing (sim/checkpoint.hpp). A blob written at the top of
  // slot S is "everything needed to run slots S.. onward": the resumed
  // run replays the identical remainder, so restored results are
  // bit-identical to an uninterrupted run's. Saves only happen at the
  // top of a slot the run is definitely going to execute, so a resume
  // never runs a slot the uninterrupted run skipped.
  const std::int64_t ckpt_every = config_.checkpoint_every_slots;
  const auto save_checkpoint = [&](SimTime next_slot) {
    core::BlobWriter out;
    checkpoint_write_header(out, config_, nodes_, couplers_);
    out.put_i64(next_slot);
    out.put_i64(inflight);
    out.put_i64(next_packet_id);
    out.put_rng(rng);
    out.put_i64_vec(token_);
    checkpoint_put_metrics(out, metrics);
    out.put_i64_vec(coupler_success);
    checkpoint_put_voq(out, voq);
    std::vector<std::int64_t> traffic_state;
    traffic_.checkpoint_state(traffic_state);
    out.put_i64_vec(traffic_state);
    checkpoint_put_telemetry(out, tel, tel_last);
    checkpoint_store(config_.checkpoint_path, out);
  };
  SimTime start_slot = 0;
  if (config_.checkpoint_resume) {
    std::vector<std::uint8_t> blob;
    if (checkpoint_load(config_.checkpoint_path, config_, nodes_, couplers_,
                        blob)) {
      core::BlobReader in(blob);
      (void)checkpoint_read_header(in, config_, nodes_, couplers_);
      start_slot = in.get_i64();
      inflight = in.get_i64();
      next_packet_id = in.get_i64();
      rng = in.get_rng();
      token_ = in.get_i64_vec();
      checkpoint_get_metrics(in, metrics);
      coupler_success = in.get_i64_vec();
      checkpoint_get_voq(in, voq);
      traffic_.restore_state(in.get_i64_vec());
      tel_last = checkpoint_get_telemetry(in, tel);
      for (std::size_t qi = 0; qi < voq.queue_count(); ++qi) {
        if (!voq.empty(qi)) {
          masks.mark_nonempty(feed_, qi);
        }
      }
    }
  }

  for (SimTime now = start_slot;;) {
    if (ckpt_every > 0 && now != start_slot && now % ckpt_every == 0) {
      save_checkpoint(now);
      if (config_.checkpoint_stop_at >= 0 &&
          now >= config_.checkpoint_stop_at) {
        // Drill hook: pretend the process died right after the write.
        // No telemetry finish() -- the resumed run continues the stream.
        metrics.backlog = inflight;
        metrics.interrupted = true;
        return metrics;
      }
    }
    const bool measuring = now >= config_.warmup_slots && now < horizon;
    if (breakdown != nullptr) {
      t0 = Clock::now();
    }

    // Phase 1: traffic generation (stops at the horizon; drain only).
    // The compact batch hands back just the ~load*N senders, so the
    // enqueue loop runs over actual packets with no idle-node branch.
    if (now < horizon) {
      const std::size_t sender_count =
          traffic_.demand_batch_senders(0, nodes_, rng, senders.data());
      if (measuring) {
        metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      }
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{next_packet_id++, d.destination, now, 0}, d.source,
                measuring);
      }
    }
    if (breakdown != nullptr) {
      t1 = Clock::now();
    }

    // Phase 2: arbitration over the couplers with any non-empty feed,
    // found by scanning the occupancy summary bitmap. Final deliveries
    // complete inline; relays defer (see `relays`).
    relays.clear();
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const auto transmit = [&](std::size_t si) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          VoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          ++entry.hops;
          if (measuring) {
            ++metrics.coupler_transmissions;
            ++coupler_success[h];
          }
          const hypergraph::Node relay = routes_.relay(
              static_cast<hypergraph::HyperarcId>(h), entry.destination);
          if (relay == entry.destination) {
            if (measuring) {
              ++metrics.delivered_packets;
              if (entry.created >= config_.warmup_slots) {
                metrics.latency.record(now - entry.created + 1);
              }
            }
            --inflight;
          } else {
            relays.push_back(Relay{entry, relay});
          }
        };
        if (single_token) {
          transmit(detail::pick_single_token(
              source_count, masks.request.data() + mb, words, token_[h]));
          continue;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, masks.request.data() + mb, words,
            token_[h], rng, winners, scratch);
        if (collided && measuring) {
          ++metrics.collisions;
        }
        if (winners.size() > 1) {
          // Warm the relay entries for the whole winner batch before the
          // delivery walk: on dense tables consecutive winners' entries
          // share no cache line, so each lookup is otherwise a cold miss.
          for (std::size_t si : winners) {
            const std::size_t qi =
                static_cast<std::size_t>(feed_.feed_qi[fb + si]);
            routes_.prefetch_relay(static_cast<hypergraph::HyperarcId>(h),
                                   voq.front(qi).destination);
          }
        }
        for (std::size_t si : winners) {
          transmit(si);
        }
      }
    }
    if (breakdown != nullptr) {
      t2 = Clock::now();
    }

    // Phase 3: relayed packets re-queue at their next hop.
    for (const Relay& r : relays) {
      enqueue(r.entry, r.node, measuring);
    }
    if (breakdown != nullptr) {
      const Clock::time_point t3 = Clock::now();
      breakdown->generate_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
      breakdown->arbitrate_seconds +=
          std::chrono::duration<double>(t2 - t1).count();
      breakdown->receive_seconds +=
          std::chrono::duration<double>(t3 - t2).count();
      ++breakdown->slots;
    }

    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes(voq);
        tel->sample(now);
      }
      tel_last = now;
    }

    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      break;
    }
    ++now;
    if (now > drain_bound) {
      break;
    }
  }

  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes(voq);
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_sharded(
    std::vector<std::int64_t>& coupler_success) {
  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }
  threads = static_cast<int>(std::min<std::int64_t>(
      threads, std::max<std::int64_t>(1, std::max(nodes_, couplers_))));

  // Per-unit RNG streams: the partition can never influence the draw.
  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  /// Deliveries of the current slot, per coupler, in winner order; hop
  /// counter already bumped. Written by the coupler's owner in phase 2,
  /// read by every worker in phase 3.
  std::vector<std::vector<VoqEntry>> deliveries(
      static_cast<std::size_t>(couplers_));
  /// Compact senders of the current slot; disjoint slices per shard
  /// (shard w writes at its node_begin offset).
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));

  VoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()),
           static_cast<std::size_t>(threads));
  const std::size_t req_words = max_mask_words(feed_);

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t coupler_begin = 0, coupler_end = 0;
    std::int64_t offered = 0, delivered = 0, dropped = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;
    LatencyStats latency;
    std::vector<std::size_t> winners, scratch;
    std::vector<std::uint64_t> request;  ///< local per-coupler rebuild
  };
  const bool latency_sketch =
      resolve_latency_sketch(config_.latency_mode, nodes_);
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    auto [nb, ne] = partition(nodes_, w, threads);
    auto [cb, ce] = partition(couplers_, w, threads);
    Shard& shard = shards[static_cast<std::size_t>(w)];
    shard.node_begin = nb;
    shard.node_end = ne;
    shard.coupler_begin = cb;
    shard.coupler_end = ce;
    shard.request.assign(req_words, 0);
    if (latency_sketch) {
      shard.latency.use_sketch();
    }
    shard.latency.reserve(
        std::min(config_.measure_slots * (ne - nb), kLatencyReserveCap));
    // Every queue of the shard's nodes pushes from this shard only (its
    // own phase-1/3 enqueues), so growth stays inside the shard's pool.
    for (std::int64_t qi = voq_base_[static_cast<std::size_t>(nb)];
         qi < voq_base_[static_cast<std::size_t>(ne)]; ++qi) {
      voq.set_pool(static_cast<std::size_t>(qi),
                   static_cast<std::uint32_t>(w));
    }
  }

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const std::int64_t queue_cap = config_.queue_capacity;
  const Arbitration policy = config_.arbitration;

  // Telemetry: per-shard probe frames, folded with order-independent
  // integer adds in the slot barrier's completion step -- the merged
  // values are sums over ALL nodes/couplers, so they cannot depend on
  // the partition (= thread count).
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  std::vector<obs::ProbeRegistry> frames;
  if (tel != nullptr) {
    if (tel->trace_sink() != nullptr) {
      windows = obs::WindowSpans(tel->trace_sink(), tel->tid(),
                                 config_.warmup_slots, horizon);
    }
    frames.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      frames.push_back(tel->probes().clone_schema());
    }
  }

  // Runtime channel (obs/runtime_stats.hpp): wall-clock barrier/work
  // accounting, one private slot per shard. The flag is captured once,
  // so an attached-but-disabled session never reaches the loop.
  obs::RuntimeStats* const rts = config_.runtime_stats.get();
  const bool rt_on = rts != nullptr && rts->active();
  std::vector<obs::ShardRuntime> rt_shards(
      rt_on ? static_cast<std::size_t>(threads) : 0);

  // Slot state shared across workers; mutated only by the slot barrier's
  // completion step, which runs while every worker is blocked.
  SimTime now = 0;
  std::int64_t inflight = 0;
  bool running = true;
  bool interrupted = false;  ///< checkpoint_stop_at drill fired

  // Checkpointing. The blob holds the fold of the per-shard counters and
  // the per-unit RNG streams, never the partition itself, so it is
  // thread-count independent: a run checkpointed with 2 workers resumes
  // bit-identically with 8 (the engine's usual invariance). Saves happen
  // in the completion step -- every worker is blocked, so the shared
  // state is quiescent.
  const std::int64_t ckpt_every = config_.checkpoint_every_slots;
  SimTime start_slot = 0;
  std::exception_ptr ckpt_error;  ///< completion step is noexcept
  const auto save_checkpoint = [&](SimTime next_slot) {
    core::BlobWriter out;
    checkpoint_write_header(out, config_, nodes_, couplers_);
    out.put_i64(next_slot);
    out.put_i64(inflight);
    for (const core::Rng& r : gen_rng) {
      out.put_rng(r);
    }
    for (const core::Rng& r : arb_rng) {
      out.put_rng(r);
    }
    out.put_i64_vec(token_);
    std::int64_t offered = 0, delivered = 0, dropped = 0;
    std::int64_t transmissions = 0, collisions = 0;
    LatencyStats latency;
    for (const Shard& shard : shards) {
      offered += shard.offered;
      delivered += shard.delivered;
      dropped += shard.dropped;
      transmissions += shard.transmissions;
      collisions += shard.collisions;
      latency.merge(shard.latency);
    }
    out.put_i64(offered);
    out.put_i64(delivered);
    out.put_i64(dropped);
    out.put_i64(transmissions);
    out.put_i64(collisions);
    latency.serialize(out);
    out.put_i64_vec(coupler_success);
    checkpoint_put_voq(out, voq);
    std::vector<std::int64_t> traffic_state;
    traffic_.checkpoint_state(traffic_state);
    out.put_i64_vec(traffic_state);
    checkpoint_put_telemetry(out, tel, tel_last);
    checkpoint_store(config_.checkpoint_path, out);
  };
  if (config_.checkpoint_resume) {
    std::vector<std::uint8_t> blob;
    if (checkpoint_load(config_.checkpoint_path, config_, nodes_, couplers_,
                        blob)) {
      core::BlobReader in(blob);
      (void)checkpoint_read_header(in, config_, nodes_, couplers_);
      start_slot = in.get_i64();
      now = start_slot;
      inflight = in.get_i64();
      for (core::Rng& r : gen_rng) {
        r = in.get_rng();
      }
      for (core::Rng& r : arb_rng) {
        r = in.get_rng();
      }
      token_ = in.get_i64_vec();
      // The folded counters land in shard 0; the final fold is an
      // order-independent sum/merge, so the split is irrelevant.
      Shard& s0 = shards[0];
      s0.offered = in.get_i64();
      s0.delivered = in.get_i64();
      s0.dropped = in.get_i64();
      s0.transmissions = in.get_i64();
      s0.collisions = in.get_i64();
      s0.latency.deserialize(in);
      coupler_success = in.get_i64_vec();
      checkpoint_get_voq(in, voq);
      traffic_.restore_state(in.get_i64_vec());
      tel_last = checkpoint_get_telemetry(in, tel);
    }
  }

  const auto on_slot_end = [&]() noexcept {
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
    }
    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        obs::ProbeRegistry& reg = tel->probes();
        reg.zero();
        for (const obs::ProbeRegistry& frame : frames) {
          reg.accumulate(frame);
        }
        // Backlog is global state only the completion step knows.
        reg.set(tel->engine_probes().backlog, inflight);
        tel->sample(now);
      }
      tel_last = now;
    }
    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      running = false;
      return;
    }
    ++now;
    if (now > drain_bound) {
      running = false;
      return;
    }
    // The run is definitely continuing into slot `now`: boundary save
    // (same "blob = state at the top of a slot that will execute"
    // contract as the serial loop).
    if (ckpt_every > 0 && now % ckpt_every == 0) {
      try {
        save_checkpoint(now);
        if (config_.checkpoint_stop_at >= 0 &&
            now >= config_.checkpoint_stop_at) {
          interrupted = true;
          running = false;
        }
      } catch (...) {
        ckpt_error = std::current_exception();
        running = false;
      }
    }
  };
  std::barrier<> phase_barrier(threads);
  std::barrier<decltype(on_slot_end)> slot_barrier(threads, on_slot_end);

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    obs::ShardRuntime* const rt =
        rt_on ? &rt_shards[static_cast<std::size_t>(w)] : nullptr;
    const auto timed_wait = [&](auto& barrier) {
      if (rt == nullptr) {
        barrier.arrive_and_wait();
        return;
      }
      const std::int64_t t0 = obs::runtime_now_ns();
      barrier.arrive_and_wait();
      rt->barrier_wait_ns += obs::runtime_now_ns() - t0;
    };
    const std::int64_t loop_start = rt_on ? obs::runtime_now_ns() : 0;
    const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                             bool measuring) {
      const std::int32_t slot = routes_.next_slot(at, entry.destination);
      const std::size_t qi = static_cast<std::size_t>(
          voq_base_[static_cast<std::size_t>(at)] + slot);
      if (queue_cap > 0 &&
          static_cast<std::int64_t>(voq.size(qi)) >= queue_cap) {
        if (measuring) {
          ++shard.dropped;
        }
        --shard.inflight_delta;
        return;
      }
      voq.push(qi, entry);
    };

    while (true) {
      const bool measuring = now >= config_.warmup_slots && now < horizon;

      // Phase 1: generation over the shard's nodes (compact batch into
      // the shard's slice of `senders`).
      if (now < horizon) {
        const std::size_t sender_count = traffic_.demand_batch_senders_streams(
            shard.node_begin, shard.node_end, gen_rng.data(),
            senders.data() + shard.node_begin);
        if (measuring) {
          shard.offered += static_cast<std::int64_t>(sender_count);
        }
        shard.inflight_delta += static_cast<std::int64_t>(sender_count);
        for (std::size_t i = 0; i < sender_count; ++i) {
          const SenderDemand d =
              senders[static_cast<std::size_t>(shard.node_begin) + i];
          if (config_.recorder != nullptr) {
            config_.recorder->record(now, d.source, d.destination);
          }
          // Deterministic id without a shared counter.
          enqueue(VoqEntry{now * nodes_ + d.source, d.destination, now, 0},
                  d.source, measuring);
        }
      }
      timed_wait(phase_barrier);

      // Phase 2: arbitration over the shard's couplers. The request
      // words are rebuilt locally from the arena (no shared masks, no
      // atomics); a word build is a dense len_ scan per feed position.
      for (hypergraph::HyperarcId h = shard.coupler_begin;
           h < shard.coupler_end; ++h) {
        auto& out = deliveries[static_cast<std::size_t>(h)];
        out.clear();
        const std::size_t fb =
            static_cast<std::size_t>(feed_.feed_base[static_cast<std::size_t>(h)]);
        const std::size_t source_count =
            static_cast<std::size_t>(
                feed_.feed_base[static_cast<std::size_t>(h) + 1]) -
            fb;
        const std::size_t words = (source_count + 63) / 64;
        std::uint64_t any = 0;
        for (std::size_t wi = 0; wi < words; ++wi) {
          shard.request[wi] = 0;
        }
        for (std::size_t si = 0; si < source_count; ++si) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          if (!voq.empty(qi)) {
            shard.request[si >> 6] |= std::uint64_t{1} << (si & 63);
          }
        }
        for (std::size_t wi = 0; wi < words; ++wi) {
          any |= shard.request[wi];
        }
        if (any == 0) {
          continue;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, shard.request.data(), words,
            token_[static_cast<std::size_t>(h)],
            arb_rng[static_cast<std::size_t>(h)], shard.winners,
            shard.scratch);
        if (collided && measuring) {
          ++shard.collisions;
        }
        for (std::size_t si : shard.winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          VoqEntry entry = voq.pop_front(qi);
          ++entry.hops;
          if (measuring) {
            ++shard.transmissions;
            ++coupler_success[static_cast<std::size_t>(h)];
          }
          out.push_back(entry);
        }
      }
      timed_wait(phase_barrier);

      // Phase 3: every worker scans all deliveries in coupler order and
      // consumes the ones whose relay it owns, so the push order at each
      // node is canonical regardless of the partition.
      for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
        const auto& list = deliveries[static_cast<std::size_t>(h)];
        for (std::size_t di = 0; di < list.size(); ++di) {
          if (di + kRelayPrefetchAhead < list.size()) {
            routes_.prefetch_relay(
                h, list[di + kRelayPrefetchAhead].destination);
          }
          const VoqEntry& entry = list[di];
          const hypergraph::Node relay = routes_.relay(h, entry.destination);
          if (relay < shard.node_begin || relay >= shard.node_end) {
            continue;
          }
          if (relay == entry.destination) {
            if (measuring) {
              ++shard.delivered;
              if (entry.created >= config_.warmup_slots) {
                shard.latency.record(now - entry.created + 1);
              }
            }
            --shard.inflight_delta;
          } else {
            enqueue(entry, relay, measuring);
          }
        }
      }
      if (tel != nullptr && tel->due(now)) {
        // Sampling boundary: one extra barrier makes every shard's
        // phase-3 pushes visible, then each worker snapshots its own
        // counters and coupler range into its private frame. All
        // workers agree on due(now) -- `now` is slot-barrier state.
        timed_wait(phase_barrier);
        obs::ProbeRegistry& frame = frames[static_cast<std::size_t>(w)];
        const obs::EngineProbes& ids = tel->engine_probes();
        frame.zero();
        frame.set(ids.offered, shard.offered);
        frame.set(ids.delivered, shard.delivered);
        frame.set(ids.transmissions, shard.transmissions);
        frame.set(ids.collisions, shard.collisions);
        frame.set(ids.dropped, shard.dropped);
        detail::observe_occupancy(frame, ids.occupancy, feed_, voq,
                                  shard.coupler_begin, shard.coupler_end);
      }
      if (rt != nullptr) {
        // Slot engines have a fixed one-slot "window".
        ++rt->windows;
        ++rt->lookahead_used;
        ++rt->lookahead_available;
      }
      timed_wait(slot_barrier);
      if (!running) {
        break;
      }
    }
    if (rt != nullptr) {
      rt->work_ns +=
          obs::runtime_now_ns() - loop_start - rt->barrier_wait_ns;
    }
  };

  const std::int64_t run_start = rt_on ? obs::runtime_now_ns() : 0;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (rt_on) {
    rts->record_shards("phased_sharded", "open_loop",
                       obs::runtime_now_ns() - run_start, rt_shards);
  }

  if (ckpt_error != nullptr) {
    std::rethrow_exception(ckpt_error);
  }

  RunMetrics metrics;
  metrics.slots = config_.measure_slots;
  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.dropped_packets += shard.dropped;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
  }
  metrics.backlog = inflight;
  metrics.interrupted = interrupted;
  // Drill interruptions skip finish(): the process "died", and the
  // resumed run continues the telemetry stream where this one stopped.
  if (tel != nullptr && !interrupted) {
    windows.finish();
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_workload_serial(
    std::vector<std::int64_t>& coupler_success) {
  workload::Workload& load = *config_.workload;
  load.reset();

  // Workload contract: per-node generation streams and per-coupler
  // arbitration streams on EVERY engine, so the run is one universe
  // across phased/sharded/async (see ops_network.hpp detail tags).
  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  const SimTime bound = workload_slot_bound(load);
  std::int64_t inflight = 0;
  bool load_done = false;  ///< as of the end of the previous slot

  VoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  struct Delivery {
    VoqEntry entry;
    hypergraph::HyperarcId coupler;
  };
  std::vector<Delivery> deliveries;
  std::vector<workload::WorkloadPacket> inject;
  std::vector<std::int64_t> delivered_ids;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const Arbitration policy = config_.arbitration;
  if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
    metrics.latency.use_sketch();
  }
  metrics.latency.reserve(std::min(background_base, kLatencyReserveCap));

  // Telemetry mirrors run_serial: one pointer test per slot when
  // detached; closed-loop runs have no warmup, so the whole run is one
  // "measure" window.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(), 0, bound + 1);
  }
  const auto fill_probes = [&](const VoqArena& arena) {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, arena, 0, couplers_);
  };

  // queue_capacity is 0 in workload mode (validated), so enqueue never
  // drops.
  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    voq.push(qi, entry);
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  load.poll(0, inject);
  SimTime now = 0;
  for (;;) {
    // Phase 1a: inject the packets that became eligible, in the
    // workload's (id-sorted) order.
    for (const workload::WorkloadPacket& packet : inject) {
      ++metrics.offered_packets;
      ++inflight;
      enqueue(VoqEntry{packet.id, packet.destination, now, 0}, packet.source);
    }
    inject.clear();
    // Phase 1b: open-loop background traffic until the workload is
    // complete (load 0 generators never fire).
    if (!load_done) {
      const std::size_t sender_count = traffic_.demand_batch_senders_streams(
          0, nodes_, gen_rng.data(), senders.data());
      metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{background_base + now * nodes_ + d.source,
                         d.destination, now, 0},
                d.source);
      }
    }

    // Phase 2: arbitration, drawing from the coupler's own stream.
    deliveries.clear();
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, masks.request.data() + mb, words,
            token_[h], arb_rng[h], winners, scratch);
        if (collided) {
          ++metrics.collisions;
        }
        for (std::size_t si : winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          VoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          ++entry.hops;
          ++metrics.coupler_transmissions;
          ++coupler_success[h];
          deliveries.push_back(
              Delivery{entry, static_cast<hypergraph::HyperarcId>(h)});
        }
      }
    }

    // Phase 3: consume winners; workload deliveries feed back.
    delivered_ids.clear();
    for (std::size_t di = 0; di < deliveries.size(); ++di) {
      if (di + kRelayPrefetchAhead < deliveries.size()) {
        const Delivery& ahead = deliveries[di + kRelayPrefetchAhead];
        routes_.prefetch_relay(ahead.coupler, ahead.entry.destination);
      }
      Delivery& d = deliveries[di];
      const hypergraph::Node relay =
          routes_.relay(d.coupler, d.entry.destination);
      if (relay == d.entry.destination) {
        ++metrics.delivered_packets;
        metrics.latency.record(now - d.entry.created + 1);
        if (d.entry.id < background_base) {
          delivered_ids.push_back(d.entry.id);
        }
        --inflight;
      } else {
        enqueue(d.entry, relay);
      }
    }
    for (std::int64_t id : delivered_ids) {
      load.delivered(id);
    }
    if (!delivered_ids.empty()) {
      metrics.makespan_slots = now + 1;
    }
    load_done = load.done();
    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes(voq);
        tel->sample(now);
      }
      tel_last = now;
    }

    if (load_done && inflight == 0) {
      break;
    }
    ++now;
    if (now > bound) {
      break;
    }
    if (!load_done) {
      load.poll(now, inject);
    }
  }

  metrics.slots = now + 1;
  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes(voq);
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_workload_sharded(
    std::vector<std::int64_t>& coupler_success) {
  workload::Workload& load = *config_.workload;
  load.reset();

  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }
  threads = static_cast<int>(std::min<std::int64_t>(
      threads, std::max<std::int64_t>(1, std::max(nodes_, couplers_))));

  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  std::vector<std::vector<VoqEntry>> deliveries(
      static_cast<std::size_t>(couplers_));
  /// Compact senders; disjoint per-shard slices at node_begin offsets.
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));

  VoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()),
           static_cast<std::size_t>(threads));
  const std::size_t req_words = max_mask_words(feed_);

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t coupler_begin = 0, coupler_end = 0;
    std::int64_t offered = 0, delivered = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;
    LatencyStats latency;
    std::vector<std::int64_t> delivered_ids;  ///< workload ids this slot
    std::vector<std::size_t> winners, scratch;
    std::vector<std::uint64_t> request;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    auto [nb, ne] = partition(nodes_, w, threads);
    auto [cb, ce] = partition(couplers_, w, threads);
    Shard& shard = shards[static_cast<std::size_t>(w)];
    shard.node_begin = nb;
    shard.node_end = ne;
    shard.coupler_begin = cb;
    shard.coupler_end = ce;
    shard.request.assign(req_words, 0);
    if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
      shard.latency.use_sketch();
    }
    shard.latency.reserve(std::min(
        load.packet_count() / threads + 1, kLatencyReserveCap));
    for (std::int64_t qi = voq_base_[static_cast<std::size_t>(nb)];
         qi < voq_base_[static_cast<std::size_t>(ne)]; ++qi) {
      voq.set_pool(static_cast<std::size_t>(qi),
                   static_cast<std::uint32_t>(w));
    }
  }

  const std::int64_t background_base = load.packet_count();
  const SimTime bound = workload_slot_bound(load);
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const Arbitration policy = config_.arbitration;

  // Telemetry: per-shard frames merged in the completion step, exactly
  // as in the open-loop sharded mode.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  std::vector<obs::ProbeRegistry> frames;
  if (tel != nullptr) {
    if (tel->trace_sink() != nullptr) {
      windows = obs::WindowSpans(tel->trace_sink(), tel->tid(), 0, bound + 1);
    }
    frames.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      frames.push_back(tel->probes().clone_schema());
    }
  }

  // Runtime channel: as in the open-loop sharded mode.
  obs::RuntimeStats* const rts = config_.runtime_stats.get();
  const bool rt_on = rts != nullptr && rts->active();
  std::vector<obs::ShardRuntime> rt_shards(
      rt_on ? static_cast<std::size_t>(threads) : 0);

  // Slot state shared across workers; mutated only in the slot
  // barrier's completion step (every worker is blocked then). `inject`
  // is read-only during phases.
  SimTime now = 0;
  std::int64_t inflight = 0;
  std::int64_t makespan = 0;
  bool load_done = false;
  bool running = true;
  std::vector<workload::WorkloadPacket> inject;
  load.poll(0, inject);

  const auto on_slot_end = [&]() noexcept {
    bool delivered_any = false;
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
      // Feed order across shards is arbitrary but irrelevant: poll()
      // depends only on the delivered SET (workload contract).
      for (std::int64_t id : shard.delivered_ids) {
        load.delivered(id);
        delivered_any = true;
      }
      shard.delivered_ids.clear();
    }
    if (delivered_any) {
      makespan = now + 1;
    }
    load_done = load.done();
    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        obs::ProbeRegistry& reg = tel->probes();
        reg.zero();
        for (const obs::ProbeRegistry& frame : frames) {
          reg.accumulate(frame);
        }
        reg.set(tel->engine_probes().backlog, inflight);
        tel->sample(now);
      }
      tel_last = now;
    }
    inject.clear();
    if (load_done && inflight == 0) {
      running = false;
      return;
    }
    ++now;
    if (now > bound) {
      running = false;
      return;
    }
    if (!load_done) {
      load.poll(now, inject);
    }
  };
  std::barrier<> phase_barrier(threads);
  std::barrier<decltype(on_slot_end)> slot_barrier(threads, on_slot_end);

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    obs::ShardRuntime* const rt =
        rt_on ? &rt_shards[static_cast<std::size_t>(w)] : nullptr;
    const auto timed_wait = [&](auto& barrier) {
      if (rt == nullptr) {
        barrier.arrive_and_wait();
        return;
      }
      const std::int64_t t0 = obs::runtime_now_ns();
      barrier.arrive_and_wait();
      rt->barrier_wait_ns += obs::runtime_now_ns() - t0;
    };
    const std::int64_t loop_start = rt_on ? obs::runtime_now_ns() : 0;
    const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at) {
      const std::int32_t slot = routes_.next_slot(at, entry.destination);
      voq.push(static_cast<std::size_t>(
                   voq_base_[static_cast<std::size_t>(at)] + slot),
               entry);
    };

    while (true) {
      // Phase 1a: the shard's slice of the eligible injections.
      for (const workload::WorkloadPacket& packet : inject) {
        if (packet.source < shard.node_begin ||
            packet.source >= shard.node_end) {
          continue;
        }
        ++shard.offered;
        ++shard.inflight_delta;
        enqueue(VoqEntry{packet.id, packet.destination, now, 0},
                packet.source);
      }
      // Phase 1b: background traffic over the shard's nodes (compact
      // batch into the shard's slice of `senders`).
      if (!load_done) {
        const std::size_t sender_count =
            traffic_.demand_batch_senders_streams(
                shard.node_begin, shard.node_end, gen_rng.data(),
                senders.data() + shard.node_begin);
        shard.offered += static_cast<std::int64_t>(sender_count);
        shard.inflight_delta += static_cast<std::int64_t>(sender_count);
        for (std::size_t i = 0; i < sender_count; ++i) {
          const SenderDemand d =
              senders[static_cast<std::size_t>(shard.node_begin) + i];
          if (config_.recorder != nullptr) {
            config_.recorder->record(now, d.source, d.destination);
          }
          enqueue(VoqEntry{background_base + now * nodes_ + d.source,
                           d.destination, now, 0},
                  d.source);
        }
      }
      timed_wait(phase_barrier);

      // Phase 2: arbitration over the shard's couplers (local request
      // rebuild, as in the open-loop sharded mode).
      for (hypergraph::HyperarcId h = shard.coupler_begin;
           h < shard.coupler_end; ++h) {
        auto& out = deliveries[static_cast<std::size_t>(h)];
        out.clear();
        const std::size_t fb = static_cast<std::size_t>(
            feed_.feed_base[static_cast<std::size_t>(h)]);
        const std::size_t source_count =
            static_cast<std::size_t>(
                feed_.feed_base[static_cast<std::size_t>(h) + 1]) -
            fb;
        const std::size_t words = (source_count + 63) / 64;
        std::uint64_t any = 0;
        for (std::size_t wi = 0; wi < words; ++wi) {
          shard.request[wi] = 0;
        }
        for (std::size_t si = 0; si < source_count; ++si) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          if (!voq.empty(qi)) {
            shard.request[si >> 6] |= std::uint64_t{1} << (si & 63);
          }
        }
        for (std::size_t wi = 0; wi < words; ++wi) {
          any |= shard.request[wi];
        }
        if (any == 0) {
          continue;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, shard.request.data(), words,
            token_[static_cast<std::size_t>(h)],
            arb_rng[static_cast<std::size_t>(h)], shard.winners,
            shard.scratch);
        if (collided) {
          ++shard.collisions;
        }
        for (std::size_t si : shard.winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          VoqEntry entry = voq.pop_front(qi);
          ++entry.hops;
          ++shard.transmissions;
          ++coupler_success[static_cast<std::size_t>(h)];
          out.push_back(entry);
        }
      }
      timed_wait(phase_barrier);

      // Phase 3: consume the deliveries whose relay this shard owns.
      for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
        const auto& list = deliveries[static_cast<std::size_t>(h)];
        for (std::size_t di = 0; di < list.size(); ++di) {
          if (di + kRelayPrefetchAhead < list.size()) {
            routes_.prefetch_relay(
                h, list[di + kRelayPrefetchAhead].destination);
          }
          const VoqEntry& entry = list[di];
          const hypergraph::Node relay = routes_.relay(h, entry.destination);
          if (relay < shard.node_begin || relay >= shard.node_end) {
            continue;
          }
          if (relay == entry.destination) {
            ++shard.delivered;
            shard.latency.record(now - entry.created + 1);
            if (entry.id < background_base) {
              shard.delivered_ids.push_back(entry.id);
            }
            --shard.inflight_delta;
          } else {
            enqueue(entry, relay);
          }
        }
      }
      if (tel != nullptr && tel->due(now)) {
        // Sampling boundary: extra barrier for phase-3 visibility, then
        // snapshot this shard's counters and coupler range (see the
        // open-loop sharded mode).
        timed_wait(phase_barrier);
        obs::ProbeRegistry& frame = frames[static_cast<std::size_t>(w)];
        const obs::EngineProbes& ids = tel->engine_probes();
        frame.zero();
        frame.set(ids.offered, shard.offered);
        frame.set(ids.delivered, shard.delivered);
        frame.set(ids.transmissions, shard.transmissions);
        frame.set(ids.collisions, shard.collisions);
        detail::observe_occupancy(frame, ids.occupancy, feed_, voq,
                                  shard.coupler_begin, shard.coupler_end);
      }
      if (rt != nullptr) {
        ++rt->windows;
        ++rt->lookahead_used;
        ++rt->lookahead_available;
      }
      timed_wait(slot_barrier);
      if (!running) {
        break;
      }
    }
    if (rt != nullptr) {
      rt->work_ns +=
          obs::runtime_now_ns() - loop_start - rt->barrier_wait_ns;
    }
  };

  const std::int64_t run_start = rt_on ? obs::runtime_now_ns() : 0;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (rt_on) {
    rts->record_shards("phased_sharded", "workload",
                       obs::runtime_now_ns() - run_start, rt_shards);
  }

  RunMetrics metrics;
  metrics.slots = now + 1;
  metrics.makespan_slots = makespan;
  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
  }
  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
    tel->finish(tel_last);
  }
  return metrics;
}

template class PhasedEngineT<routing::CompiledRoutes>;
template class PhasedEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
