#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file emitted by the obs layer.

Usage: check_trace.py TRACE.json [--min-events N]

Checks, in order:
  1. the file parses as JSON and has a `traceEvents` array;
  2. every span is a complete event ("ph": "X") with the required
     fields (name, cat, ph, ts, dur, pid, tid), non-negative ts/dur,
     and pid 0 (the repo's single-process track convention); metadata
     events ("ph": "M", e.g. thread names the runtime layer may emit)
     are accepted and excluded from the nesting checks, and unknown
     extra fields on any event are tolerated -- the format may grow --
     but any other phase letter still fails;
  3. within each (pid, tid) track, spans strictly nest: sorted by
     start time (longest first on ties), every span either follows the
     previous ones or lies fully inside the innermost still-open span
     -- partial overlap means an engine emitted a malformed span pair;
  4. at least --min-events events are present (default 1), so an
     accidentally-empty trace fails CI instead of passing vacuously.

Exit status 0 on a valid trace, 1 otherwise, with one line per
violation (capped) so the CI log points at the broken events.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
MAX_REPORTED = 20


def check_events(events, min_events):
    errors = []

    def report(message):
        if len(errors) < MAX_REPORTED:
            errors.append(message)

    if len(events) < min_events:
        report(f"expected at least {min_events} events, found {len(events)}")

    tracks = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            report(f"event {i}: not an object")
            continue
        # Metadata events carry no duration and sit outside the span
        # tree; validate their identity fields and move on.
        if event.get("ph") == "M":
            missing = [f for f in ("name", "pid", "tid") if f not in event]
            if missing:
                report(f"event {i}: metadata event missing {missing}")
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in event]
        if missing:
            report(f"event {i}: missing fields {missing}")
            continue
        if event["ph"] != "X":
            report(f"event {i} ({event['name']}): ph is {event['ph']!r}, "
                   "expected complete event 'X' or metadata 'M'")
        if event["pid"] != 0:
            report(f"event {i} ({event['name']}): pid {event['pid']}, "
                   "expected 0")
        if event["ts"] < 0 or event["dur"] < 0:
            report(f"event {i} ({event['name']}): negative ts/dur")
            continue
        tracks.setdefault((event["pid"], event["tid"]), []).append(event)

    for (pid, tid), track in sorted(tracks.items()):
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        previous_ts = None
        stack = []  # innermost-last open spans as (name, start, end)
        for event in track:
            ts, end = event["ts"], event["ts"] + event["dur"]
            if previous_ts is not None and ts < previous_ts:
                report(f"track {pid}/{tid}: timestamps not monotone at "
                       f"{event['name']}")
            previous_ts = ts
            while stack and stack[-1][2] <= ts:
                stack.pop()
            if stack and end > stack[-1][2]:
                report(f"track {pid}/{tid}: span {event['name']!r} "
                       f"[{ts}, {end}) partially overlaps open span "
                       f"{stack[-1][0]!r} [{stack[-1][1]}, {stack[-1][2]})")
            stack.append((event["name"], ts, end))

    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1)
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_trace: cannot parse {args.trace}: {exc}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"check_trace: {args.trace} has no traceEvents array")
        return 1

    errors = check_events(events, args.min_events)
    if errors:
        for message in errors:
            print(f"check_trace: {message}")
        print(f"check_trace: FAIL ({len(errors)} problem(s), "
              f"{len(events)} events)")
        return 1

    tids = sorted({e["tid"] for e in events})
    print(f"check_trace: OK -- {len(events)} events across "
          f"{len(tids)} track(s) {tids}, spans nest strictly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
