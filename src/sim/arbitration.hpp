#pragma once
/// \file arbitration.hpp
/// Per-coupler winner selection for the phased and sharded engines.
///
/// This is a faithful restatement of the event-queue engine's inline
/// arbitration (ops_network.cpp slot()), including the exact RNG
/// consumption order. The event-queue copy is deliberately left as the
/// seed wrote it -- it is the reference implementation and benchmark
/// baseline -- so any change here MUST be mirrored there (or rejected);
/// tests/test_engine_equivalence.cpp enforces the bit-for-bit agreement
/// and will fail on divergence.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "sim/ops_network.hpp"

namespace otis::sim::detail {

/// Picks the winners of one coupler-slot.
///
/// `contenders` holds the positions (ascending) in the coupler's source
/// list whose VOQ toward this coupler is non-empty; it may be permuted
/// in place. `is_contender` is a mask over source positions consistent
/// with `contenders` (used by the token scan). `token` is the coupler's
/// round-robin cursor, advanced on each win. Winners are appended to
/// `winners` (cleared first) in transmission order. Returns true when a
/// slotted-aloha collision destroyed every transmission of this slot.
inline bool pick_winners(Arbitration policy, std::size_t capacity,
                         std::size_t source_count,
                         std::vector<std::size_t>& contenders,
                         const std::vector<char>& is_contender,
                         std::int64_t& token, core::Rng& rng,
                         std::vector<std::size_t>& winners) {
  winners.clear();
  switch (policy) {
    case Arbitration::kTokenRoundRobin: {
      // Scan sources starting at the token cursor; the first `capacity`
      // contenders win and the token moves just past the last winner.
      const std::size_t start = static_cast<std::size_t>(token);
      for (std::size_t step = 0;
           step < source_count && winners.size() < capacity; ++step) {
        const std::size_t si = (start + step) % source_count;
        if (is_contender[si]) {
          winners.push_back(si);
          token = static_cast<std::int64_t>((si + 1) % source_count);
        }
      }
      return false;
    }
    case Arbitration::kRandomWinner: {
      // Partial Fisher-Yates over the contender list.
      for (std::size_t i = 0;
           i < contenders.size() && winners.size() < capacity; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.uniform(contenders.size() - i));
        std::swap(contenders[i], contenders[j]);
        winners.push_back(contenders[i]);
      }
      return false;
    }
    case Arbitration::kSlottedAloha: {
      // Every contender independently transmits with probability 1/2; at
      // most `capacity` simultaneous transmitters succeed, more collide.
      for (std::size_t si : contenders) {
        if (rng.bernoulli(0.5)) {
          winners.push_back(si);
        }
      }
      if (winners.size() > capacity) {
        winners.clear();
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace otis::sim::detail
