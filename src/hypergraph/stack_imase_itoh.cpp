#include "hypergraph/stack_imase_itoh.hpp"

#include "core/error.hpp"

namespace otis::hypergraph {

graph::Digraph imase_itoh_with_loops(int degree, std::int64_t n) {
  topology::ImaseItoh ii(degree, n);
  const graph::Digraph& base = ii.graph();
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(base.size() + base.order()));
  for (graph::Vertex v = 0; v < base.order(); ++v) {
    for (graph::ArcId a = base.out_begin(v); a < base.out_end(v); ++a) {
      arcs.push_back(graph::Arc{v, base.head(a)});
    }
    arcs.push_back(graph::Arc{v, v});
  }
  return graph::Digraph::from_arcs(base.order(), arcs);
}

StackImaseItoh::StackImaseItoh(std::int64_t stacking_factor, int degree,
                               std::int64_t n)
    : s_(stacking_factor),
      ii_(degree, n),
      stack_(stacking_factor, imase_itoh_with_loops(degree, n)) {
  OTIS_REQUIRE(s_ >= 1, "StackImaseItoh: stacking factor must be >= 1");
}

HyperarcId StackImaseItoh::arc_coupler(graph::Vertex x, int alpha) const {
  OTIS_REQUIRE(x >= 0 && x < group_count(),
               "StackImaseItoh::arc_coupler: group out of range");
  OTIS_REQUIRE(alpha >= 1 && alpha <= ii_.degree(),
               "StackImaseItoh::arc_coupler: alpha out of range");
  return stack_.coupler_of_arc(x * (ii_.degree() + 1) + alpha - 1);
}

HyperarcId StackImaseItoh::loop_coupler(graph::Vertex x) const {
  OTIS_REQUIRE(x >= 0 && x < group_count(),
               "StackImaseItoh::loop_coupler: group out of range");
  return stack_.coupler_of_arc(x * (ii_.degree() + 1) + ii_.degree());
}

}  // namespace otis::hypergraph
