#pragma once
/// \file probe.hpp
/// Named counters, gauges, and fixed-bucket histograms for the
/// telemetry layer.
///
/// A ProbeRegistry is a flat arena of int64 slots with a small schema
/// (name + kind + bucket bounds) on the side, so the hot-path mutators
/// (add/set/observe) are array writes with no hashing and no locks.
/// Registration happens once at Telemetry construction; the engines
/// then touch probes only through integer ids.
///
/// Thread-count invariance: the sharded engine gives every shard its
/// own registry clone (clone_schema) and folds them into the run's main
/// registry at a barrier with accumulate(), which is element-wise
/// integer addition -- order-independent, so the merged values are
/// identical for every shard partition. That requires every probe to be
/// partition-additive: counters and histogram buckets sum naturally,
/// and gauges are defined to sum as well (a shard gauges the part of
/// the quantity it owns, e.g. the backlog of its node range).

#include <cstdint>
#include <string>
#include <vector>

namespace otis::obs {

/// Index into a ProbeRegistry; stable for the registry's lifetime.
using ProbeId = std::uint32_t;

enum class ProbeKind : std::uint8_t {
  kCounter,    ///< monotone total (samplers emit per-window deltas)
  kGauge,      ///< instantaneous level (summed across shards)
  kHistogram,  ///< fixed upper-bound buckets + one overflow bucket
};

class ProbeRegistry {
 public:
  /// Registers a probe; names should be short snake_case identifiers
  /// (they become JSONL keys). Duplicate names are rejected.
  ProbeId counter(const std::string& name);
  ProbeId gauge(const std::string& name);
  /// `upper_bounds` must be strictly increasing; bucket i counts values
  /// <= upper_bounds[i], plus one implicit overflow bucket at the end.
  ProbeId histogram(const std::string& name,
                    std::vector<std::int64_t> upper_bounds);

  // Hot-path mutators: plain array writes, no validation beyond debug
  // asserts. `observe` does a linear bound scan (bucket counts are
  // small and these run only at sampling boundaries).
  void add(ProbeId id, std::int64_t delta) {
    values_[probes_[id].slot] += delta;
  }
  void set(ProbeId id, std::int64_t value) {
    values_[probes_[id].slot] = value;
  }
  void observe(ProbeId id, std::int64_t value);

  /// Zeroes one histogram's buckets (samplers that rebuild a snapshot
  /// histogram every window call this before re-observing).
  void clear_histogram(ProbeId id);
  /// Zeroes every value slot; the schema is untouched.
  void zero();

  /// Empty registry with this registry's schema (per-shard instances).
  [[nodiscard]] ProbeRegistry clone_schema() const;
  /// Element-wise adds `shard`'s values into this registry. Both must
  /// share a schema (same registration sequence).
  void accumulate(const ProbeRegistry& shard);

  // Introspection (samplers, tests).
  [[nodiscard]] std::size_t probe_count() const noexcept {
    return probes_.size();
  }
  [[nodiscard]] const std::string& name(ProbeId id) const {
    return probes_[id].name;
  }
  [[nodiscard]] ProbeKind kind(ProbeId id) const { return probes_[id].kind; }
  /// Counter/gauge value (histograms: use bucket accessors).
  [[nodiscard]] std::int64_t value(ProbeId id) const {
    return values_[probes_[id].slot];
  }
  [[nodiscard]] std::size_t bucket_count(ProbeId id) const {
    return probes_[id].slots;
  }
  [[nodiscard]] std::int64_t bucket(ProbeId id, std::size_t i) const {
    return values_[probes_[id].slot + i];
  }
  [[nodiscard]] const std::vector<std::int64_t>& bounds(ProbeId id) const {
    return probes_[id].bounds;
  }

 private:
  struct Meta {
    std::string name;
    ProbeKind kind = ProbeKind::kCounter;
    std::size_t slot = 0;   ///< first value slot
    std::size_t slots = 1;  ///< 1, or bucket count for histograms
    std::vector<std::int64_t> bounds;
  };

  ProbeId register_probe(Meta meta);

  std::vector<Meta> probes_;
  std::vector<std::int64_t> values_;
};

}  // namespace otis::obs
