file(REMOVE_RECURSE
  "CMakeFiles/test_otis.dir/tests/test_otis.cpp.o"
  "CMakeFiles/test_otis.dir/tests/test_otis.cpp.o.d"
  "test_otis"
  "test_otis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
