// Fig. 1 of the paper: the OTIS(3,6) optical transpose. Regenerates the
// full transmitter -> receiver connection table of the figure and
// machine-checks the involution property (OTIS(6,3) undoes OTIS(3,6)).

#include <iostream>

#include "core/table.hpp"
#include "otis/otis.hpp"

int main() {
  std::cout << "[Fig. 1] OTIS(3,6): 3 groups of 6 transmitters onto 6 "
               "groups of 3 receivers\n"
            << "rule: transmitter (i, j) -> receiver (T-1-j, G-1-i)\n\n";
  otis::otis::Otis otis(3, 6);

  otis::core::Table table({"tx group i", "tx offset j", "rx group", "rx offset",
                           "tx linear", "rx linear"});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      const otis::otis::InputPort in{i, j};
      const otis::otis::OutputPort out = otis.map(in);
      table.add(i, j, out.group, out.offset, otis.input_index(in),
                otis.output_index(out));
    }
  }
  table.print(std::cout);

  bool ok = true;
  // Check 1: the map is a bijection onto the 18 receivers.
  auto perm = otis.permutation();
  std::vector<bool> hit(static_cast<std::size_t>(otis.port_count()), false);
  for (std::int64_t p : perm) {
    if (hit[static_cast<std::size_t>(p)]) {
      ok = false;
    }
    hit[static_cast<std::size_t>(p)] = true;
  }
  // Check 2: a second transpose stage undoes the first.
  ok = ok && composes_to_identity(otis::otis::Otis(3, 6),
                                  otis::otis::Otis(6, 3));
  std::cout << "\nbijection onto receivers: " << (ok ? "yes" : "NO")
            << "; OTIS(6,3) o OTIS(3,6) = identity: "
            << (composes_to_identity(otis::otis::Otis(3, 6),
                                     otis::otis::Otis(6, 3))
                    ? "yes"
                    : "NO")
            << "\n";
  return ok ? 0 : 1;
}
