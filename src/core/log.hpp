#pragma once
/// \file log.hpp
/// Leveled logging to stderr, off by default.
///
/// The library itself never prints; logging exists for the simulator and
/// for debugging the design verifiers. Controlled by set_log_level or the
/// OTISNET_LOG environment variable (error|warn|info|debug).

#include <sstream>
#include <string>

namespace otis::core {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;

/// Current threshold (initialized from OTISNET_LOG on first use).
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

}  // namespace otis::core

#define OTIS_LOG(level, expr)                                     \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::otis::core::log_level())) {            \
      std::ostringstream otis_log_stream;                         \
      otis_log_stream << expr;                                    \
      ::otis::core::log_message((level), otis_log_stream.str()); \
    }                                                             \
  } while (false)

#define OTIS_LOG_INFO(expr) OTIS_LOG(::otis::core::LogLevel::kInfo, expr)
#define OTIS_LOG_WARN(expr) OTIS_LOG(::otis::core::LogLevel::kWarn, expr)
#define OTIS_LOG_DEBUG(expr) OTIS_LOG(::otis::core::LogLevel::kDebug, expr)
