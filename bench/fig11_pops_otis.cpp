// Fig. 11 of the paper: the complete optical design of POPS(4,2) with
// the OTIS architecture -- per-group OTIS(4,2)/OTIS(2,4) blocks around
// an OTIS(2,2) interconnect. Regenerates the bill of materials, traces
// all lightpaths and machine-checks the design realizes POPS(4,2).

#include <iostream>

#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "optics/trace.hpp"

int main() {
  std::cout << "[Fig. 11] optical design of POPS(4,2) using OTIS\n\n";
  otis::designs::NetworkDesign design = otis::designs::pops_design(4, 2);
  otis::designs::BillOfMaterials bom =
      otis::designs::bill_of_materials(design.netlist);

  otis::core::Table table({"component", "count", "paper (Sec. 4.1)"});
  table.add("OTIS(4,2) transmit blocks", bom.otis_blocks.at({4, 2}),
            "one per group (\"two OTIS(t,g)\")");
  table.add("OTIS(2,4) receive blocks", bom.otis_blocks.at({2, 4}),
            "one per group");
  table.add("OTIS(2,2) interconnect", bom.otis_blocks.at({2, 2}),
            "1 (realizes K+_2 = II(2,2))");
  table.add("optical multiplexers", bom.multiplexers, "g^2 = 4");
  table.add("beam-splitters", bom.beam_splitters, "g^2 = 4");
  table.add("transmitters", bom.transmitters, "N*g = 16");
  table.add("receivers", bom.receivers, "N*g = 16");
  table.print(std::cout);

  otis::designs::VerificationResult v = otis::designs::verify_design(design);
  std::cout << "\nlightpaths traced: " << v.lightpaths
            << ", couplers seen: " << v.couplers_seen << ", max loss "
            << otis::core::format_double(v.max_loss_db, 2) << " dB\n"
            << "design realizes POPS(4,2) hypergraph: "
            << (v.ok ? "yes" : ("NO: " + v.details)) << "\n";

  // One sample lightpath, as drawn in the figure (source 0 -> group 1).
  auto endpoints = otis::optics::trace_from_transmitter(
      design.netlist, design.tx_of_processor[0][0], {});
  std::cout << "sample: " << design.netlist.component(
                                 design.tx_of_processor[0][0])
                                 .label
            << " reaches processors";
  for (const auto& e : endpoints) {
    std::cout << " " << design.processor_of_receiver(e.receiver);
  }
  std::cout << " through "
            << (endpoints.empty() ? 0 : endpoints[0].couplers)
            << " coupler\n";

  const bool counts_ok = bom.otis_blocks.at({4, 2}) == 2 &&
                         bom.otis_blocks.at({2, 4}) == 2 &&
                         bom.otis_blocks.at({2, 2}) == 1 &&
                         bom.multiplexers == 4 && bom.beam_splitters == 4;
  return v.ok && counts_ok ? 0 : 1;
}
