#pragma once
/// \file builders.hpp
/// Builders for every optical design in the paper plus the baselines the
/// paper compares against by citation.
///
///  - imase_itoh_design: Sec. 3.2 / Fig. 10 -- point-to-point II(d, n)
///    realized with a single OTIS(d, n) (Proposition 1). With a Kautz
///    order this is the Corollary 1 design for KG(d, k).
///  - pops_design: Sec. 4.1 / Fig. 11 -- POPS(t, g) from g transmit group
///    blocks, g receive group blocks and one OTIS(g, g) interconnect.
///  - stack_kautz_design: Sec. 4.2 / Fig. 12 -- SK(s, d, k) from
///    d^{k-1}(d+1) group block pairs, one central OTIS(d, d^{k-1}(d+1))
///    and one loop-back fiber per group.
///  - stack_imase_itoh_design: the Sec. 2.7 extension SII(s, d, n).
///  - single_ops_bus_design: the single-OPS broadcast bus baseline.
///  - fiber_point_to_point_design: any digraph wired with one fiber per
///    arc (the "no OTIS" baseline used for hardware-cost comparisons).

#include <cstdint>

#include "designs/design.hpp"
#include "graph/digraph.hpp"

namespace otis::designs {

/// Point-to-point Imase-Itoh network II(d, n) on one OTIS(d, n)
/// (paper Sec. 3.2; Fig. 10 is d = 3, n = 12).
[[nodiscard]] NetworkDesign imase_itoh_design(int degree, std::int64_t order);

/// POPS(t, g) optical design (paper Sec. 4.1; Fig. 11 is t = 4, g = 2).
[[nodiscard]] NetworkDesign pops_design(std::int64_t group_size,
                                        std::int64_t group_count);

/// Stack-Kautz SK(s, d, k) optical design (paper Sec. 4.2; Fig. 12 is
/// s = 6, d = 3, k = 2).
[[nodiscard]] NetworkDesign stack_kautz_design(std::int64_t stacking_factor,
                                               int degree, int diameter);

/// Stack-Imase-Itoh SII(s, d, n) optical design (Sec. 2.7 extension).
[[nodiscard]] NetworkDesign stack_imase_itoh_design(
    std::int64_t stacking_factor, int degree, std::int64_t group_count);

/// Single-hop single-OPS broadcast bus: one OPS(N, N) shared by all
/// processors. The degenerate baseline of the paper's taxonomy (Sec. 1).
[[nodiscard]] NetworkDesign single_ops_bus_design(std::int64_t processors);

/// Point-to-point design wiring each arc of `g` with a dedicated fiber
/// link; `name` labels it. Baseline for OTIS-vs-wires hardware cost.
[[nodiscard]] NetworkDesign fiber_point_to_point_design(
    const graph::Digraph& g, const std::string& name);

}  // namespace otis::designs
