#include "hypergraph/stack_graph.hpp"

#include <utility>

#include "core/error.hpp"

namespace otis::hypergraph {

StackGraph::StackGraph(std::int64_t stacking_factor, graph::Digraph base)
    : s_(stacking_factor), base_(std::move(base)) {
  OTIS_REQUIRE(s_ >= 1, "StackGraph: stacking factor must be >= 1");
  std::vector<Hyperarc> hyperarcs;
  hyperarcs.reserve(static_cast<std::size_t>(base_.size()));
  for (graph::ArcId a = 0; a < base_.size(); ++a) {
    const graph::Arc arc = base_.arc(a);
    Hyperarc h;
    h.sources.reserve(static_cast<std::size_t>(s_));
    h.targets.reserve(static_cast<std::size_t>(s_));
    for (std::int64_t y = 0; y < s_; ++y) {
      h.sources.push_back(arc.tail * s_ + y);
      h.targets.push_back(arc.head * s_ + y);
    }
    hyperarcs.push_back(std::move(h));
  }
  hypergraph_ = DirectedHypergraph(base_.order() * s_, std::move(hyperarcs));
}

graph::Vertex StackGraph::project(Node node) const {
  OTIS_REQUIRE(node >= 0 && node < node_count(),
               "StackGraph::project: node out of range");
  return node / s_;
}

std::int64_t StackGraph::copy_index(Node node) const {
  OTIS_REQUIRE(node >= 0 && node < node_count(),
               "StackGraph::copy_index: node out of range");
  return node % s_;
}

Node StackGraph::node_of(graph::Vertex x, std::int64_t y) const {
  OTIS_REQUIRE(x >= 0 && x < base_.order(),
               "StackGraph::node_of: base vertex out of range");
  OTIS_REQUIRE(y >= 0 && y < s_, "StackGraph::node_of: copy index out of range");
  return x * s_ + y;
}

std::int64_t StackGraph::out_slot_of(Node node, HyperarcId h) const {
  OTIS_REQUIRE(h >= 0 && h < hypergraph_.hyperarc_count(),
               "StackGraph::out_slot_of: coupler out of range");
  const graph::Vertex x = project(node);  // range-checks node
  const graph::ArcId begin = base_.out_begin(x);
  if (h < begin || h >= base_.out_end(x)) {
    return -1;
  }
  return h - begin;
}

HyperarcId StackGraph::coupler_of_arc(graph::ArcId a) const {
  OTIS_REQUIRE(a >= 0 && a < base_.size(),
               "StackGraph::coupler_of_arc: arc out of range");
  return a;
}

graph::ArcId StackGraph::arc_of_coupler(HyperarcId h) const {
  OTIS_REQUIRE(h >= 0 && h < hypergraph_.hyperarc_count(),
               "StackGraph::arc_of_coupler: coupler out of range");
  return h;
}

}  // namespace otis::hypergraph
