#pragma once
/// \file runner.hpp
/// Campaign execution: grid fan-out over a persistent work-stealing pool.
///
/// The runner expands the spec, drops cells already recorded in the
/// output manifest (--resume), compiles each distinct topology exactly
/// once (shared via shared_ptr across all its cells), and fans the
/// pending cells out over a WorkStealingPool. Workers simulate cells in
/// whatever order stealing yields; an ordered emit buffer then releases
/// finished cells to the sinks strictly in expansion order, so the
/// streamed JSONL/CSV bytes are identical for every --threads value
/// (per-cell seeding keeps each simulation independent of scheduling).
/// A cell's manifest line is written only after its rows are flushed to
/// every file sink, so resume never loses a cell. The ordering gives
/// at-least-once semantics: a crash in the narrow window between a
/// row's flush and its manifest line re-simulates that cell on resume
/// and appends its (deterministically identical) rows a second time —
/// the manifest, not the row streams, is the source of truth for
/// completion.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "core/work_pool.hpp"

namespace otis::campaign {

/// The campaign layer's historical name for the shared pool (the class
/// itself moved to core so the routing compilers can use it too).
using WorkStealingPool = core::WorkStealingPool;

/// How to execute a campaign (as opposed to *what* to run, the spec).
struct CampaignOptions {
  int threads = 1;       ///< worker pool size; <= 0 = hardware concurrency
  std::string out_dir;   ///< when set: results.jsonl/results.csv/manifest.txt
  bool resume = false;   ///< skip cells listed in the manifest, append files
  bool write_jsonl = true;  ///< emit out_dir/results.jsonl
  bool write_csv = true;    ///< emit out_dir/results.csv
  /// Deterministic cross-machine split: this invocation runs only cells
  /// with expansion index == shard_index (mod shard_count). The split
  /// depends on the spec alone (never on manifests), so n machines
  /// running shards 0/n .. (n-1)/n cover the grid exactly once;
  /// concatenating their results.jsonl and manifest.txt into one
  /// directory yields a full-grid output a --resume run recognizes as
  /// complete (and refolds into the full aggregate).
  int shard_index = 0;
  int shard_count = 1;
  /// Heartbeat on stderr every ~2 s: cells done/total, rate, ETA, and
  /// busy workers. Rate and ETA cover only cells executed by this
  /// invocation (manifest-skipped cells are reported separately), so a
  /// --resume shows the true remaining time. With the spec's telemetry
  /// `runtime_stats` sink set, the heartbeat adds the running barrier-
  /// stall share and each sharded cell gets a stall-attribution line
  /// ("shard 3 caused 61% of barrier wait"). Diagnostics only -- never
  /// touches the result files.
  bool progress = false;
  /// Checkpoint drill (tests/CI only): when >= 0 and the spec enables
  /// checkpointing, every cell stops right after its first checkpoint
  /// at a slot boundary >= this value, simulating a mid-cell crash.
  /// Interrupted cells reach no sink and no manifest line -- their blob
  /// on disk is the whole handoff to a --resume invocation, which
  /// finishes them bit-identically to an uninterrupted run.
  std::int64_t checkpoint_stop = -1;
};

/// What one run() did.
struct CampaignReport {
  std::int64_t total_cells = 0;        ///< grid size
  std::int64_t completed_cells = 0;    ///< simulated this invocation
  std::int64_t skipped_cells = 0;      ///< already in the manifest
  std::int64_t out_of_shard_cells = 0;  ///< left to other shards
  std::int64_t interrupted_cells = 0;  ///< stopped at a checkpoint drill
  std::int64_t topologies_compiled = 0;  ///< routing-table sets built
  std::int64_t runtime_rows = 0;  ///< rows streamed to runtime.jsonl
  double elapsed_seconds = 0.0;
};

/// Executes CampaignSpecs. Attach extra sinks (e.g. AggregateSink)
/// before run(); file sinks for out_dir are managed internally.
class CampaignRunner {
 public:
  /// Output file names inside CampaignOptions::out_dir.
  static constexpr const char* kJsonlFile = "results.jsonl";
  static constexpr const char* kCsvFile = "results.csv";
  static constexpr const char* kManifestFile = "manifest.txt";

  explicit CampaignRunner(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// Registers a sink that receives every cell result in expansion
  /// order (in addition to the out_dir file sinks).
  void add_sink(std::shared_ptr<ResultSink> sink);

  /// Expands, skips, compiles, simulates, streams. May be called again
  /// (e.g. to re-drive the same spec at different options); sinks added
  /// via add_sink stay attached.
  CampaignReport run(const CampaignOptions& options = {});

 private:
  CampaignSpec spec_;
  std::vector<std::shared_ptr<ResultSink>> extra_sinks_;
};

}  // namespace otis::campaign
