#pragma once
/// \file voq_arena.hpp
/// Structure-of-arrays arena backing the slot engines' virtual output
/// queues (replaces the per-queue RingBuffer<Packet> vector).
///
/// The phased/async hot loops touch thousands of VOQs per slot but only
/// ever read one field at a time (a head destination for routing, a head
/// ready-tick for the async gate, a size for the capacity check). An
/// array-of-structs layout drags the whole Packet through the cache for
/// each of those reads; the arena instead keeps one contiguous array per
/// entry field, plus a packed 24-byte header per queue (segment base,
/// head, length, capacity, pool) so a push or pop touches exactly one
/// header cache line instead of one per index array.
///
/// Queues own power-of-two segments of the pool. A full queue gets a
/// fresh segment of twice the size at the pool end and abandons the old
/// one; as with per-queue doubling vectors, abandoned space is bounded
/// by the live capacity (geometric series), and indices -- not pointers
/// -- reference entries, so growth never invalidates anything.
///
/// Sharded runs hand every shard its own pool (init(queues, shards) +
/// set_pool): pushes -- the only operation that can grow a pool -- are
/// always issued by the owning shard, while the barrier-separated
/// arbitration phase only pops (head/size updates, no reallocation), so
/// concurrent phases never race on a pool's backing vectors. Serial
/// engines use a single pool and pay one extra (always-zero, cached)
/// pool-id load per access.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace otis::sim {

/// One queued packet, minus the source node: once a packet sits in a
/// VOQ its source is never read again (relays are resolved from the
/// coupler), so the arena does not store it.
struct VoqEntry {
  std::int64_t id = 0;
  std::int64_t destination = 0;
  std::int64_t created = 0;  ///< slot (phased) or tick (async)
  std::int32_t hops = 0;
};

/// VoqEntry plus the tick the transmitter finishes tuning (async
/// engine's eligibility gate).
struct TimedVoqEntry {
  std::int64_t id = 0;
  std::int64_t destination = 0;
  std::int64_t created = 0;
  std::int32_t hops = 0;
  std::int64_t ready = 0;
};

template <bool Timed>
class VoqArenaT {
 public:
  using Entry = std::conditional_t<Timed, TimedVoqEntry, VoqEntry>;

  /// Initial per-queue segment capacity (matches the old RingBuffer).
  static constexpr std::uint32_t kInitialCapacity = 8;

  /// Re-initializes to `queue_count` empty queues spread over
  /// `pool_count` independently growable pools. Every queue starts in
  /// pool 0; sharded callers reassign with set_pool() before pushing.
  void init(std::size_t queue_count, std::size_t pool_count = 1) {
    pools_.clear();
    pools_.resize(pool_count);
    queues_.assign(queue_count, Header{});
  }

  void set_pool(std::size_t q, std::uint32_t pool) {
    queues_[q].pool = pool;
  }

  [[nodiscard]] std::size_t queue_count() const noexcept {
    return queues_.size();
  }
  [[nodiscard]] std::size_t size(std::size_t q) const noexcept {
    return queues_[q].len;
  }
  [[nodiscard]] bool empty(std::size_t q) const noexcept {
    return queues_[q].len == 0;
  }

  void push(std::size_t q, const Entry& e) {
    Header& ref = queues_[q];
    if (ref.len == ref.cap) {
      grow(ref);
    }
    Pool& pool = pools_[ref.pool];
    const std::size_t at =
        ref.base + ((ref.head + ref.len) & (ref.cap - 1));
    pool.id[at] = e.id;
    pool.destination[at] = e.destination;
    pool.created[at] = e.created;
    pool.hops[at] = e.hops;
    if constexpr (Timed) {
      pool.ready[at] = e.ready;
    }
    ++ref.len;
  }

  /// Copy of the head entry; the queue must be non-empty.
  [[nodiscard]] Entry front(std::size_t q) const {
    const Header& ref = queues_[q];
    const Pool& pool = pools_[ref.pool];
    const std::size_t at = ref.base + ref.head;
    Entry e;
    e.id = pool.id[at];
    e.destination = pool.destination[at];
    e.created = pool.created[at];
    e.hops = pool.hops[at];
    if constexpr (Timed) {
      e.ready = pool.ready[at];
    }
    return e;
  }

  /// Ready tick of the head entry without copying the rest (the async
  /// eligibility gate reads only this field).
  [[nodiscard]] std::int64_t front_ready(std::size_t q) const
    requires Timed
  {
    const Header& ref = queues_[q];
    return pools_[ref.pool].ready[ref.base + ref.head];
  }

  /// Removes and returns the head entry; the queue must be non-empty.
  Entry pop_front(std::size_t q) {
    Entry e = front(q);
    Header& ref = queues_[q];
    ref.head = (ref.head + 1) & (ref.cap - 1);
    --ref.len;
    return e;
  }

  /// Visits queue `q`'s entries head to tail (checkpoint serialization:
  /// re-pushing the visited sequence into a fresh arena reproduces the
  /// queue's logical FIFO state exactly, whatever the segment layout).
  template <typename Fn>
  void for_each_entry(std::size_t q, Fn&& fn) const {
    const Header& ref = queues_[q];
    const Pool& pool = pools_[ref.pool];
    for (std::uint32_t i = 0; i < ref.len; ++i) {
      const std::size_t at = ref.base + ((ref.head + i) & (ref.cap - 1));
      Entry e;
      e.id = pool.id[at];
      e.destination = pool.destination[at];
      e.created = pool.created[at];
      e.hops = pool.hops[at];
      if constexpr (Timed) {
        e.ready = pool.ready[at];
      }
      fn(e);
    }
  }

 private:
  /// Per-queue metadata, packed so every queue operation touches one
  /// header cache line (three headers per 64-byte line).
  struct Header {
    std::size_t base = 0;    ///< segment start in its pool
    std::uint32_t head = 0;  ///< head offset (masked by cap - 1)
    std::uint32_t len = 0;   ///< live entry count
    std::uint32_t cap = 0;   ///< segment capacity (power of two)
    std::uint32_t pool = 0;  ///< owning pool index
  };

  struct Pool {
    std::vector<std::int64_t> id;
    std::vector<std::int64_t> destination;
    std::vector<std::int64_t> created;
    std::vector<std::int32_t> hops;
    std::vector<std::int64_t> ready;  ///< allocated only when Timed
  };

  void grow(Header& ref) {
    Pool& pool = pools_[ref.pool];
    const std::uint32_t old_cap = ref.cap;
    const std::uint32_t new_cap =
        old_cap == 0 ? kInitialCapacity : old_cap * 2;
    const std::size_t nb = pool.id.size();
    pool.id.resize(nb + new_cap);
    pool.destination.resize(nb + new_cap);
    pool.created.resize(nb + new_cap);
    pool.hops.resize(nb + new_cap);
    if constexpr (Timed) {
      pool.ready.resize(nb + new_cap);
    }
    const std::size_t ob = ref.base;
    for (std::uint32_t i = 0; i < ref.len; ++i) {
      const std::size_t from = ob + ((ref.head + i) & (old_cap - 1));
      pool.id[nb + i] = pool.id[from];
      pool.destination[nb + i] = pool.destination[from];
      pool.created[nb + i] = pool.created[from];
      pool.hops[nb + i] = pool.hops[from];
      if constexpr (Timed) {
        pool.ready[nb + i] = pool.ready[from];
      }
    }
    ref.base = nb;
    ref.head = 0;
    ref.cap = new_cap;
  }

  std::vector<Pool> pools_;
  std::vector<Header> queues_;
};

/// The phased engines' arena.
using VoqArena = VoqArenaT<false>;
/// The async engine's arena (per-entry ready ticks).
using TimedVoqArena = VoqArenaT<true>;

}  // namespace otis::sim
