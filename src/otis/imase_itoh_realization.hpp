#pragma once
/// \file imase_itoh_realization.hpp
/// Proposition 1 of the paper: OTIS(d, n) perfectly realizes the optical
/// interconnections of the Imase-Itoh digraph II(d, n).
///
/// Port assignment (from the paper's proof):
///  - node u's *transmitters* are the OTIS inputs with linear indices
///    d*u + alpha - 1 for alpha = 1..d, i.e. input ports
///    ( floor((d*u + alpha - 1) / n), (d*u + alpha - 1) mod n );
///  - node v's *receivers* are the OTIS outputs of output-group v,
///    offsets 0..d-1 (output (v, d - beta) for beta = 1..d).
///
/// Then the OTIS transpose sends transmitter alpha of node u to a
/// receiver of node (-d*u - alpha) mod n -- exactly the II(d, n) arc.
/// `realized_digraph` reconstructs the node-level digraph from nothing
/// but the OTIS map and this assignment; `verify` checks it equals
/// II(d, n) arc-for-arc, turning Proposition 1 into an executable test.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "otis/otis.hpp"
#include "topology/imase_itoh.hpp"

namespace otis::otis {

/// The Proposition 1 realization of II(d, n) on OTIS(d, n).
class ImaseItohRealization {
 public:
  /// Requires d >= 1 and n >= d; builds OTIS(d, n).
  ImaseItohRealization(int degree, std::int64_t order);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] std::int64_t order() const noexcept { return n_; }
  [[nodiscard]] const Otis& otis() const noexcept { return otis_; }

  /// Linear OTIS input index of node u's transmitter alpha (1..d):
  /// d*u + alpha - 1.
  [[nodiscard]] std::int64_t input_of(std::int64_t u, int alpha) const;

  /// Input port (group, offset) form of input_of.
  [[nodiscard]] InputPort input_port_of(std::int64_t u, int alpha) const;

  /// Node that owns a given OTIS input index: floor(index / d)? No --
  /// node u owns indices d*u .. d*u + d - 1, so it is index / d.
  [[nodiscard]] std::int64_t node_of_input(std::int64_t input_index) const;

  /// Output ports of node v's receivers: output group v, offsets 0..d-1.
  [[nodiscard]] std::vector<OutputPort> receiver_ports_of(
      std::int64_t v) const;

  /// Node that owns a given OTIS output port: its output group.
  [[nodiscard]] std::int64_t node_of_output(OutputPort out) const;

  /// Node reached by node u's transmitter alpha, computed *through the
  /// OTIS map only* (no Imase-Itoh arithmetic).
  [[nodiscard]] std::int64_t neighbor_via_otis(std::int64_t u,
                                               int alpha) const;

  /// The node-level digraph induced by the OTIS wiring.
  [[nodiscard]] graph::Digraph realized_digraph() const;

  /// Machine-checked Proposition 1: realized_digraph() equals the arcs of
  /// II(d, n), with per-arc alpha agreement. On failure, `details` (if
  /// non-null) receives a human-readable mismatch description.
  [[nodiscard]] bool verify(std::string* details = nullptr) const;

 private:
  int d_;
  std::int64_t n_;
  Otis otis_;
};

}  // namespace otis::otis
