// Claim T7 (paper conclusion): "a corollary of our results is that the
// OTIS architecture can be viewed as the graph of Imase and Itoh.
// Therefore, properties of existing OTIS-based networks can be studied
// using the properties of such a graph."
//
// Two checks: (1) the OTIS(d,n) port permutation, read node-level, IS
// II(d,n) (Proposition 1, re-stated as the corollary); (2) the OTIS-G
// swap networks of ref [24] -- built here over several factor networks
// -- have their optical stage exactly described by the transpose, and
// their diameters obey the classic 2*D(G)+1 bound, with the factor
// comparison table Kautz vs de Bruijn the paper's Sec. 2.5 implies.

#include <iostream>

#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "topology/complete.hpp"
#include "topology/debruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/otis_swap.hpp"

namespace {

otis::graph::Digraph symmetrized(const otis::graph::Digraph& g) {
  std::vector<otis::graph::Arc> arcs = g.arcs();
  for (const otis::graph::Arc& a : g.arcs()) {
    arcs.push_back(otis::graph::Arc{a.head, a.tail});
  }
  return otis::graph::Digraph::from_arcs(g.order(), arcs);
}

}  // namespace

int main() {
  std::cout << "[Claim T7] the OTIS architecture as an Imase-Itoh graph\n\n";
  bool ok = true;

  // (1) OTIS == II, a few shapes beyond the figure sizes.
  otis::core::Table corollary({"OTIS(d,n)", "== II(d,n)"});
  for (auto [d, n] : {std::pair<int, std::int64_t>{2, 9},
                      std::pair<int, std::int64_t>{3, 12},
                      std::pair<int, std::int64_t>{4, 4},
                      std::pair<int, std::int64_t>{5, 11}}) {
    otis::otis::ImaseItohRealization real(d, n);
    const bool match = real.verify(nullptr);
    corollary.add("OTIS(" + std::to_string(d) + "," + std::to_string(n) +
                      ")",
                  match);
    ok = ok && match;
  }
  corollary.print(std::cout);

  // (2) OTIS-G swap networks over factor networks (ref [24]).
  std::cout << "\nOTIS-G swap networks (one OTIS(n,n) provides all optical "
               "links):\n\n";
  otis::core::Table table({"factor G", "n", "OTIS-G nodes",
                           "optical arcs", "electronic arcs", "D(G)",
                           "D(OTIS-G)", "<= 2D+1"});
  struct Factor {
    std::string name;
    otis::graph::Digraph graph;
  };
  std::vector<Factor> factors;
  factors.push_back(
      {"K4 (sym)", otis::topology::complete_digraph(
                       4, otis::topology::Loops::kWithout)});
  factors.push_back({"KG(2,2) sym",
                     symmetrized(otis::topology::Kautz(2, 2).graph())});
  factors.push_back({"B(2,2) sym",
                     symmetrized(otis::topology::DeBruijn(2, 2).graph())});
  for (const Factor& f : factors) {
    otis::topology::OtisSwapNetwork net(f.graph);
    const std::int64_t d_factor = otis::graph::diameter(f.graph);
    const std::int64_t d_net = otis::graph::diameter(net.graph());
    const bool bound = d_net <= 2 * d_factor + 1;
    table.add(f.name, f.graph.order(), net.order(),
              net.optical_arc_count(), net.electronic_arc_count(), d_factor,
              d_net, bound);
    ok = ok && bound;
  }
  table.print(std::cout);

  // Kautz-vs-de-Bruijn factor economics at equal degree/diameter.
  std::cout << "\nfactor comparison at degree 2 / diameter 3: KG(2,3) has "
            << otis::topology::Kautz(2, 3).order() << " nodes vs B(2,3) "
            << otis::topology::DeBruijn(2, 3).order()
            << " (Kautz advantage (d+1)/d)\n";
  ok = ok && otis::topology::Kautz(2, 3).order() == 12 &&
       otis::topology::DeBruijn(2, 3).order() == 8;

  std::cout << "corollary and OTIS-network bounds verified: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
