#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace otis::hypergraph {

DirectedHypergraph::DirectedHypergraph(Node node_count,
                                       std::vector<Hyperarc> hyperarcs)
    : node_count_(node_count), hyperarcs_(std::move(hyperarcs)) {
  OTIS_REQUIRE(node_count_ >= 0, "DirectedHypergraph: negative node count");
  out_index_.resize(static_cast<std::size_t>(node_count_));
  in_index_.resize(static_cast<std::size_t>(node_count_));
  for (HyperarcId h = 0; h < hyperarc_count(); ++h) {
    for (Node v : hyperarcs_[static_cast<std::size_t>(h)].sources) {
      OTIS_REQUIRE(v >= 0 && v < node_count_,
                   "DirectedHypergraph: source node out of range");
      out_index_[static_cast<std::size_t>(v)].push_back(h);
    }
    for (Node v : hyperarcs_[static_cast<std::size_t>(h)].targets) {
      OTIS_REQUIRE(v >= 0 && v < node_count_,
                   "DirectedHypergraph: target node out of range");
      in_index_[static_cast<std::size_t>(v)].push_back(h);
    }
  }
  // Flatten the coupler feeds: the out lists above are sorted by h (arcs
  // are visited in id order), so out_slot_of is a binary search already.
  feed_offsets_.reserve(static_cast<std::size_t>(hyperarc_count()) + 1);
  feed_offsets_.push_back(0);
  for (HyperarcId h = 0; h < hyperarc_count(); ++h) {
    const auto& sources = hyperarcs_[static_cast<std::size_t>(h)].sources;
    for (Node v : sources) {
      const std::int64_t slot = out_slot_of(v, h);
      OTIS_ASSERT(slot >= 0, "DirectedHypergraph: feed slot not found");
      feed_source_.push_back(v);
      feed_slot_.push_back(static_cast<std::int32_t>(slot));
    }
    feed_offsets_.push_back(static_cast<std::int64_t>(feed_source_.size()));
  }
}

std::int64_t DirectedHypergraph::out_slot_of(Node v, HyperarcId h) const {
  const auto& outs = out_hyperarcs(v);
  const auto it = std::lower_bound(outs.begin(), outs.end(), h);
  if (it == outs.end() || *it != h) {
    return -1;
  }
  return static_cast<std::int64_t>(it - outs.begin());
}

CouplerFeed DirectedHypergraph::coupler_feed(HyperarcId h) const {
  OTIS_REQUIRE(h >= 0 && h < hyperarc_count(),
               "DirectedHypergraph: hyperarc id out of range");
  const std::size_t begin =
      static_cast<std::size_t>(feed_offsets_[static_cast<std::size_t>(h)]);
  const std::size_t end =
      static_cast<std::size_t>(feed_offsets_[static_cast<std::size_t>(h) + 1]);
  return CouplerFeed{feed_source_.data() + begin, feed_slot_.data() + begin,
                     static_cast<std::int64_t>(end - begin)};
}

const Hyperarc& DirectedHypergraph::hyperarc(HyperarcId h) const {
  OTIS_REQUIRE(h >= 0 && h < hyperarc_count(),
               "DirectedHypergraph: hyperarc id out of range");
  return hyperarcs_[static_cast<std::size_t>(h)];
}

const std::vector<HyperarcId>& DirectedHypergraph::out_hyperarcs(
    Node v) const {
  OTIS_REQUIRE(v >= 0 && v < node_count_,
               "DirectedHypergraph: node out of range");
  return out_index_[static_cast<std::size_t>(v)];
}

const std::vector<HyperarcId>& DirectedHypergraph::in_hyperarcs(Node v) const {
  OTIS_REQUIRE(v >= 0 && v < node_count_,
               "DirectedHypergraph: node out of range");
  return in_index_[static_cast<std::size_t>(v)];
}

std::vector<Node> DirectedHypergraph::one_hop_targets(Node v) const {
  std::vector<Node> targets;
  for (HyperarcId h : out_hyperarcs(v)) {
    const auto& arc = hyperarcs_[static_cast<std::size_t>(h)];
    targets.insert(targets.end(), arc.targets.begin(), arc.targets.end());
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  return targets;
}

std::vector<std::int64_t> DirectedHypergraph::bfs_distances(
    Node source) const {
  OTIS_REQUIRE(source >= 0 && source < node_count_,
               "DirectedHypergraph: source out of range");
  std::vector<std::int64_t> dist(static_cast<std::size_t>(node_count_), -1);
  dist[static_cast<std::size_t>(source)] = 0;
  std::queue<Node> queue;
  queue.push(source);
  while (!queue.empty()) {
    Node u = queue.front();
    queue.pop();
    for (HyperarcId h : out_hyperarcs(u)) {
      for (Node v : hyperarcs_[static_cast<std::size_t>(h)].targets) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push(v);
        }
      }
    }
  }
  return dist;
}

std::int64_t DirectedHypergraph::diameter() const {
  std::int64_t best = 0;
  for (Node v = 0; v < node_count_; ++v) {
    auto dist = bfs_distances(v);
    for (std::int64_t d : dist) {
      if (d < 0) {
        return -1;
      }
      best = std::max(best, d);
    }
  }
  return best;
}

bool DirectedHypergraph::equivalent_to(const DirectedHypergraph& other) const {
  if (node_count_ != other.node_count_ ||
      hyperarc_count() != other.hyperarc_count()) {
    return false;
  }
  auto normalize = [](const DirectedHypergraph& hg) {
    std::vector<Hyperarc> arcs = hg.hyperarcs_;
    for (Hyperarc& a : arcs) {
      std::sort(a.sources.begin(), a.sources.end());
      std::sort(a.targets.begin(), a.targets.end());
    }
    std::sort(arcs.begin(), arcs.end(),
              [](const Hyperarc& x, const Hyperarc& y) {
                if (x.sources != y.sources) {
                  return x.sources < y.sources;
                }
                return x.targets < y.targets;
              });
    return arcs;
  };
  return normalize(*this) == normalize(other);
}

}  // namespace otis::hypergraph
