// Tests for the campaign subsystem: grid expansion, spec parsing, the
// one-compile-per-topology contract, thread-count invariance of the
// emitted JSONL/CSV streams, and resume-from-manifest. The big spec used
// below is the ISSUE acceptance grid -- >= 100 cells across SK(4,3,2),
// POPS(6,12) and SII(4,2,12) -- with a short measurement window so the
// whole file stays fast.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/grid.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "core/error.hpp"
#include "core/json.hpp"

namespace {

using namespace otis;
using campaign::CampaignOptions;
using campaign::CampaignRunner;
using campaign::CampaignSpec;
using campaign::TopologySpec;

/// The ISSUE acceptance grid: 3 topologies x 1 arbitration x 5 loads x
/// 2 wavelengths x 4 seeds = 120 cells, tiny windows.
CampaignSpec acceptance_spec() {
  CampaignSpec spec;
  spec.name = "acceptance";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2),
                     TopologySpec::pops(6, 12),
                     TopologySpec::stack_imase_itoh(4, 2, 12)};
  spec.loads = {0.1, 0.3, 0.5, 0.7, 0.9};
  spec.wavelengths = {1, 2};
  spec.seeds = {1, 2, 3, 4};
  spec.warmup_slots = 10;
  spec.measure_slots = 40;
  return spec;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_campaign_" + tag + "_" +
               std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(CampaignGrid, ExpansionCountsAndOrder) {
  const CampaignSpec spec = acceptance_spec();
  EXPECT_EQ(spec.cell_count(), 3 * 5 * 2 * 4);

  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 120u);

  std::set<std::string> ids;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<std::int64_t>(i));
    ids.insert(cells[i].id);
  }
  EXPECT_EQ(ids.size(), cells.size()) << "cell IDs must be unique";

  // Nesting order: seeds innermost, then wavelengths, loads, topology.
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[0].wavelengths, 1);
  EXPECT_EQ(cells[4].wavelengths, 2);
  EXPECT_DOUBLE_EQ(cells[0].load, 0.1);
  EXPECT_DOUBLE_EQ(cells[8].load, 0.3);
  EXPECT_EQ(cells[0].topology, 0u);
  EXPECT_EQ(cells[40].topology, 1u);
  EXPECT_EQ(cells[80].topology, 2u);

  EXPECT_EQ(cells[0].id,
            "SK(4,3,2)|token|uniform|load=0.100000|w=1|seed=1");

  // Axis values that collide in the ID's 6-decimal load form are
  // refused (a silent collision would make resume drop cells).
  CampaignSpec colliding = spec;
  colliding.loads = {0.1, 0.1000000001};
  EXPECT_THROW(campaign::expand_grid(colliding), core::Error);
}

TEST(CampaignSpecJson, ParsesFullSchema) {
  const std::string json = R"({
    "name": "parse-test",
    "topologies": [
      {"kind": "stack_kautz", "s": 6, "d": 3, "k": 2},
      {"kind": "pops", "t": 6, "g": 12},
      {"kind": "stack_imase_itoh", "s": 4, "d": 2, "n": 12}
    ],
    "arbitrations": ["token", "random", "aloha"],
    "traffic": "saturation",
    "loads": [1.0],
    "wavelengths": [1, 4],
    "seeds": [7, 8],
    "warmup_slots": 50,
    "measure_slots": 200,
    "queue_capacity": 16,
    "engine": "sharded",
    "engine_threads": 2
  })";
  const CampaignSpec spec = campaign::parse_campaign_spec(json);
  EXPECT_EQ(spec.name, "parse-test");
  ASSERT_EQ(spec.topologies.size(), 3u);
  EXPECT_EQ(spec.topologies[0].label(), "SK(6,3,2)");
  EXPECT_EQ(spec.topologies[1].label(), "POPS(6,12)");
  EXPECT_EQ(spec.topologies[2].label(), "SII(4,2,12)");
  EXPECT_EQ(spec.arbitrations.size(), 3u);
  EXPECT_EQ(spec.traffic, campaign::TrafficKind::kSaturation);
  EXPECT_EQ(spec.wavelengths, (std::vector<std::int64_t>{1, 4}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(spec.warmup_slots, 50);
  EXPECT_EQ(spec.measure_slots, 200);
  EXPECT_EQ(spec.queue_capacity, 16);
  EXPECT_EQ(spec.engine, sim::Engine::kSharded);
  EXPECT_EQ(spec.engine_threads, 2);
  EXPECT_EQ(spec.cell_count(), 3 * 3 * 1 * 2 * 2);
}

TEST(CampaignSpecJson, DefaultsAndErrors) {
  const CampaignSpec spec = campaign::parse_campaign_spec(
      R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}]})");
  EXPECT_EQ(spec.arbitrations.size(), 1u);
  EXPECT_EQ(spec.traffic, campaign::TrafficKind::kUniform);
  EXPECT_EQ(spec.engine, sim::Engine::kPhased);

  EXPECT_THROW(campaign::parse_campaign_spec("{}"), core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"({"topologies": [{"kind": "ring", "n": 4}]})"),
               core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "arbitrations": ["coin-flip"]})"),
      core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "loads": []})"),
      core::Error);
  // Misspelled keys fail loudly instead of silently running defaults.
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "measure_slot": 100000})"),
      core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3, "s": 4}]})"),
      core::Error);
}

TEST(CampaignRunnerTest, OneCompilePerTopology) {
  CampaignSpec spec = acceptance_spec();
  campaign::reset_topology_compile_count();

  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  CampaignOptions options;
  options.threads = 4;
  const campaign::CampaignReport report = runner.run(options);

  EXPECT_EQ(report.total_cells, 120);
  EXPECT_EQ(report.completed_cells, 120);
  EXPECT_EQ(report.skipped_cells, 0);
  EXPECT_EQ(report.topologies_compiled, 3);
  EXPECT_EQ(campaign::topology_compile_count(), 3)
      << "120 cells over 3 topologies must compile exactly 3 route tables";

  // 3 topologies x 5 loads x 2 wavelengths groups, each folding 4 seeds.
  EXPECT_EQ(aggregate->groups().size(), 30u);
  for (const campaign::AggregateSink::Group& group : aggregate->groups()) {
    EXPECT_EQ(group.point.trials, 4);
    EXPECT_GE(group.point.throughput_stddev, 0.0);
  }
}

TEST(CampaignRunnerTest, JsonlBitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = acceptance_spec();
  ScratchDir dir1("t1");
  ScratchDir dir8("t8");

  CampaignOptions options1;
  options1.threads = 1;
  options1.out_dir = dir1.path().string();
  CampaignRunner(spec).run(options1);

  CampaignOptions options8;
  options8.threads = 8;
  options8.out_dir = dir8.path().string();
  CampaignRunner(spec).run(options8);

  const std::string jsonl1 =
      read_file(dir1.path() / CampaignRunner::kJsonlFile);
  const std::string jsonl8 =
      read_file(dir8.path() / CampaignRunner::kJsonlFile);
  ASSERT_FALSE(jsonl1.empty());
  EXPECT_EQ(jsonl1, jsonl8) << "JSONL must be bit-identical for any "
                               "--threads value";
  EXPECT_EQ(read_file(dir1.path() / CampaignRunner::kCsvFile),
            read_file(dir8.path() / CampaignRunner::kCsvFile));

  // Every line is valid JSON with the cell's ID first.
  std::istringstream lines(jsonl1);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const core::Json row = core::Json::parse(line);
    EXPECT_TRUE(row.is_object());
    EXPECT_FALSE(row.at("cell_id").as_string().empty());
    ++count;
  }
  EXPECT_EQ(count, 120u);
}

TEST(CampaignRunnerTest, ResumeSkipsCompletedCells) {
  const CampaignSpec spec = acceptance_spec();

  // Reference: one uninterrupted run.
  ScratchDir full("full");
  CampaignOptions full_options;
  full_options.threads = 4;
  full_options.out_dir = full.path().string();
  CampaignRunner(spec).run(full_options);
  const std::string full_jsonl =
      read_file(full.path() / CampaignRunner::kJsonlFile);
  const std::string full_manifest =
      read_file(full.path() / CampaignRunner::kManifestFile);

  // Simulated interrupt: keep the first 30 cells' rows + manifest lines.
  ScratchDir part("part");
  constexpr std::size_t kDone = 30;
  auto truncate_lines = [](const std::string& text, std::size_t lines) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < lines && pos != std::string::npos; ++i) {
      pos = text.find('\n', pos);
      if (pos != std::string::npos) {
        ++pos;
      }
    }
    return text.substr(0, pos);
  };
  std::ofstream(part.path() / CampaignRunner::kJsonlFile)
      << truncate_lines(full_jsonl, kDone);
  std::ofstream(part.path() / CampaignRunner::kManifestFile)
      << truncate_lines(full_manifest, kDone);
  // CSV: header + first kDone rows.
  std::ofstream(part.path() / CampaignRunner::kCsvFile) << truncate_lines(
      read_file(full.path() / CampaignRunner::kCsvFile), kDone + 1);

  campaign::reset_topology_compile_count();
  CampaignOptions resume_options;
  resume_options.threads = 4;
  resume_options.out_dir = part.path().string();
  resume_options.resume = true;
  const campaign::CampaignReport report =
      CampaignRunner(spec).run(resume_options);

  EXPECT_EQ(report.skipped_cells, static_cast<std::int64_t>(kDone));
  EXPECT_EQ(report.completed_cells,
            static_cast<std::int64_t>(120 - kDone));
  // 30 done cells cover only the first topology's first 30 of 40 cells,
  // so all 3 topologies still have pending work.
  EXPECT_EQ(campaign::topology_compile_count(), 3);

  // After resume the output files equal the uninterrupted run's, byte
  // for byte.
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kJsonlFile),
            full_jsonl);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kManifestFile),
            full_manifest);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kCsvFile),
            read_file(full.path() / CampaignRunner::kCsvFile));

  // Resuming a finished campaign is a no-op.
  const campaign::CampaignReport again =
      CampaignRunner(spec).run(resume_options);
  EXPECT_EQ(again.skipped_cells, 120);
  EXPECT_EQ(again.completed_cells, 0);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kJsonlFile),
            full_jsonl);
}

TEST(CampaignRunnerTest, ManifestSurvivesSpecGrowth) {
  // IDs are parameter-derived, so enlarging an axis only runs new cells.
  CampaignSpec small;
  small.topologies = {TopologySpec::pops(3, 4)};
  small.loads = {0.2};
  small.seeds = {1, 2};
  small.warmup_slots = 5;
  small.measure_slots = 20;

  ScratchDir dir("grow");
  CampaignOptions options;
  options.out_dir = dir.path().string();
  CampaignRunner(small).run(options);

  CampaignSpec grown = small;
  grown.seeds = {1, 2, 3};
  options.resume = true;
  const campaign::CampaignReport report = CampaignRunner(grown).run(options);
  EXPECT_EQ(report.skipped_cells, 2);
  EXPECT_EQ(report.completed_cells, 1);
}

TEST(WorkStealingPool, RunsEveryItemOnceAndPropagatesErrors) {
  campaign::WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) {
    h = 0;
  }
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // Reusable across batches (persistent threads).
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 2);
  }
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 5) {
                            throw core::Error("boom");
                          }
                        }),
               core::Error);
}

}  // namespace
