// Claim T6 (paper Sec. 2.5, after Imase-Soneoka-Okada [17]): Kautz label
// routing extends to paths of length <= k+2 that survive d-1 node
// faults. Sweeps fault counts 0..d on several KG(d,k): for f <= d-1 the
// guarantee must hold on every random trial; at f = d it is allowed to
// break (and usually does at small sizes).

#include <iostream>

#include "core/rng.hpp"
#include "core/table.hpp"
#include "routing/fault_tolerant.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Claim T6] fault tolerance: length <= k+2 under d-1 node "
               "faults\n\n";
  otis::core::Table table({"graph", "faults", "trials", "routed",
                           "within k+2", "label-only", "bfs fallback",
                           "guarantee"});
  bool ok = true;
  struct Params {
    int d;
    int k;
  };
  for (const Params& p : {Params{2, 3}, Params{3, 2}, Params{3, 3},
                          Params{4, 2}}) {
    otis::topology::Kautz kautz(p.d, p.k);
    otis::routing::FaultTolerantKautzRouter router(kautz);
    for (int faults = 0; faults <= p.d - 1; ++faults) {
      otis::core::Rng rng(
          static_cast<std::uint64_t>(1000 * p.d + 10 * p.k + faults));
      const int trials = 150;
      std::int64_t routed = 0;
      std::int64_t within = 0;
      std::int64_t label_only = 0;
      std::int64_t fallback = 0;
      for (int trial = 0; trial < trials; ++trial) {
        auto picks = rng.sample_without_replacement(
            static_cast<std::size_t>(kautz.order()),
            static_cast<std::size_t>(faults) + 2);
        const std::int64_t source = static_cast<std::int64_t>(picks[0]);
        const std::int64_t target = static_cast<std::int64_t>(picks[1]);
        std::vector<std::int64_t> faulty(picks.begin() + 2, picks.end());
        auto route = router.route_avoiding(source, target, faulty);
        if (!route) {
          continue;
        }
        ++routed;
        const std::int64_t length =
            static_cast<std::int64_t>(route->path.size()) - 1;
        within += length <= p.k + 2 ? 1 : 0;
        if (route->used_bfs_fallback) {
          ++fallback;
        } else {
          ++label_only;
        }
      }
      const bool guarantee = routed == trials && within == routed;
      table.add("KG(" + std::to_string(p.d) + "," + std::to_string(p.k) +
                    ")",
                faults, trials, routed, within, label_only, fallback,
                guarantee ? "holds" : "VIOLATED");
      ok = ok && guarantee;
    }
  }
  table.print(std::cout);
  std::cout << "\nguarantee held for every f <= d-1 instance: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
