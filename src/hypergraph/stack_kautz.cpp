#include "hypergraph/stack_kautz.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace otis::hypergraph {

StackKautz::StackKautz(std::int64_t stacking_factor, int degree, int diameter)
    : s_(stacking_factor),
      kautz_(degree, diameter),
      stack_(stacking_factor, topology::kautz_with_loops(degree, diameter)) {
  OTIS_REQUIRE(s_ >= 1, "StackKautz: stacking factor must be >= 1");
}

HyperarcId StackKautz::arc_coupler(graph::Vertex x, int alpha) const {
  OTIS_REQUIRE(x >= 0 && x < group_count(),
               "StackKautz::arc_coupler: group out of range");
  OTIS_REQUIRE(alpha >= 1 && alpha <= kautz_.degree(),
               "StackKautz::arc_coupler: alpha out of range");
  // kautz_with_loops stores, per vertex, the d Imase-Itoh arcs followed by
  // the loop: arc alpha of group x is base arc x*(d+1) + alpha - 1.
  return stack_.coupler_of_arc(x * (kautz_.degree() + 1) + alpha - 1);
}

HyperarcId StackKautz::loop_coupler(graph::Vertex x) const {
  OTIS_REQUIRE(x >= 0 && x < group_count(),
               "StackKautz::loop_coupler: group out of range");
  return stack_.coupler_of_arc(x * (kautz_.degree() + 1) + kautz_.degree());
}

HyperarcId StackKautz::coupler_between(graph::Vertex x,
                                       graph::Vertex x_next) const {
  if (x == x_next) {
    return loop_coupler(x);
  }
  // Imase-Itoh arc label, arithmetically: x_next = (-d*x - alpha) mod n.
  // (This is on the routing hot path -- compiled-table bakes call it once
  // per (group, group) pair -- so no ImaseItoh object is constructed.)
  const std::int64_t d = kautz_.degree();
  const std::int64_t alpha =
      core::floor_mod(-d * x - x_next, kautz_.order());
  OTIS_REQUIRE(alpha >= 1 && alpha <= d,
               "StackKautz::coupler_between: groups are not adjacent");
  return arc_coupler(x, static_cast<int>(alpha));
}

}  // namespace otis::hypergraph
