#include "designs/group_block.hpp"

#include "core/error.hpp"

namespace otis::designs {

using optics::ComponentId;
using optics::Netlist;
using optics::PortRef;

GroupTxBlock build_group_tx(Netlist& netlist, std::int64_t t, std::int64_t C,
                            const std::string& prefix) {
  OTIS_REQUIRE(t >= 1 && C >= 1, "build_group_tx: t and C must be >= 1");
  GroupTxBlock block;
  block.otis = netlist.add_otis(t, C, prefix + "/otis-tx");
  block.tx.resize(static_cast<std::size_t>(t));
  for (std::int64_t j = 0; j < t; ++j) {
    for (std::int64_t c = 0; c < C; ++c) {
      ComponentId tx = netlist.add_transmitter(
          prefix + "/tx[" + std::to_string(j) + "][" + std::to_string(c) +
          "]");
      block.tx[static_cast<std::size_t>(j)].push_back(tx);
      // Transmitter slot c of processor j -> OTIS(t, C) input (j, c).
      netlist.connect(PortRef{tx, 0}, PortRef{block.otis, j * C + c});
    }
  }
  for (std::int64_t c = 0; c < C; ++c) {
    block.mux.push_back(
        netlist.add_multiplexer(t, prefix + "/mux[" + std::to_string(c) +
                                       "]"));
  }
  // OTIS output group a holds transmitter slot C-1-a of every processor,
  // so coupler slot c's multiplexer drains output group C-1-c.
  for (std::int64_t c = 0; c < C; ++c) {
    const std::int64_t out_group = C - 1 - c;
    for (std::int64_t b = 0; b < t; ++b) {
      netlist.connect(PortRef{block.otis, out_group * t + b},
                      PortRef{block.mux[static_cast<std::size_t>(c)], b});
    }
  }
  return block;
}

GroupRxBlock build_group_rx(Netlist& netlist, std::int64_t C, std::int64_t t,
                            const std::string& prefix) {
  OTIS_REQUIRE(t >= 1 && C >= 1, "build_group_rx: t and C must be >= 1");
  GroupRxBlock block;
  block.otis = netlist.add_otis(C, t, prefix + "/otis-rx");
  for (std::int64_t r = 0; r < C; ++r) {
    ComponentId splitter = netlist.add_beam_splitter(
        t, prefix + "/split[" + std::to_string(r) + "]");
    block.splitter.push_back(splitter);
    // Splitter slot r's outputs enter OTIS(C, t) input group r.
    for (std::int64_t y = 0; y < t; ++y) {
      netlist.connect(PortRef{splitter, y}, PortRef{block.otis, r * t + y});
    }
  }
  block.rx.resize(static_cast<std::size_t>(t));
  for (std::int64_t j = 0; j < t; ++j) {
    for (std::int64_t q = 0; q < C; ++q) {
      ComponentId rx = netlist.add_receiver(
          prefix + "/rx[" + std::to_string(j) + "][" + std::to_string(q) +
          "]");
      block.rx[static_cast<std::size_t>(j)].push_back(rx);
      // OTIS output group j (one per processor), offset q.
      netlist.connect(PortRef{block.otis, j * C + q}, PortRef{rx, 0});
    }
  }
  return block;
}

}  // namespace otis::designs
