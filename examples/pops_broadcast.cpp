// pops_broadcast: one-to-many communication on POPS(t, g) -- the
// operation multi-OPS networks exist for (paper Sec. 1: "messages sent by
// the processors can be broadcast to all outputs of the OPS couplers").
//
// Shows (a) a single-slot group broadcast through one coupler, (b) a
// g-slot one-to-all broadcast (the source transmits on each of its g
// couplers once), and (c) simulates an all-to-all exchange and reports
// how the single-wavelength constraint serializes it.
//
// Usage: pops_broadcast [--t=4] [--g=3] [--seed=3]

#include <iostream>
#include <memory>
#include <set>

#include "core/args.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv, {"t", "g", "seed"});
  const std::int64_t t = args.get_int("t", 4);
  const std::int64_t g = args.get_int("g", 3);

  otis::hypergraph::Pops pops(t, g);
  const auto& hg = pops.stack().hypergraph();
  std::cout << "POPS(" << t << "," << g << "): " << pops.processor_count()
            << " processors, " << pops.coupler_count()
            << " couplers of degree " << t << "\n\n";

  // (a) One coupler transmission reaches a whole group at once.
  const otis::hypergraph::Node source = pops.processor(0, 0);
  const otis::hypergraph::HyperarcId coupler = pops.coupler(0, g - 1);
  const auto& arc = hg.hyperarc(coupler);
  std::cout << "slot 1: processor " << source << " sends on coupler (0,"
            << g - 1 << "); heard by processors";
  for (otis::hypergraph::Node v : arc.targets) {
    std::cout << " " << v;
  }
  std::cout << "  -- " << t << " deliveries in one slot\n";

  // (b) One-to-all: the source uses each of its g couplers once.
  std::set<otis::hypergraph::Node> reached;
  std::int64_t slots = 0;
  for (otis::hypergraph::HyperarcId h : hg.out_hyperarcs(source)) {
    ++slots;
    for (otis::hypergraph::Node v : hg.hyperarc(h).targets) {
      reached.insert(v);
    }
  }
  std::cout << "one-to-all broadcast: " << slots
            << " coupler transmissions reach " << reached.size() << "/"
            << pops.processor_count() << " processors";
  // A processor with g transmitters statically tuned to its g couplers
  // can fire them all in the SAME slot: broadcast latency 1.
  std::cout << " (1 slot with per-coupler transmitters, " << g
            << " slots with a single tunable transmitter)\n\n";

  // (c) Saturation all-to-all under token arbitration.
  otis::sim::SimConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  config.warmup_slots = 200;
  config.measure_slots = 3000;
  otis::sim::OpsNetworkSim sim(
      pops.stack(), otis::routing::compile_pops_routes(pops),
      std::make_unique<otis::sim::SaturationTraffic>(pops.processor_count()),
      config);
  otis::sim::RunMetrics m = sim.run();

  otis::core::Table table({"saturation metric", "value"});
  table.add("throughput (pkt/node/slot)",
            m.throughput_per_node(pops.processor_count()));
  table.add("aggregate throughput (pkt/slot)",
            m.throughput_per_node(pops.processor_count()) *
                static_cast<double>(pops.processor_count()));
  table.add("coupler utilization", m.coupler_utilization(g * g));
  table.add("theoretical cap (pkt/slot)", static_cast<double>(g * g));
  table.print(std::cout);
  std::cout << "\nthe g^2 = " << g * g
            << " single-wavelength couplers bound the exchange; utilization"
               " near 1.0 means the schedule is optimal\n";
  return 0;
}
