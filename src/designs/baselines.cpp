#include "core/error.hpp"
#include "designs/builders.hpp"

namespace otis::designs {

using optics::ComponentId;
using optics::PortRef;

NetworkDesign single_ops_bus_design(std::int64_t processors) {
  OTIS_REQUIRE(processors >= 1,
               "single_ops_bus_design: need at least one processor");
  const std::int64_t n = processors;
  NetworkDesign design;
  design.name = "single-OPS bus (N=" + std::to_string(n) + ")";
  design.processor_count = n;
  design.tx_of_processor.resize(static_cast<std::size_t>(n));
  design.rx_of_processor.resize(static_cast<std::size_t>(n));

  ComponentId mux = design.netlist.add_multiplexer(n, "bus/mux");
  ComponentId splitter = design.netlist.add_beam_splitter(n, "bus/split");
  design.netlist.connect(PortRef{mux, 0}, PortRef{splitter, 0});
  for (std::int64_t p = 0; p < n; ++p) {
    ComponentId tx =
        design.netlist.add_transmitter("proc" + std::to_string(p) + "/tx");
    ComponentId rx =
        design.netlist.add_receiver("proc" + std::to_string(p) + "/rx");
    design.tx_of_processor[static_cast<std::size_t>(p)].push_back(tx);
    design.rx_of_processor[static_cast<std::size_t>(p)].push_back(rx);
    design.netlist.connect(PortRef{tx, 0}, PortRef{mux, p});
    design.netlist.connect(PortRef{splitter, p}, PortRef{rx, 0});
  }

  // The bus is one hyperarc: everyone sends, everyone hears.
  hypergraph::Hyperarc bus;
  for (std::int64_t p = 0; p < n; ++p) {
    bus.sources.push_back(p);
    bus.targets.push_back(p);
  }
  design.target_hypergraph = hypergraph::DirectedHypergraph(n, {bus});
  design.finalize();
  return design;
}

NetworkDesign fiber_point_to_point_design(const graph::Digraph& g,
                                          const std::string& name) {
  NetworkDesign design;
  design.name = name;
  design.processor_count = g.order();
  design.tx_of_processor.resize(static_cast<std::size_t>(g.order()));
  design.rx_of_processor.resize(static_cast<std::size_t>(g.order()));

  // One dedicated transmitter/fiber/receiver triple per arc, in CSR
  // order, so transmit slot c of u is its c-th out-arc and receive slots
  // follow in-arc discovery order.
  for (graph::Vertex u = 0; u < g.order(); ++u) {
    for (graph::ArcId a = g.out_begin(u); a < g.out_end(u); ++a) {
      const graph::Vertex v = g.head(a);
      ComponentId tx = design.netlist.add_transmitter(
          "proc" + std::to_string(u) + "/tx" + std::to_string(a));
      ComponentId fiber = design.netlist.add_fiber(
          "arc" + std::to_string(a) + "(" + std::to_string(u) + "->" +
          std::to_string(v) + ")");
      ComponentId rx = design.netlist.add_receiver(
          "proc" + std::to_string(v) + "/rx" + std::to_string(a));
      design.tx_of_processor[static_cast<std::size_t>(u)].push_back(tx);
      design.rx_of_processor[static_cast<std::size_t>(v)].push_back(rx);
      design.netlist.connect(PortRef{tx, 0}, PortRef{fiber, 0});
      design.netlist.connect(PortRef{fiber, 0}, PortRef{rx, 0});
    }
  }

  design.target_digraph = g;
  design.finalize();
  return design;
}

}  // namespace otis::designs
