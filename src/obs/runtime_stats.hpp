#pragma once
/// \file runtime_stats.hpp
/// The runtime-introspection channel: nondeterministic "where is the
/// runtime spending its time" metrics, strictly separate from the
/// deterministic probe/timeseries channel in telemetry.hpp.
///
/// Two-channel contract: the deterministic channel (probes, timeseries
/// rows) is derived from simulation state only and its bytes are part
/// of the engines' thread-count-invariance guarantee. Everything here
/// is wall-clock derived -- barrier waits, steal counts, mailbox
/// pressure -- so it may differ run to run and MUST never feed back
/// into the simulation or the deterministic outputs. Runtime stats are
/// not checkpointed for the same reason: a resumed run restarts its
/// runtime counters.
///
/// Cost model mirrors SimConfig::telemetry: `SimConfig::runtime_stats`
/// is a shared_ptr defaulting to null, and the sharded engines capture
/// `rt != nullptr && rt->active()` ONCE before the worker loop -- the
/// attached-but-disabled mode costs one pointer+flag test per run, a
/// bar the BENCH `runtime_stats` section enforces at <= 2%. With an
/// active session each worker keeps its own ShardRuntime slot (no
/// sharing, no atomics on the hot path) and the engine folds them into
/// the session once after the join.
///
/// Output is schema-headered JSONL like the timeseries writer: one
/// `{"type":"schema","channel":"runtime",...}` row per session label,
/// then `shard` / `workers` / `cell_summary` rows. A shared writer lets
/// a campaign stream every cell's rows into one `runtime.jsonl`.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace otis::obs {

/// Monotonic nanoseconds for runtime-stat deltas (never a simulation
/// input).
[[nodiscard]] inline std::int64_t runtime_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What to record. The all-defaults config means "attached but inert":
/// sessions built from it report active() == false and engines collect
/// nothing -- the BENCH disabled mode.
struct RuntimeStatsConfig {
  /// JSONL output for runtime rows; empty with `collect` set counts
  /// rows without writing (the bench's discard mode).
  std::string path;
  /// Force collection without a file sink. A non-empty path implies it.
  bool collect = false;

  [[nodiscard]] bool enabled() const { return collect || !path.empty(); }
};

/// One engine shard's runtime counters for a whole run. Filled by the
/// owning worker only (stack/vector slot per shard, never shared), so
/// collection adds no synchronization to the engines.
struct ShardRuntime {
  std::int64_t barrier_wait_ns = 0;  ///< blocked in arrive_and_wait
  std::int64_t work_ns = 0;          ///< advancing outside barriers
  std::int64_t windows = 0;          ///< barrier cycles (slots/windows)
  /// Conservative-window accounting (async-sharded; slot engines count
  /// 1 per slot for both): sum of executed widths vs the configured
  /// lookahead -- used < available means horizon/drain clipping.
  std::int64_t lookahead_used = 0;
  std::int64_t lookahead_available = 0;
  /// Cross-shard mailbox pressure. Replays are counted at the consumer
  /// (calendar push_keyed of mailed arrivals); across a completed run
  /// total sends == total replays.
  std::int64_t mailbox_msgs_sent = 0;
  std::int64_t mailbox_bytes_sent = 0;
  std::int64_t mailbox_msgs_replayed = 0;
  std::int64_t calendar_peak = 0;  ///< max pending calendar events seen
};

/// One pool worker's lifetime counters (core::WorkStealingPool).
struct WorkerRuntime {
  std::int64_t busy_ns = 0;   ///< executing items
  std::int64_t idle_ns = 0;   ///< blocked waiting for a batch
  std::int64_t steal_ns = 0;  ///< scanning/locking queues for work
  std::int64_t items = 0;     ///< items executed
  std::int64_t steals = 0;    ///< items taken from a victim's deque
};

/// Thread-safe append-only JSONL stream for runtime rows, shared
/// across a campaign's cells. An empty path counts rows only.
class RuntimeStatsWriter {
 public:
  explicit RuntimeStatsWriter(std::string path);

  void append(const std::string& line);
  void flush();
  void close();
  [[nodiscard]] std::int64_t rows() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::int64_t rows_ = 0;
};

/// One run's (or one campaign cell's) runtime-stats session. Engines
/// reach it through `SimConfig::runtime_stats` and call active() once
/// and record_shards() once; the campaign runner adds record_workers()
/// for the pool and reads stall_summary() for its progress lines.
class RuntimeStats {
 public:
  /// Standalone session owning its writer.
  static std::shared_ptr<RuntimeStats> create(
      const RuntimeStatsConfig& config);

  /// Campaign session sharing one writer across cells; `label` tags
  /// every row (the cell id, or "campaign" for pool-level rows).
  static std::shared_ptr<RuntimeStats> attach(
      std::shared_ptr<RuntimeStatsWriter> writer, std::string label);

  /// False for default-config sessions: engines collect nothing.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Folds a completed run's per-shard counters into the session and
  /// emits one `shard` row per entry. `engine` names the loop (e.g.
  /// "phased_sharded"), `mode` is "open_loop" or "workload", `wall_ns`
  /// the worker-loop wall time. Thread-safe across sessions (rows go
  /// through the shared writer); a session itself is used by one cell.
  void record_shards(const std::string& engine, const std::string& mode,
                     std::int64_t wall_ns,
                     const std::vector<ShardRuntime>& shards);

  /// Emits one `workers` row per pool worker.
  void record_workers(std::int64_t wall_ns,
                      const std::vector<WorkerRuntime>& workers);

  /// Stall attribution over everything record_shards() has folded in:
  /// a shard's blame is its wait deficit against the slowest-waiting
  /// shard (the straggler waits least -- everyone else waits for it),
  /// normalized over all shards.
  struct StallSummary {
    std::int64_t shards = 0;            ///< shard rows folded in
    std::int64_t wall_ns = 0;           ///< summed run wall time
    std::int64_t barrier_wait_ns = 0;   ///< summed across shards
    double stall_share = 0.0;  ///< barrier wait / total shard time
    std::int64_t blamed_shard = -1;  ///< top straggler (-1: balanced)
    double blamed_share = 0.0;       ///< its fraction of the blame
  };
  [[nodiscard]] StallSummary stall_summary() const;

  /// Emits the `cell_summary` row from stall_summary() (no-op when no
  /// shard rows were recorded) and flushes. Call once per cell.
  void finish();

  [[nodiscard]] std::int64_t rows() const;
  /// Closes an owned writer (shared writers are closed by their owner).
  void close();

 private:
  RuntimeStats(std::shared_ptr<RuntimeStatsWriter> writer, std::string label,
               bool active, bool owns_writer);

  void ensure_header();
  void append_row(const std::string& line);

  std::string label_;
  bool active_ = false;
  bool owns_writer_ = false;
  bool header_written_ = false;
  mutable std::mutex mutex_;
  std::vector<ShardRuntime> folded_;  ///< per-shard totals across runs
  std::int64_t wall_ns_ = 0;
  std::shared_ptr<RuntimeStatsWriter> writer_;
};

}  // namespace otis::obs
