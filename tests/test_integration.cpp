// Cross-module integration tests: the full pipeline the paper implies --
// build a topology, realize it optically with OTIS, verify the optics by
// tracing, route over the abstract network, and simulate traffic on it.
// Each test stitches at least three modules together.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "graph/algorithms.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "optics/trace.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/kautz_routing.hpp"
#include "routing/stack_routing.hpp"
#include "sim/experiment.hpp"
#include "sim/ops_network.hpp"
#include "topology/kautz.hpp"

namespace otis {
namespace {

TEST(Integration, KautzWordsNameTheOtisRealizedNetwork) {
  // Corollary 1 end-to-end: take the OTIS-realized II(2,12) digraph,
  // treat it as KG(2,3), and check that word routing describes actual
  // arcs of the *realized* graph.
  otis::ImaseItohRealization real(2, 12);
  graph::Digraph realized = real.realized_digraph();
  topology::Kautz kautz(2, 3);
  ASSERT_TRUE(realized.same_arcs(kautz.graph()));
  routing::KautzRouter router(kautz);
  for (std::int64_t u = 0; u < 12; ++u) {
    for (std::int64_t v = 0; v < 12; ++v) {
      auto path = router.route(u, v);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(realized.has_arc(path[i], path[i + 1]));
      }
    }
  }
}

TEST(Integration, StackKautzDesignMatchesAbstractNetworkHopForHop) {
  // Trace the SK(2,2,2) optical design; the coupler-level reachability
  // extracted from light paths must support every route the stack router
  // produces.
  hypergraph::StackKautz sk(2, 2, 2);
  designs::NetworkDesign design = designs::stack_kautz_design(2, 2, 2);
  ASSERT_TRUE(designs::verify_design(design).ok);

  // Build processor-level one-hop reachability from the traced optics.
  std::vector<std::set<std::int64_t>> optical_reach(
      static_cast<std::size_t>(design.processor_count));
  for (std::int64_t p = 0; p < design.processor_count; ++p) {
    for (optics::ComponentId tx :
         design.tx_of_processor[static_cast<std::size_t>(p)]) {
      for (const auto& e :
           optics::trace_from_transmitter(design.netlist, tx, {})) {
        optical_reach[static_cast<std::size_t>(p)].insert(
            design.processor_of_receiver(e.receiver));
      }
    }
  }

  routing::StackKautzRouter router(sk);
  for (std::int64_t src = 0; src < sk.processor_count(); ++src) {
    for (std::int64_t dst = 0; dst < sk.processor_count(); ++dst) {
      std::int64_t current = src;
      for (const routing::StackHop& hop : router.route(src, dst)) {
        EXPECT_TRUE(optical_reach[static_cast<std::size_t>(current)].count(
            hop.relay))
            << "optics cannot carry hop " << current << " -> " << hop.relay;
        current = hop.relay;
      }
    }
  }
}

TEST(Integration, OpticalHypergraphEqualsModelHypergraph) {
  // The hypergraph reconstructed from light tracing must be the model
  // hypergraph of SK (already asserted inside verify_design); also check
  // the one-hop sets coincide node by node.
  hypergraph::StackKautz sk(3, 2, 2);
  designs::NetworkDesign design = designs::stack_kautz_design(3, 2, 2);
  ASSERT_TRUE(designs::verify_design(design).ok);
  for (std::int64_t p = 0; p < sk.processor_count(); ++p) {
    std::set<std::int64_t> optical;
    for (optics::ComponentId tx :
         design.tx_of_processor[static_cast<std::size_t>(p)]) {
      for (const auto& e :
           optics::trace_from_transmitter(design.netlist, tx, {})) {
        optical.insert(design.processor_of_receiver(e.receiver));
      }
    }
    auto model = sk.stack().hypergraph().one_hop_targets(p);
    std::set<std::int64_t> model_set(model.begin(), model.end());
    EXPECT_EQ(optical, model_set) << "processor " << p;
  }
}

TEST(Integration, SimulatedHopsMatchRouterDistances) {
  // Run the simulator at trivial load on SK(2,2,2) and check that
  // delivered latency is at least the router distance (queueing can only
  // add slots, and at load 0.005 it rarely does).
  hypergraph::StackKautz sk(2, 2, 2);
  sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 6000;
  config.seed = 42;
  sim::OpsNetworkSim sim_instance(
      sk.stack(), routing::compile_stack_kautz_routes(sk),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.005),
      config);
  sim::RunMetrics m = sim_instance.run();
  ASSERT_GT(m.latency.count(), 50);
  // Distances on SK(2,2,2) average somewhere in (1, 2]; simulated mean
  // latency at near-zero load must be close to that range.
  EXPECT_GE(m.latency.mean(), 1.0);
  EXPECT_LE(m.latency.mean(), 2.6);
}

TEST(Integration, PowerBudgetBoundsStackingOfVerifiedDesign) {
  // The max path loss of a verified SK design must equal the canonical
  // hop loss formula for its stacking factor.
  const std::int64_t s = 4;
  designs::NetworkDesign design = designs::stack_kautz_design(s, 2, 2);
  designs::VerificationResult result = designs::verify_design(design);
  ASSERT_TRUE(result.ok);
  optics::LossModel model;
  // Non-loop paths: tx + group OTIS + mux + central OTIS + splitter +
  // group OTIS + rx == canonical_hop_loss_db(s).
  EXPECT_NEAR(result.max_loss_db, optics::canonical_hop_loss_db(model, s),
              1e-9);
  // A budget that cannot close s=4 must reject the design's max loss.
  optics::PowerBudget tight;
  tight.transmit_power_dbm = 0.0;
  tight.receiver_sensitivity_dbm =
      -(optics::canonical_hop_loss_db(model, 2));  // only s<=~2 feasible
  tight.system_margin_db = 0.0;
  EXPECT_LT(optics::max_stacking_factor(tight, model), s);
}

TEST(Integration, ImaseItohRouterDrivesRealizedPointToPointDesign) {
  // Route over the *traced* point-to-point II design: every hop of the
  // arithmetic route must appear as a traced transmitter->receiver pair.
  const int d = 3;
  const std::int64_t n = 20;
  designs::NetworkDesign design = designs::imase_itoh_design(d, n);
  ASSERT_TRUE(designs::verify_design(design).ok);
  std::vector<std::set<std::int64_t>> reach(static_cast<std::size_t>(n));
  for (std::int64_t p = 0; p < n; ++p) {
    for (optics::ComponentId tx :
         design.tx_of_processor[static_cast<std::size_t>(p)]) {
      for (const auto& e :
           optics::trace_from_transmitter(design.netlist, tx, {})) {
        reach[static_cast<std::size_t>(p)].insert(
            design.processor_of_receiver(e.receiver));
      }
    }
  }
  routing::ImaseItohRouter router(topology::ImaseItoh(d, n));
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t v = 0; v < n; ++v) {
      auto path = router.route(u, v);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(reach[static_cast<std::size_t>(path[i])].count(
            path[i + 1]));
      }
    }
  }
}

TEST(Integration, PopsVsStackKautzHardwareShape) {
  // The paper's architectural trade-off at comparable scale: POPS needs
  // g^2 couplers for diameter 1; stack-Kautz needs far fewer couplers at
  // the price of diameter k. Compare POPS(6,12) and SK(6,3,2), both 72
  // processors with degree-6 couplers.
  designs::NetworkDesign pops = designs::pops_design(6, 12);
  designs::NetworkDesign sk = designs::stack_kautz_design(6, 3, 2);
  ASSERT_TRUE(designs::verify_design(pops).ok);
  ASSERT_TRUE(designs::verify_design(sk).ok);
  designs::BillOfMaterials pops_bom = designs::bill_of_materials(pops.netlist);
  designs::BillOfMaterials sk_bom = designs::bill_of_materials(sk.netlist);
  EXPECT_EQ(pops_bom.multiplexers, 144);  // g^2
  EXPECT_EQ(sk_bom.multiplexers, 48);     // groups * (d+1)
  EXPECT_LT(sk_bom.multiplexers, pops_bom.multiplexers);
  // POPS buys diameter 1; SK pays diameter k = 2.
  hypergraph::Pops pops_model(6, 12);
  hypergraph::StackKautz sk_model(6, 3, 2);
  EXPECT_EQ(pops_model.stack().hypergraph().diameter(), 1);
  EXPECT_EQ(sk_model.stack().hypergraph().diameter(), 2);
  // Per-processor transceiver cost: POPS needs g = 12 transmitters,
  // SK needs d+1 = 4.
  EXPECT_EQ(pops_bom.transmitters / 72, 12);
  EXPECT_EQ(sk_bom.transmitters / 72, 4);
}

TEST(Integration, SweepSmallDesignsAllVerify) {
  // A broad safety net across builders and parameters.
  for (std::int64_t s : {1, 2, 3}) {
    for (int d = 2; d <= 3; ++d) {
      designs::NetworkDesign sk = designs::stack_kautz_design(s, d, 2);
      EXPECT_TRUE(designs::verify_design(sk).ok) << sk.name;
    }
  }
  for (std::int64_t t : {2, 3}) {
    for (std::int64_t g : {2, 3}) {
      designs::NetworkDesign pops = designs::pops_design(t, g);
      EXPECT_TRUE(designs::verify_design(pops).ok) << pops.name;
    }
  }
}

}  // namespace
}  // namespace otis
