// Claim T1 (paper Sec. 2.5): Kautz graph parameters. KG(d,k) has
// N = d^{k-1}(d+1) nodes, constant degree d, diameter exactly k, is
// Eulerian and Hamiltonian, and beats de Bruijn by (d+1)/d nodes at the
// same degree/diameter. Also records the paper's "KG(5,4) has 3750
// nodes" typo (the formula gives 750; 3750 is KG(5,5)).

#include <iostream>

#include "core/mathutil.hpp"
#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Claim T1] Kautz parameters N = d^{k-1}(d+1), degree d, "
               "diameter k\n\n";
  otis::core::Table table({"d", "k", "N", "N formula", "diameter (BFS)",
                           "regular", "Eulerian", "Hamiltonian",
                           "de Bruijn N"});
  bool ok = true;
  for (int d = 2; d <= 5; ++d) {
    for (int k = 1; k <= 4; ++k) {
      otis::topology::Kautz kautz(d, k);
      if (kautz.order() > 800) {
        continue;  // keep BFS all-pairs cheap
      }
      const std::int64_t formula = otis::core::kautz_order(d, k);
      const std::int64_t bfs_diameter = otis::graph::diameter(kautz.graph());
      const bool regular = kautz.graph().is_regular(d);
      const bool eulerian = otis::graph::is_eulerian(kautz.graph());
      // Hamiltonicity by search only on small instances.
      const bool check_ham = kautz.order() <= 40;
      const bool hamiltonian =
          check_ham
              ? otis::graph::find_hamiltonian_cycle(kautz.graph()).has_value()
              : true;
      otis::topology::DeBruijn db(d, k);
      table.add(d, k, kautz.order(), formula, bfs_diameter, regular,
                eulerian, check_ham ? (hamiltonian ? "yes" : "NO") : "(skip)",
                db.order());
      ok = ok && kautz.order() == formula && bfs_diameter == k && regular &&
           eulerian && hamiltonian && kautz.order() == db.order() / d * (d + 1);
    }
  }
  table.print(std::cout);

  std::cout << "\npaper example check: the text says KG(5,4) has 3750 "
               "nodes; the formula d^{k-1}(d+1) gives "
            << otis::core::kautz_order(5, 4) << " for KG(5,4) and "
            << otis::core::kautz_order(5, 5)
            << " for KG(5,5) -- the text is a typo for KG(5,5)\n"
            << "all parameter claims verified: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
