#pragma once
/// \file group_block.hpp
/// The paper's Sec. 3.1 building blocks: optically connecting a group of
/// processors to its OPS couplers with one OTIS per direction.
///
/// Transmit side (Fig. 8): a group of `t` processors, each with `C`
/// transmitters, feeds `C` optical multiplexers through one OTIS(t, C):
/// transmitter slot c of processor j enters OTIS input (j, c) and, by the
/// transpose, lands in output group C-1-c -- so multiplexer for coupler
/// slot c collects t beams from OTIS output group C-1-c.
///
/// Receive side (Fig. 9): `C` beam-splitters reach the `t` processors
/// (each with C receivers) through one OTIS(C, t): splitter slot r's
/// output y enters OTIS input (r, y) and lands at processor t-1-y's
/// receiver C-1-r.

#include <cstdint>
#include <string>
#include <vector>

#include "optics/netlist.hpp"

namespace otis::designs {

/// Components created by build_group_tx.
struct GroupTxBlock {
  /// tx[j][c]: transmitter slot c of in-group processor j.
  std::vector<std::vector<optics::ComponentId>> tx;
  optics::ComponentId otis = -1;  ///< the OTIS(t, C) lens pair
  /// mux[c]: multiplexer of the group's coupler slot c.
  std::vector<optics::ComponentId> mux;
};

/// Components created by build_group_rx.
struct GroupRxBlock {
  /// splitter[r]: beam-splitter of incoming coupler slot r.
  std::vector<optics::ComponentId> splitter;
  optics::ComponentId otis = -1;  ///< the OTIS(C, t) lens pair
  /// rx[j][q]: receiver slot q of in-group processor j.
  std::vector<std::vector<optics::ComponentId>> rx;
};

/// Builds and fully wires one transmit-side group block (t processors x
/// C transmitters -> OTIS(t, C) -> C multiplexers of fan-in t). The
/// multiplexers' outputs are left unwired for the caller (they go to the
/// optical interconnection network). `prefix` labels the components.
[[nodiscard]] GroupTxBlock build_group_tx(optics::Netlist& netlist,
                                          std::int64_t t, std::int64_t C,
                                          const std::string& prefix);

/// Builds and wires one receive-side group block (C beam-splitters of
/// fan-out t -> OTIS(C, t) -> t processors x C receivers). The splitters'
/// inputs are left unwired for the caller.
[[nodiscard]] GroupRxBlock build_group_rx(optics::Netlist& netlist,
                                          std::int64_t C, std::int64_t t,
                                          const std::string& prefix);

}  // namespace otis::designs
