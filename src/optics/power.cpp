#include "optics/power.hpp"

#include <cmath>

#include "core/error.hpp"

namespace otis::optics {

double LossModel::beam_splitter_db(std::int64_t fan_out) const {
  OTIS_REQUIRE(fan_out >= 1, "beam_splitter_db: fan-out must be >= 1");
  return 10.0 * std::log10(static_cast<double>(fan_out)) + splitter_excess_db;
}

double canonical_hop_loss_db(const LossModel& model, std::int64_t s) {
  return model.transmitter_coupling_db + model.otis_lens_pair_db +
         model.multiplexer_db + model.otis_lens_pair_db +
         model.beam_splitter_db(s) + model.otis_lens_pair_db +
         model.receiver_coupling_db;
}

std::int64_t max_stacking_factor(const PowerBudget& budget,
                                 const LossModel& model) {
  if (!budget.feasible(canonical_hop_loss_db(model, 1))) {
    return 0;
  }
  // Loss grows monotonically in s; exponential + binary search keeps this
  // O(log s_max) even for generous budgets.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (budget.feasible(canonical_hop_loss_db(model, hi))) {
    lo = hi;
    if (hi > (std::int64_t{1} << 40)) {
      return hi;  // budget is effectively unbounded
    }
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (budget.feasible(canonical_hop_loss_db(model, mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace otis::optics
