#pragma once
/// \file kautz_routing.hpp
/// Label-induced shortest-path routing on Kautz graphs (paper Sec. 2.5:
/// "routing on the Kautz graph is very simple, since a shortest path
/// routing algorithm (every path is of length at most k) is induced by
/// the label of the nodes").
///
/// The algorithm: find the longest suffix of the source word that is a
/// prefix of the destination word (overlap l), then shift in the
/// destination's remaining k-l letters one per hop. Because any walk of
/// length m from x to y forces suffix_{k-m}(x) = prefix_{k-m}(y), the
/// label route of length k - l is provably a *shortest* path, which the
/// tests also cross-check against BFS.

#include <cstdint>
#include <vector>

#include "topology/kautz.hpp"

namespace otis::routing {

/// Shortest-path router over Kautz word labels. Owns a copy of the Kautz
/// description (cheap relative to the graphs involved).
class KautzRouter {
 public:
  explicit KautzRouter(topology::Kautz kautz);

  [[nodiscard]] const topology::Kautz& kautz() const noexcept {
    return kautz_;
  }

  /// Longest l in [0, k] with suffix_l(x) == prefix_l(y).
  [[nodiscard]] static int overlap(const topology::Word& x,
                                   const topology::Word& y);

  /// Exact distance: k - overlap (0 when x == y).
  [[nodiscard]] int distance(std::int64_t source, std::int64_t target) const;

  /// The label route as a word sequence, source first, target last.
  [[nodiscard]] std::vector<topology::Word> route_words(
      const topology::Word& source, const topology::Word& target) const;

  /// The label route as vertex numbers.
  [[nodiscard]] std::vector<std::int64_t> route(std::int64_t source,
                                                std::int64_t target) const;

  /// Self-routing step: the word after one hop toward `target` (requires
  /// current != target). Each node can compute this from labels alone --
  /// the property that makes the network's distributed control simple.
  [[nodiscard]] topology::Word next_hop_word(
      const topology::Word& current, const topology::Word& target) const;

  /// Vertex-number form of next_hop_word.
  [[nodiscard]] std::int64_t next_hop(std::int64_t current,
                                      std::int64_t target) const;

 private:
  topology::Kautz kautz_;
};

}  // namespace otis::routing
