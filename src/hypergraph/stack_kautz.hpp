#pragma once
/// \file stack_kautz.hpp
/// The stack-Kautz network SK(s, d, k) (paper Def. 4; Coudert-Ferreira-
/// Munoz IPPS 1998) -- the paper's flagship multi-hop multi-OPS topology.
///
/// SK(s, d, k) = sigma(s, KG+(d, k)): groups of s processors wired along
/// the Kautz graph with loops, so every group owns d+1 outgoing OPS
/// couplers of degree s (d Kautz arcs + 1 loop) and listens on d+1.
/// N = s * d^{k-1} (d+1) processors, processor degree d+1, diameter k.
/// A processor is labeled (x, y): x the Kautz group (word label via
/// topology::Kautz), y its index in the group.

#include <cstdint>

#include "hypergraph/stack_graph.hpp"
#include "topology/kautz.hpp"

namespace otis::hypergraph {

/// SK(s, d, k) with Kautz word labels and coupler arithmetic exposed.
class StackKautz {
 public:
  /// Requires s >= 1, d >= 1, k >= 1.
  StackKautz(std::int64_t stacking_factor, int degree, int diameter);

  [[nodiscard]] std::int64_t stacking_factor() const noexcept { return s_; }
  [[nodiscard]] int kautz_degree() const noexcept { return kautz_.degree(); }
  /// Processor degree d+1 (Kautz arcs plus the loop coupler).
  [[nodiscard]] int processor_degree() const noexcept {
    return kautz_.degree() + 1;
  }
  [[nodiscard]] int diameter() const noexcept { return kautz_.diameter(); }
  /// Number of groups: d^{k-1}(d+1).
  [[nodiscard]] std::int64_t group_count() const noexcept {
    return kautz_.order();
  }
  /// N = s * d^{k-1}(d+1).
  [[nodiscard]] std::int64_t processor_count() const noexcept {
    return s_ * kautz_.order();
  }
  /// d^{k-1}(d+1)^2 couplers: (d+1) per group.
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return group_count() * (kautz_.degree() + 1);
  }

  /// The underlying Kautz graph (word labels, Imase-Itoh numbering).
  [[nodiscard]] const topology::Kautz& kautz() const noexcept {
    return kautz_;
  }

  /// The stack-graph sigma(s, KG+(d,k)).
  [[nodiscard]] const StackGraph& stack() const noexcept { return stack_; }

  /// Group (Kautz vertex) of a processor.
  [[nodiscard]] graph::Vertex group_of(Node p) const {
    return stack_.project(p);
  }

  /// Index of a processor inside its group.
  [[nodiscard]] std::int64_t index_in_group(Node p) const {
    return stack_.copy_index(p);
  }

  /// Processor id of (group x, index y).
  [[nodiscard]] Node processor(graph::Vertex x, std::int64_t y) const {
    return stack_.node_of(x, y);
  }

  /// Coupler carrying group x's Kautz arc with Imase-Itoh label alpha
  /// (1 <= alpha <= d).
  [[nodiscard]] HyperarcId arc_coupler(graph::Vertex x, int alpha) const;

  /// The loop coupler of group x (intra-group one-to-many).
  [[nodiscard]] HyperarcId loop_coupler(graph::Vertex x) const;

  /// Coupler from group x to adjacent group x'; requires the Kautz arc
  /// x -> x' (or x == x' for the loop) to exist.
  [[nodiscard]] HyperarcId coupler_between(graph::Vertex x,
                                           graph::Vertex x_next) const;

 private:
  std::int64_t s_;
  topology::Kautz kautz_;
  StackGraph stack_;
};

}  // namespace otis::hypergraph
