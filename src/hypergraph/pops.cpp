#include "hypergraph/pops.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"
#include "topology/complete.hpp"

namespace otis::hypergraph {

Pops::Pops(std::int64_t group_size, std::int64_t group_count)
    : t_(group_size),
      g_(group_count),
      stack_(group_size,
             topology::complete_digraph(group_count, topology::Loops::kWith)) {
  OTIS_REQUIRE(t_ >= 1, "Pops: group size must be >= 1");
  OTIS_REQUIRE(g_ >= 1, "Pops: group count must be >= 1");
}

HyperarcId Pops::coupler(std::int64_t i, std::int64_t j) const {
  OTIS_REQUIRE(i >= 0 && i < g_, "Pops::coupler: source group out of range");
  OTIS_REQUIRE(j >= 0 && j < g_,
               "Pops::coupler: destination group out of range");
  // K+_g stores the arcs of tail i in Imase-Itoh order: position alpha-1
  // holds head (g - alpha) mod g. Solve for alpha from j:
  //   j = (-g*i - alpha) mod g = (-alpha) mod g  =>  alpha = (-j) mod g,
  // with alpha == 0 meaning alpha = g (the loop head j == 0 case).
  std::int64_t alpha = core::floor_mod(-j, g_);
  if (alpha == 0) {
    alpha = g_;
  }
  return stack_.coupler_of_arc(i * g_ + alpha - 1);
}

std::pair<std::int64_t, std::int64_t> Pops::coupler_label(HyperarcId h) const {
  OTIS_REQUIRE(h >= 0 && h < coupler_count(),
               "Pops::coupler_label: coupler out of range");
  const graph::Arc arc = stack_.base().arc(stack_.arc_of_coupler(h));
  return {arc.tail, arc.head};
}

}  // namespace otis::hypergraph
