// Perf F5 (ablation): the stacking factor s is THE design knob of the
// stack-graph approach -- it multiplies processors without adding
// couplers or OTIS stages, at the price of 10*log10(s) dB splitting loss
// and more contention per coupler. Sweeps SK(s,3,2): N, saturation
// throughput per node, aggregate throughput, max path loss, and power
// feasibility under the nominal budget.
//
// Expected shape: aggregate saturation throughput is bounded by the
// coupler pool (48 couplers, ~1.9 mean hops), so per-node throughput
// falls roughly as 1/s while N rises as s; loss rises logarithmically
// until the budget cuts off.

#include <iostream>
#include <memory>

#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "optics/power.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"

namespace {

double saturation_throughput(std::int64_t s, std::uint64_t seed) {
  otis::hypergraph::StackKautz sk(s, 3, 2);
  otis::sim::SimConfig config;
  config.warmup_slots = 200;
  config.measure_slots = 800;
  config.seed = seed;
  otis::sim::OpsNetworkSim sim(
      sk.stack(), otis::routing::compile_stack_kautz_routes(sk),
      std::make_unique<otis::sim::SaturationTraffic>(sk.processor_count()),
      config);
  return sim.run().throughput_per_node(sk.processor_count());
}

}  // namespace

int main() {
  std::cout << "[Perf F5] stacking-factor ablation on SK(s,3,2)\n\n";
  otis::optics::LossModel model;
  otis::optics::PowerBudget budget;  // nominal

  otis::core::Table table({"s", "N", "couplers", "sat thr/node",
                           "sat aggregate", "max loss dB", "budget ok"});
  double previous_aggregate = 0.0;
  bool ok = true;
  std::vector<double> per_node;
  for (std::int64_t s : {1, 2, 4, 6, 8, 12}) {
    otis::hypergraph::StackKautz sk(s, 3, 2);
    const double thr = saturation_throughput(s, 7);
    const double aggregate =
        thr * static_cast<double>(sk.processor_count());
    const double loss =
        otis::optics::canonical_hop_loss_db(model, s);
    table.add(s, sk.processor_count(), sk.coupler_count(), thr, aggregate,
              otis::core::format_double(loss, 2), budget.feasible(loss));
    per_node.push_back(thr);
    previous_aggregate = aggregate;
  }
  (void)previous_aggregate;
  table.print(std::cout);

  // Shape: per-node throughput decreases in s (same coupler pool shared
  // by more processors); the design remains budget-feasible across the
  // sweep under the nominal budget.
  for (std::size_t i = 1; i < per_node.size(); ++i) {
    ok = ok && per_node[i] <= per_node[i - 1] + 0.02;
  }
  // And the optics verify for a couple of sizes.
  for (std::int64_t s : {1, 6}) {
    ok = ok &&
         otis::designs::verify_design(otis::designs::stack_kautz_design(s, 3,
                                                                        2))
             .ok;
  }
  std::cout << "\nper-node saturation throughput non-increasing in s, "
               "designs verified: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
