// Fig. 12 of the paper: the complete optical design of SK(6,3,2) --
// the paper's headline construction. The text states the exact inventory:
// "12 OTIS(6,4), 12 OTIS(4,6), 48 optical multiplexers, 48 beam-splitters
// and one OTIS(3,12)"; SK(6,3,2) has "72 processors (12 groups of 6
// processors) of degree 4, connected in a network of diameter 2".
// Regenerates the design, checks the inventory NUMBER FOR NUMBER, and
// verifies the optics realize the SK(6,3,2) hypergraph by tracing all
// 1728 lightpaths.

#include <iostream>

#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "hypergraph/stack_kautz.hpp"

int main() {
  std::cout << "[Fig. 12] optical design of SK(6,3,2) using OTIS\n\n";
  otis::designs::NetworkDesign design =
      otis::designs::stack_kautz_design(6, 3, 2);
  otis::designs::BillOfMaterials bom =
      otis::designs::bill_of_materials(design.netlist);
  otis::hypergraph::StackKautz sk(6, 3, 2);

  struct Claim {
    std::string what;
    std::int64_t measured;
    std::int64_t paper;
  };
  const Claim claims[] = {
      {"OTIS(6,4) blocks", bom.otis_blocks.count({6, 4})
                               ? bom.otis_blocks.at({6, 4})
                               : 0,
       12},
      {"OTIS(4,6) blocks", bom.otis_blocks.count({4, 6})
                               ? bom.otis_blocks.at({4, 6})
                               : 0,
       12},
      {"OTIS(3,12) blocks", bom.otis_blocks.count({3, 12})
                                ? bom.otis_blocks.at({3, 12})
                                : 0,
       1},
      {"optical multiplexers", bom.multiplexers, 48},
      {"beam-splitters", bom.beam_splitters, 48},
      {"loop-back fibers", bom.fibers, 12},
      {"processors", design.processor_count, 72},
      {"transmitters (72 x degree 4)", bom.transmitters, 288},
      {"receivers", bom.receivers, 288},
      {"network diameter", sk.stack().hypergraph().diameter(), 2},
  };

  otis::core::Table table({"quantity", "measured", "paper", "match"});
  bool counts_ok = true;
  for (const Claim& c : claims) {
    table.add(c.what, c.measured, c.paper, c.measured == c.paper);
    counts_ok = counts_ok && c.measured == c.paper;
  }
  table.print(std::cout);

  otis::designs::VerificationResult v = otis::designs::verify_design(design);
  std::cout << "\nlight tracing: " << v.lightpaths << " paths across "
            << v.couplers_seen << " couplers, max loss "
            << otis::core::format_double(v.max_loss_db, 2) << " dB\n"
            << "optics realize the SK(6,3,2) stack-graph: "
            << (v.ok ? "yes" : ("NO: " + v.details)) << "\n"
            << "paper inventory reproduced exactly: "
            << (counts_ok ? "yes" : "NO") << "\n";
  return v.ok && counts_ok ? 0 : 1;
}
