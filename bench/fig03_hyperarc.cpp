// Fig. 3 of the paper: modeling an OPS coupler by a hyperarc. Builds the
// degree-4 coupler of Fig. 2 both ways -- as an optical netlist and as a
// directed hypergraph -- and machine-checks that light tracing recovers
// exactly the hyperarc (sources {0..3}, targets {4..7}).

#include <iostream>
#include <set>

#include "core/table.hpp"
#include "hypergraph/hypergraph.hpp"
#include "optics/netlist.hpp"
#include "optics/trace.hpp"

int main() {
  std::cout << "[Fig. 3] an OPS coupler as a hyperarc\n\n";

  // The hypergraph model: one hyperarc, sources 0-3, targets 4-7.
  otis::hypergraph::Hyperarc model_arc{{0, 1, 2, 3}, {4, 5, 6, 7}};
  otis::hypergraph::DirectedHypergraph model(8, {model_arc});

  // The optical realization.
  otis::optics::Netlist netlist;
  std::vector<otis::optics::ComponentId> tx;
  std::vector<otis::optics::ComponentId> rx;
  const auto mux = netlist.add_multiplexer(4, "mux");
  const auto split = netlist.add_beam_splitter(4, "split");
  netlist.connect({mux, 0}, {split, 0});
  for (std::int64_t p = 0; p < 4; ++p) {
    tx.push_back(netlist.add_transmitter("proc" + std::to_string(p)));
    netlist.connect({tx.back(), 0}, {mux, p});
    rx.push_back(netlist.add_receiver("proc" + std::to_string(4 + p)));
    netlist.connect({split, p}, {rx.back(), 0});
  }

  // Recover the hyperarc from the optics by tracing.
  std::set<std::int64_t> traced_sources;
  std::set<std::int64_t> traced_targets;
  for (std::int64_t p = 0; p < 4; ++p) {
    auto endpoints = otis::optics::trace_from_transmitter(netlist, tx[p], {});
    if (!endpoints.empty()) {
      traced_sources.insert(p);
    }
    for (const auto& e : endpoints) {
      for (std::int64_t q = 0; q < 4; ++q) {
        if (rx[static_cast<std::size_t>(q)] == e.receiver) {
          traced_targets.insert(4 + q);
        }
      }
    }
  }

  otis::core::Table table({"model", "sources", "targets"});
  auto fmt = [](const auto& values) {
    std::string text;
    for (auto v : values) {
      text += (text.empty() ? "" : ",") + std::to_string(v);
    }
    return text;
  };
  table.add("hyperarc (Def. 1 view)", fmt(model_arc.sources),
            fmt(model_arc.targets));
  table.add("traced from netlist", fmt(traced_sources), fmt(traced_targets));
  table.print(std::cout);

  const bool ok =
      traced_sources ==
          std::set<std::int64_t>(model_arc.sources.begin(),
                                 model_arc.sources.end()) &&
      traced_targets == std::set<std::int64_t>(model_arc.targets.begin(),
                                               model_arc.targets.end());
  std::cout << "\nhyperarc model == optical reality: " << (ok ? "yes" : "NO")
            << "\n";
  std::cout << "hypergraph degrees: out(0) = " << model.out_degree(0)
            << ", in(4) = " << model.in_degree(4)
            << "; one-hop targets of 0 = " << model.one_hop_targets(0).size()
            << " processors in a single transmission\n";
  return ok ? 0 : 1;
}
