#pragma once
/// \file args.hpp
/// Tiny command-line option parser for the example and bench binaries.
///
/// Accepts `--name=value` and `--name value` forms plus boolean flags.
/// Unknown options raise an error so typos surface immediately.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace otis::core {

/// Parsed command line; all lookups have typed accessors with defaults.
class Args {
 public:
  /// Parses argv. `spec` lists the accepted option names (without `--`);
  /// an empty spec accepts anything (useful for quick tools).
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& spec = {});

  /// True if `--name` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value or `fallback`.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer value or `fallback`; throws on non-numeric text.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Double value or `fallback`; throws on non-numeric text.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Positional (non option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace otis::core
