// quickstart: the five-minute tour of otisnet.
//
// Builds the paper's worked example SK(6,3,2) -- 72 processors in 12
// groups wired along the Kautz graph KG(3,2) -- then:
//   1. prints its parameters,
//   2. generates the complete OTIS-based optical design and verifies it
//      by tracing every lightpath,
//   3. routes a packet with Kautz label (self-)routing,
//   4. simulates uniform traffic and reports throughput/latency.
//
// Usage: quickstart [--s=6] [--d=3] [--k=2] [--load=0.2] [--seed=1]

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/args.hpp"
#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/stack_routing.hpp"
#include "sim/ops_network.hpp"
#include "topology/kautz.hpp"

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv, {"s", "d", "k", "load", "seed"});
  const std::int64_t s = args.get_int("s", 6);
  const int d = static_cast<int>(args.get_int("d", 3));
  const int k = static_cast<int>(args.get_int("k", 2));
  const double load = args.get_double("load", 0.2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // --- 1. The abstract network -------------------------------------
  otis::hypergraph::StackKautz sk(s, d, k);
  std::cout << "stack-Kautz network SK(" << s << "," << d << "," << k
            << ")\n"
            << "  processors : " << sk.processor_count() << " (" << "groups "
            << sk.group_count() << " x " << s << ")\n"
            << "  degree     : " << sk.processor_degree()
            << " couplers per processor\n"
            << "  couplers   : " << sk.coupler_count() << " OPS of degree "
            << s << "\n"
            << "  diameter   : " << sk.diameter() << " hops\n\n";

  // --- 2. The optical design (Sec. 4.2 of the paper) ----------------
  otis::designs::NetworkDesign design = otis::designs::stack_kautz_design(
      s, d, k);
  otis::designs::VerificationResult verification =
      otis::designs::verify_design(design);
  std::cout << "optical design \"" << design.name << "\"\n  "
            << otis::designs::bill_of_materials(design.netlist).to_string()
            << "\n  verified: " << (verification.ok ? "yes" : "NO") << " ("
            << verification.lightpaths << " lightpaths traced, max loss "
            << otis::core::format_double(verification.max_loss_db, 2)
            << " dB)\n\n";
  if (!verification.ok) {
    std::cerr << "verification failed: " << verification.details << "\n";
    return 1;
  }

  // --- 3. Label routing ---------------------------------------------
  otis::routing::StackKautzRouter router(sk);
  const otis::hypergraph::Node src = sk.processor(0, 0);
  const otis::hypergraph::Node dst =
      sk.processor(sk.group_count() - 1, s - 1);
  const otis::topology::Kautz& kautz = sk.kautz();
  std::cout << "route (" << sk.group_of(src) << "," << sk.index_in_group(src)
            << ") -> (" << sk.group_of(dst) << "," << sk.index_in_group(dst)
            << ")  [group words "
            << otis::topology::Kautz::word_to_string(
                   kautz.word_of(sk.group_of(src)))
            << " -> "
            << otis::topology::Kautz::word_to_string(
                   kautz.word_of(sk.group_of(dst)))
            << "]\n";
  for (const otis::routing::StackHop& hop : router.route(src, dst)) {
    std::cout << "  processor " << hop.sender << " --coupler " << hop.coupler
              << "--> processor " << hop.relay << " (group word "
              << otis::topology::Kautz::word_to_string(
                     kautz.word_of(sk.group_of(hop.relay)))
              << ")\n";
  }
  std::cout << "\n";

  // --- 4. Simulation -------------------------------------------------
  // The label router is compiled into dense tables once; the phased slot
  // engine (default) then never touches a callback on the hot path.
  otis::sim::SimConfig config;
  config.seed = seed;
  config.warmup_slots = 500;
  config.measure_slots = 5000;
  otis::sim::OpsNetworkSim sim(
      sk.stack(), otis::routing::compile_stack_kautz_routes(sk),
      std::make_unique<otis::sim::UniformTraffic>(sk.processor_count(), load),
      config);
  otis::sim::RunMetrics metrics = sim.run();

  otis::core::Table table({"metric", "value"});
  table.add("offered load (pkt/node/slot)", load);
  table.add("throughput (pkt/node/slot)",
            metrics.throughput_per_node(sk.processor_count()));
  table.add("mean latency (slots)", metrics.latency.mean());
  table.add("p95 latency (slots)",
            static_cast<double>(metrics.latency.percentile(0.95)));
  table.add("coupler utilization",
            metrics.coupler_utilization(sk.coupler_count()));
  table.add("packets delivered", metrics.delivered_packets);
  table.print(std::cout);
  return 0;
}
