// Intra-cell checkpoint/restore (sim/checkpoint.hpp) bit-parity:
//  - saving checkpoints is side-effect free: a run that writes blobs
//    every K slots returns the same RunMetrics and coupler-success
//    vector as one that never checkpoints;
//  - an interrupted run (checkpoint_stop_at drill) plus a resumed run
//    is bit-identical to an uninterrupted run on the phased, sharded,
//    async and async-sharded engines across worker counts {1, 2, 5, 8};
//  - sharded blobs are thread-count independent: save under one worker
//    count, resume under another;
//  - timed (skewed) async runs and stateful (bursty) traffic round-trip
//    through the blob;
//  - telemetry continues across the interruption: the interrupted and
//    resumed timeseries files concatenate to the uninterrupted stream,
//    byte for byte, and final probe values match;
//  - a blob whose fingerprint does not match the resuming run (seed or
//    engine changed) is silently ignored -- the run starts fresh;
//  - the event-queue engine and path-less checkpoint configs are
//    rejected at construction.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/error.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/timing_model.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace otis;

std::string read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_ckpt_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// Exact equality of every metric, including the latency distribution.
void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.makespan_slots, b.makespan_slots);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

constexpr std::int64_t kWarmup = 50;
constexpr std::int64_t kMeasure = 400;
constexpr std::int64_t kEvery = 60;    // checkpoint stride (slots)
constexpr std::int64_t kStopAt = 120;  // drill: die at this boundary

struct RunOptions {
  std::int64_t every = 0;
  std::string path;
  bool resume = false;
  std::int64_t stop_at = -1;
  std::shared_ptr<obs::Telemetry> telemetry;
  sim::TimingConfig timing;
  std::uint64_t seed = 42;
  bool drain = false;
  bool bursty = false;
};

struct RunResult {
  sim::RunMetrics metrics;
  std::vector<std::int64_t> coupler_success;
};

/// One SK(4,3,2) run under the given checkpoint configuration.
RunResult run_sk(sim::Engine engine, int threads, const RunOptions& o) {
  hypergraph::StackKautz sk(4, 3, 2);
  sim::SimConfig config;
  config.warmup_slots = kWarmup;
  config.measure_slots = kMeasure;
  config.seed = o.seed;
  config.engine = engine;
  config.threads = threads;
  config.drain = o.drain;
  config.timing = o.timing;
  config.telemetry = o.telemetry;
  config.checkpoint_every_slots = o.every;
  config.checkpoint_path = o.path;
  config.checkpoint_resume = o.resume;
  config.checkpoint_stop_at = o.stop_at;
  std::unique_ptr<sim::TrafficGenerator> traffic;
  if (o.bursty) {
    traffic = std::make_unique<sim::BurstyTraffic>(sk.processor_count(), 0.8,
                                                   0.05, 0.2);
  } else {
    traffic =
        std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.35);
  }
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::move(traffic), config);
  RunResult result;
  result.metrics = sim.run();
  result.coupler_success = sim.coupler_successes();
  return result;
}

/// The uninterrupted reference, the interrupted (drill) leg, and the
/// resumed leg for one (engine, threads) cell; compares resume against
/// reference.
void expect_resume_parity(sim::Engine engine, int threads,
                          const std::filesystem::path& blob,
                          const RunOptions& base = {}) {
  const RunResult reference = run_sk(engine, threads, base);

  RunOptions drill = base;
  drill.every = kEvery;
  drill.path = blob.string();
  drill.stop_at = kStopAt;
  run_sk(engine, threads, drill);  // partial metrics, discarded
  ASSERT_TRUE(std::filesystem::exists(blob));

  RunOptions resume = base;
  resume.every = kEvery;
  resume.path = blob.string();
  resume.resume = true;
  const RunResult resumed = run_sk(engine, threads, resume);

  expect_identical(reference.metrics, resumed.metrics);
  EXPECT_EQ(reference.coupler_success, resumed.coupler_success);
}

sim::TimingConfig constant_timing(sim::SimTime tuning,
                                  sim::SimTime propagation) {
  sim::TimingConfig timing;
  timing.profile = sim::SkewProfile::kConstant;
  timing.tuning_ticks = tuning;
  timing.propagation_ticks = propagation;
  return timing;
}

TEST(Checkpoint, SavingIsSideEffectFree) {
  ScratchDir scratch("save");
  const struct {
    sim::Engine engine;
    int threads;
  } cells[] = {{sim::Engine::kPhased, 1},
               {sim::Engine::kSharded, 3},
               {sim::Engine::kAsync, 1},
               {sim::Engine::kAsyncSharded, 3}};
  int tag = 0;
  for (const auto& cell : cells) {
    SCOPED_TRACE(static_cast<int>(cell.engine));
    const RunResult plain = run_sk(cell.engine, cell.threads, {});
    RunOptions saving;
    saving.every = kEvery;
    saving.path =
        (scratch.path() / ("save_" + std::to_string(tag++) + ".ckpt"))
            .string();
    const RunResult with = run_sk(cell.engine, cell.threads, saving);
    expect_identical(plain.metrics, with.metrics);
    EXPECT_EQ(plain.coupler_success, with.coupler_success);
    EXPECT_TRUE(std::filesystem::exists(saving.path));
  }
}

TEST(Checkpoint, ResumeIsBitIdenticalAcrossEnginesAndThreads) {
  ScratchDir scratch("resume");
  const struct {
    sim::Engine engine;
    std::vector<int> threads;
  } cells[] = {{sim::Engine::kPhased, {1}},
               {sim::Engine::kSharded, {1, 2, 5, 8}},
               {sim::Engine::kAsync, {1}},
               {sim::Engine::kAsyncSharded, {1, 2, 5, 8}}};
  int tag = 0;
  for (const auto& cell : cells) {
    for (const int threads : cell.threads) {
      SCOPED_TRACE(std::to_string(static_cast<int>(cell.engine)) + "/t" +
                   std::to_string(threads));
      expect_resume_parity(
          cell.engine, threads,
          scratch.path() / ("cell_" + std::to_string(tag++) + ".ckpt"));
    }
  }
}

TEST(Checkpoint, ShardedBlobsAreThreadCountIndependent) {
  // Save under 2 workers, resume under 5: the blob stores folded
  // counters plus per-node/per-coupler RNG streams, so the worker count
  // is not part of the state.
  ScratchDir scratch("threads");
  for (const sim::Engine engine :
       {sim::Engine::kSharded, sim::Engine::kAsyncSharded}) {
    SCOPED_TRACE(static_cast<int>(engine));
    const RunResult reference = run_sk(engine, 5, {});

    RunOptions drill;
    drill.every = kEvery;
    drill.path = (scratch.path() / "xthread.ckpt").string();
    drill.stop_at = kStopAt;
    run_sk(engine, 2, drill);

    RunOptions resume;
    resume.every = kEvery;
    resume.path = drill.path;
    resume.resume = true;
    const RunResult resumed = run_sk(engine, 5, resume);
    expect_identical(reference.metrics, resumed.metrics);
    EXPECT_EQ(reference.coupler_success, resumed.coupler_success);
  }
}

TEST(Checkpoint, TimedAsyncRunsResume) {
  // Non-trivial tuning/propagation delays exercise the timed-VOQ ready
  // field and the calendar-queue round-trip.
  ScratchDir scratch("timed");
  RunOptions timed;
  timed.timing = constant_timing(300, 700);
  expect_resume_parity(sim::Engine::kAsync, 1, scratch.path() / "timed.ckpt",
                       timed);
  expect_resume_parity(sim::Engine::kAsyncSharded, 3,
                       scratch.path() / "timed_sharded.ckpt", timed);
}

TEST(Checkpoint, DrainRunsResume) {
  ScratchDir scratch("drain");
  RunOptions drain;
  drain.drain = true;
  expect_resume_parity(sim::Engine::kPhased, 1, scratch.path() / "drain.ckpt",
                       drain);
  expect_resume_parity(sim::Engine::kSharded, 3,
                       scratch.path() / "drain_sharded.ckpt", drain);
}

TEST(Checkpoint, BurstyTrafficStateRoundTrips) {
  // BurstyTraffic carries per-node Markov state beyond its RNG; the
  // traffic checkpoint hooks must restore it exactly.
  ScratchDir scratch("bursty");
  RunOptions bursty;
  bursty.bursty = true;
  expect_resume_parity(sim::Engine::kPhased, 1, scratch.path() / "bursty.ckpt",
                       bursty);
  expect_resume_parity(sim::Engine::kSharded, 3,
                       scratch.path() / "bursty_sharded.ckpt", bursty);
}

std::vector<std::int64_t> probe_values(const obs::Telemetry& tel) {
  std::vector<std::int64_t> values;
  const obs::ProbeRegistry& reg = tel.probes();
  for (obs::ProbeId id = 0; id < reg.probe_count(); ++id) {
    if (reg.kind(id) == obs::ProbeKind::kHistogram) {
      for (std::size_t i = 0; i < reg.bucket_count(id); ++i) {
        values.push_back(reg.bucket(id, i));
      }
    } else {
      values.push_back(reg.value(id));
    }
  }
  return values;
}

TEST(Checkpoint, TelemetryStreamConcatenatesByteExactly) {
  // The sampler's cross-row state (header flag, previous counters, last
  // sampled slot) rides in the blob, so interrupted + resumed
  // timeseries files concatenate to exactly the uninterrupted stream.
  ScratchDir scratch("telemetry");
  const struct {
    sim::Engine engine;
    int threads;
  } cells[] = {{sim::Engine::kPhased, 1},
               {sim::Engine::kSharded, 2},
               {sim::Engine::kAsync, 1},
               {sim::Engine::kAsyncSharded, 2}};
  int tag = 0;
  for (const auto& cell : cells) {
    SCOPED_TRACE(static_cast<int>(cell.engine));
    const std::string suffix = std::to_string(tag++);
    const std::filesystem::path full =
        scratch.path() / ("full_" + suffix + ".jsonl");
    const std::filesystem::path part_a =
        scratch.path() / ("part_a_" + suffix + ".jsonl");
    const std::filesystem::path part_b =
        scratch.path() / ("part_b_" + suffix + ".jsonl");
    obs::TelemetryConfig tel_config;
    tel_config.sample_period = 64;

    tel_config.timeseries_path = full.string();
    const auto tel_full = obs::Telemetry::create(tel_config);
    RunOptions uninterrupted;
    uninterrupted.telemetry = tel_full;
    const RunResult reference =
        run_sk(cell.engine, cell.threads, uninterrupted);
    const std::vector<std::int64_t> reference_probes = probe_values(*tel_full);
    tel_full->close();

    tel_config.timeseries_path = part_a.string();
    RunOptions drill;
    drill.telemetry = obs::Telemetry::create(tel_config);
    drill.every = kEvery;
    drill.path = (scratch.path() / ("tel_" + suffix + ".ckpt")).string();
    drill.stop_at = 240;
    run_sk(cell.engine, cell.threads, drill);
    drill.telemetry->close();

    tel_config.timeseries_path = part_b.string();
    const auto tel_resume = obs::Telemetry::create(tel_config);
    RunOptions resume;
    resume.telemetry = tel_resume;
    resume.every = kEvery;
    resume.path = drill.path;
    resume.resume = true;
    const RunResult resumed = run_sk(cell.engine, cell.threads, resume);
    const std::vector<std::int64_t> resumed_probes = probe_values(*tel_resume);
    tel_resume->close();

    expect_identical(reference.metrics, resumed.metrics);
    EXPECT_EQ(reference.coupler_success, resumed.coupler_success);
    EXPECT_EQ(reference_probes, resumed_probes);
    const std::string interrupted_bytes = read_bytes(part_a);
    EXPECT_GT(interrupted_bytes.size(), 0u)
        << "drill must stop after at least one sampled row";
    EXPECT_EQ(interrupted_bytes + read_bytes(part_b), read_bytes(full))
        << "resumed rows must continue the stream byte-exactly";
  }
}

TEST(Checkpoint, MismatchedFingerprintStartsFresh) {
  ScratchDir scratch("mismatch");
  const std::filesystem::path blob = scratch.path() / "mismatch.ckpt";

  RunOptions drill;
  drill.every = kEvery;
  drill.path = blob.string();
  drill.stop_at = kStopAt;
  run_sk(sim::Engine::kPhased, 1, drill);
  ASSERT_TRUE(std::filesystem::exists(blob));

  // Different seed: the blob is another run's state; ignore it.
  RunOptions other_seed;
  other_seed.seed = 99;
  const RunResult plain = run_sk(sim::Engine::kPhased, 1, other_seed);
  RunOptions resume = other_seed;
  resume.every = kEvery;
  resume.path = blob.string();
  resume.resume = true;
  const RunResult resumed = run_sk(sim::Engine::kPhased, 1, resume);
  expect_identical(plain.metrics, resumed.metrics);

  // Different engine: same story. (Sharded at 1 thread is numerically
  // phased-identical, which is exactly why the fingerprint must still
  // reject the blob -- its payload layout differs.)
  run_sk(sim::Engine::kPhased, 1, drill);  // rewrite the phased blob
  RunOptions cross_engine;
  cross_engine.every = kEvery;
  cross_engine.path = blob.string();
  cross_engine.resume = true;
  const RunResult cross = run_sk(sim::Engine::kSharded, 2, cross_engine);
  const RunResult cross_plain = run_sk(sim::Engine::kSharded, 2, {});
  expect_identical(cross_plain.metrics, cross.metrics);
}

TEST(Checkpoint, ResumeWithoutBlobRunsFresh) {
  ScratchDir scratch("noblob");
  RunOptions resume;
  resume.every = kEvery;
  resume.path = (scratch.path() / "never_written.ckpt").string();
  resume.resume = true;
  const RunResult resumed = run_sk(sim::Engine::kAsync, 1, resume);
  const RunResult plain = run_sk(sim::Engine::kAsync, 1, {});
  expect_identical(plain.metrics, resumed.metrics);
}

TEST(Checkpoint, InvalidConfigsAreRejected) {
  hypergraph::StackKautz sk(4, 3, 2);
  const auto routes = std::make_shared<const routing::CompiledRoutes>(
      routing::compile_stack_kautz_routes(sk));
  auto make_sim = [&](const sim::SimConfig& config) {
    sim::OpsNetworkSim sim(
        sk.stack(), routes,
        std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.3),
        config);
  };
  sim::SimConfig config;
  config.warmup_slots = kWarmup;
  config.measure_slots = kMeasure;

  // Checkpointing without a path.
  config.checkpoint_every_slots = kEvery;
  EXPECT_THROW(make_sim(config), core::Error);

  // The event-queue engine has no checkpoint support.
  config.checkpoint_path = "/tmp/otis_ckpt_reject.ckpt";
  config.engine = sim::Engine::kEventQueue;
  EXPECT_THROW(make_sim(config), core::Error);

  // Negative stride.
  config.engine = sim::Engine::kPhased;
  config.checkpoint_every_slots = -1;
  EXPECT_THROW(make_sim(config), core::Error);
}

}  // namespace
