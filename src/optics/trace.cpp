#include "optics/trace.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace otis::optics {

namespace {

struct Frontier {
  PortRef output;  // an output port light is leaving
  double loss_db;
  std::int64_t couplers;
  std::vector<ComponentId> path;
};

double component_loss(const Netlist& netlist, ComponentId id,
                      const LossModel& model) {
  const Component& c = netlist.component(id);
  switch (c.kind) {
    case ComponentKind::kTransmitter:
      return model.transmitter_coupling_db;
    case ComponentKind::kReceiver:
      return model.receiver_coupling_db;
    case ComponentKind::kMultiplexer:
      return model.multiplexer_db;
    case ComponentKind::kBeamSplitter:
      return model.beam_splitter_db(c.outputs);
    case ComponentKind::kOtis:
      return model.otis_lens_pair_db;
    case ComponentKind::kFiber:
      return model.fiber_db;
  }
  return 0.0;
}

}  // namespace

std::vector<TraceEndpoint> trace_from_transmitter(const Netlist& netlist,
                                                  ComponentId transmitter,
                                                  const LossModel& model) {
  OTIS_REQUIRE(netlist.component(transmitter).kind ==
                   ComponentKind::kTransmitter,
               "trace_from_transmitter: component is not a transmitter");
  std::vector<TraceEndpoint> endpoints;
  std::vector<Frontier> stack;
  stack.push_back(Frontier{PortRef{transmitter, 0},
                           component_loss(netlist, transmitter, model), 0,
                           {transmitter}});
  // A physical design is feed-forward; bound the walk defensively so a
  // miswired netlist with a loop fails loudly instead of spinning.
  const std::int64_t step_limit = 4 * netlist.component_count() + 16;
  while (!stack.empty()) {
    Frontier f = std::move(stack.back());
    stack.pop_back();
    OTIS_REQUIRE(static_cast<std::int64_t>(f.path.size()) <= step_limit,
                 "trace_from_transmitter: step limit exceeded (cycle in "
                 "netlist?)");
    auto next_input = netlist.link_from(f.output);
    OTIS_REQUIRE(next_input.has_value(),
                 "trace_from_transmitter: dangling output on " +
                     netlist.component(f.output.component).label);
    const ComponentId next = next_input->component;
    const Component& c = netlist.component(next);
    double loss = f.loss_db + component_loss(netlist, next, model);
    std::vector<ComponentId> path = f.path;
    path.push_back(next);
    if (c.kind == ComponentKind::kReceiver) {
      endpoints.push_back(TraceEndpoint{next, loss, f.couplers, std::move(path)});
      continue;
    }
    const std::int64_t couplers =
        f.couplers + (c.kind == ComponentKind::kMultiplexer ? 1 : 0);
    for (PortRef out : netlist.propagate_inside(*next_input)) {
      stack.push_back(Frontier{out, loss, couplers, path});
    }
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const TraceEndpoint& a, const TraceEndpoint& b) {
              return a.receiver < b.receiver;
            });
  return endpoints;
}

double max_loss_db(const Netlist& netlist, const LossModel& model) {
  double worst = 0.0;
  for (ComponentId tx : netlist.of_kind(ComponentKind::kTransmitter)) {
    for (const TraceEndpoint& e : trace_from_transmitter(netlist, tx, model)) {
      worst = std::max(worst, e.loss_db);
    }
  }
  return worst;
}

}  // namespace otis::optics
