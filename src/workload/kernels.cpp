#include "workload/kernels.hpp"

#include <utility>
#include <vector>

#include "core/error.hpp"

namespace otis::workload {

std::unique_ptr<Workload> bsp_exchange(std::int64_t nodes,
                                       std::int64_t phases,
                                       std::int64_t shift) {
  OTIS_REQUIRE(nodes >= 2, "bsp_exchange: need at least two nodes");
  OTIS_REQUIRE(phases >= 1, "bsp_exchange: phases must be >= 1");
  OTIS_REQUIRE(shift >= 1, "bsp_exchange: shift must be >= 1");
  std::vector<std::vector<WorkloadPacket>> waves;
  waves.reserve(static_cast<std::size_t>(phases));
  for (std::int64_t p = 0; p < phases; ++p) {
    // Nonzero offset mod nodes for every phase, cycling through the
    // nodes-1 possible partners as p grows.
    const std::int64_t offset = ((p * shift) % (nodes - 1)) + 1;
    std::vector<WorkloadPacket> wave;
    wave.reserve(static_cast<std::size_t>(nodes));
    for (std::int64_t v = 0; v < nodes; ++v) {
      wave.push_back(WorkloadPacket{0, v, (v + offset) % nodes});
    }
    waves.push_back(std::move(wave));
  }
  return std::make_unique<WaveWorkload>(nodes, std::move(waves));
}

std::unique_ptr<Workload> reduce_tree(std::int64_t nodes, std::int64_t arity,
                                      hypergraph::Node root) {
  OTIS_REQUIRE(nodes >= 2, "reduce_tree: need at least two nodes");
  OTIS_REQUIRE(arity >= 2, "reduce_tree: arity must be >= 2");
  OTIS_REQUIRE(root >= 0 && root < nodes, "reduce_tree: root out of range");
  // Heap-shaped tree over logical ranks 0..nodes-1 (rank 0 = root);
  // rank r's parent is (r-1)/arity. Ranks map to node ids by swapping
  // rank 0 with the requested root.
  const auto node_of = [&](std::int64_t rank) -> hypergraph::Node {
    if (rank == 0) {
      return root;
    }
    if (rank == root) {
      return 0;
    }
    return rank;
  };
  // Packet i belongs to rank i+1 (every rank but the root sends one).
  std::vector<WorkloadPacket> packets;
  std::vector<std::vector<std::int64_t>> deps;
  packets.reserve(static_cast<std::size_t>(nodes - 1));
  deps.reserve(static_cast<std::size_t>(nodes - 1));
  for (std::int64_t rank = 1; rank < nodes; ++rank) {
    const std::int64_t parent = (rank - 1) / arity;
    packets.push_back(WorkloadPacket{0, node_of(rank), node_of(parent)});
    std::vector<std::int64_t> packet_deps;
    for (std::int64_t child = rank * arity + 1;
         child <= rank * arity + arity && child < nodes; ++child) {
      packet_deps.push_back(child - 1);
    }
    deps.push_back(std::move(packet_deps));
  }
  return std::make_unique<DagWorkload>(nodes, std::move(packets),
                                       std::move(deps));
}

std::unique_ptr<Workload> gather_incast(std::int64_t nodes,
                                        hypergraph::Node root) {
  OTIS_REQUIRE(nodes >= 2, "gather_incast: need at least two nodes");
  OTIS_REQUIRE(root >= 0 && root < nodes,
               "gather_incast: root out of range");
  std::vector<WorkloadPacket> packets;
  packets.reserve(static_cast<std::size_t>(nodes - 1));
  for (std::int64_t v = 0; v < nodes; ++v) {
    if (v != root) {
      packets.push_back(WorkloadPacket{0, v, root});
    }
  }
  std::vector<std::vector<std::int64_t>> deps(packets.size());
  return std::make_unique<DagWorkload>(nodes, std::move(packets),
                                       std::move(deps));
}

}  // namespace otis::workload
