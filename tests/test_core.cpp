// Unit tests for the core utility layer: RNG determinism and statistics,
// modular/integer math, table and CSV formatting, argument parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/args.hpp"
#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "core/mathutil.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"

namespace otis::core {
namespace {

TEST(Error, RequireThrowsWithLocation) {
  try {
    OTIS_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_core.cpp"), std::string::npos);
  }
}

TEST(Error, AssertMarksInternal) {
  try {
    OTIS_ASSERT(false, "invariant");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("internal invariant"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.uniform(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformRealInHalfOpenUnit) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    heads += rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(21);
  auto p = rng.permutation(50);
  std::set<std::size_t> values(p.begin(), p.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 49u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  auto s = rng.sample_without_replacement(100, 10);
  std::set<std::size_t> values(s.begin(), s.end());
  EXPECT_EQ(values.size(), 10u);
  for (std::size_t v : values) {
    EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(25);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(MathUtil, FloorModMatchesMathConvention) {
  EXPECT_EQ(floor_mod(7, 3), 1);
  EXPECT_EQ(floor_mod(-7, 3), 2);
  EXPECT_EQ(floor_mod(-3, 3), 0);
  EXPECT_EQ(floor_mod(0, 5), 0);
  EXPECT_EQ(floor_mod(-1, 12), 11);
}

TEST(MathUtil, IpowSmallCases) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(5, 3), 125);
  EXPECT_EQ(ipow(1, 62), 1);
}

TEST(MathUtil, IpowOverflowThrows) {
  EXPECT_THROW((void)ipow(10, 20), Error);
}

TEST(MathUtil, CeilLogMatchesDefinition) {
  EXPECT_EQ(ceil_log(2, 1), 0u);
  EXPECT_EQ(ceil_log(2, 2), 1u);
  EXPECT_EQ(ceil_log(2, 3), 2u);
  EXPECT_EQ(ceil_log(3, 12), 3u);  // 3^2 = 9 < 12 <= 27 = 3^3
  EXPECT_EQ(ceil_log(3, 27), 3u);
  EXPECT_EQ(ceil_log(5, 3750), 6u);
}

TEST(MathUtil, FloorLogMatchesDefinition) {
  EXPECT_EQ(floor_log(2, 1), 0u);
  EXPECT_EQ(floor_log(2, 7), 2u);
  EXPECT_EQ(floor_log(2, 8), 3u);
  EXPECT_EQ(floor_log(10, 999), 2u);
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(MathUtil, IsPowerOf) {
  EXPECT_TRUE(is_power_of(2, 64));
  EXPECT_TRUE(is_power_of(3, 1));
  EXPECT_FALSE(is_power_of(2, 12));
  EXPECT_FALSE(is_power_of(3, 0));
}

TEST(MathUtil, KautzOrderMatchesPaperExamples) {
  // Paper Sec. 2.5 claims "KG(5,4) has N = 3750 nodes", but by its own
  // formula N = d^{k-1}(d+1), KG(5,4) has 6 * 5^3 = 750 nodes; 3750 is
  // KG(5,5). We implement the formula, not the typo (see EXPERIMENTS.md).
  EXPECT_EQ(kautz_order(5, 4), 750);
  EXPECT_EQ(kautz_order(5, 5), 3750);
  EXPECT_EQ(kautz_order(3, 2), 12);
  EXPECT_EQ(kautz_order(2, 3), 12);
  EXPECT_EQ(kautz_order(2, 1), 3);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table table({"name", "value"});
  table.add("alpha", 1);
  table.add("b", 22.5);
  EXPECT_EQ(table.row_count(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.500"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, BoolsRenderAsYesNo) {
  Table table({"flag"});
  table.add(true);
  table.add(false);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("yes"), std::string::npos);
  EXPECT_NE(text.find("no"), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Csv, WritesHeaderAndEscapes) {
  const std::string path = "/tmp/otisnet_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row({"1", "x,y"});
    csv.write_row({"2", "say \"hi\""});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("\"x,y\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongColumnCount) {
  const std::string path = "/tmp/otisnet_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), Error);
  std::remove(path.c_str());
}

TEST(Args, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4", "pos1"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, DefaultsAndFlags) {
  const char* argv[] = {"prog", "--verbose"};
  Args args(2, argv);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get("mode", "fast"), "fast");
  EXPECT_DOUBLE_EQ(args.get_double("load", 0.5), 0.5);
}

TEST(Args, UnknownOptionRejectedWithSpec) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(Args(2, argv, {"load", "seed"}), Error);
}

TEST(Args, NonNumericValueThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Args args(2, argv);
  EXPECT_THROW((void)args.get_int("n", 0), Error);
}

TEST(Json, ParsesNestedDocument) {
  const Json doc = Json::parse(R"({
    "name": "grid é\n",
    "count": 42,
    "ratio": -1.5e2,
    "on": true,
    "off": false,
    "nothing": null,
    "list": [1, [2, 3], {"k": "v"}]
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "grid \xC3\xA9\n");
  EXPECT_EQ(doc.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), -150.0);
  EXPECT_TRUE(doc.at("on").as_bool());
  EXPECT_FALSE(doc.at("off").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  const auto& list = doc.at("list").items();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].items()[1].as_int(), 3);
  EXPECT_EQ(list[2].at("k").as_string(), "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.int_or("missing", 7), 7);
  EXPECT_EQ(doc.string_or("name", "x"), "grid \xC3\xA9\n");
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  EXPECT_EQ(Json::parse(R"("\uD83D\uDE00")").as_string(),
            "\xF0\x9F\x98\x80");  // U+1F600 via a surrogate pair
  EXPECT_EQ(Json::parse(R"("\u00e9A")").as_string(),
            "\xC3\xA9"
            "A");
  EXPECT_THROW(Json::parse(R"("\uD83D")"), Error);   // lone high
  EXPECT_THROW(Json::parse(R"("\uDE00")"), Error);   // lone low
  EXPECT_THROW(Json::parse(R"("\uD83DA")"), Error);  // broken pair
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(Json::parse("[1 2]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("1.5 extra"), Error);
  EXPECT_THROW(Json::parse("01a"), Error);
  // Type errors surface as core::Error, and as_int rejects fractions.
  EXPECT_THROW((void)Json::parse("[]").as_bool(), Error);
  EXPECT_THROW((void)Json::parse("1.25").as_int(), Error);
}

}  // namespace
}  // namespace otis::core
