#include "routing/compiled_routes.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "core/work_pool.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/generic_stack_routing.hpp"
#include "routing/stack_routing.hpp"

namespace otis::routing {

CompiledRoutes CompiledRoutes::compile(const hypergraph::StackGraph& network,
                                       const NextCouplerFn& next_coupler,
                                       const RelayFn& relay_on,
                                       core::WorkStealingPool* pool) {
  OTIS_REQUIRE(next_coupler && relay_on,
               "CompiledRoutes: routing callbacks must be set");
  const auto& hg = network.hypergraph();
  CompiledRoutes routes;
  routes.nodes_ = hg.node_count();
  routes.couplers_ = hg.hyperarc_count();
  OTIS_REQUIRE(routes.nodes_ <= std::numeric_limits<std::int32_t>::max() &&
                   routes.couplers_ <= std::numeric_limits<std::int32_t>::max(),
               "CompiledRoutes: network too large for int32 tables");
  const std::size_t n = static_cast<std::size_t>(routes.nodes_);
  routes.next_coupler_.assign(n * n, -1);
  routes.next_slot_.assign(n * n, -1);
  routes.relay_.assign(static_cast<std::size_t>(routes.couplers_) * n, -1);

  const auto run = [&](std::size_t count, const auto& fn) {
    if (pool != nullptr && pool->thread_count() > 1 && count > 1) {
      pool->run(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        fn(i);
      }
    }
  };

  // Pass 1, parallel over source rows: row v owns the pre-sized entries
  // [v*N, (v+1)*N) of both node tables, so rows never share a write.
  run(n, [&](std::size_t row) {
    const auto v = static_cast<hypergraph::Node>(row);
    for (hypergraph::Node dest = 0; dest < routes.nodes_; ++dest) {
      if (v == dest) {
        continue;
      }
      const hypergraph::HyperarcId h = next_coupler(v, dest);
      const std::int64_t slot = network.out_slot_of(v, h);
      OTIS_REQUIRE(slot >= 0,
                   "CompiledRoutes: router chose a coupler the node "
                   "cannot feed");
      const std::size_t at = routes.index(v, dest);
      routes.next_coupler_[at] = static_cast<std::int32_t>(h);
      routes.next_slot_[at] = static_cast<std::int32_t>(slot);
    }
  });

  // Pass 2, parallel over destination columns: only (coupler, dest)
  // pairs a route can actually produce are baked; the rest stay -1 (a
  // relay query for a coupler the router never picks has no defined
  // answer). For a fixed dest the touched entries relay_[h*N + dest]
  // are disjoint from every other column's, so the columns are
  // independent -- unlike the per-source split, where two sources
  // picking the same coupler would race on one lazily-filled entry.
  run(n, [&](std::size_t column) {
    const auto dest = static_cast<hypergraph::Node>(column);
    for (hypergraph::Node v = 0; v < routes.nodes_; ++v) {
      if (v == dest) {
        continue;
      }
      const std::size_t h =
          static_cast<std::size_t>(routes.next_coupler_[routes.index(v, dest)]);
      std::int32_t& relay_entry = routes.relay_[h * n + column];
      if (relay_entry < 0) {
        const hypergraph::Node relay =
            relay_on(static_cast<hypergraph::HyperarcId>(h), dest);
        const auto& targets = hg.hyperarc(h).targets;
        OTIS_REQUIRE(std::find(targets.begin(), targets.end(), relay) !=
                         targets.end(),
                     "CompiledRoutes: relay is not a target of its coupler");
        relay_entry = static_cast<std::int32_t>(relay);
      }
    }
  });
  return routes;
}

CompiledRoutes::NextCouplerFn CompiledRoutes::next_coupler_fn() const {
  return [this](hypergraph::Node node, hypergraph::Node dest) {
    return next_coupler(node, dest);
  };
}

CompiledRoutes::RelayFn CompiledRoutes::relay_fn() const {
  return [this](hypergraph::HyperarcId coupler, hypergraph::Node dest) {
    return relay(coupler, dest);
  };
}

CompiledRoutes compile_stack_kautz_routes(const hypergraph::StackKautz& network,
                                          core::WorkStealingPool* pool) {
  const StackKautzRouter router(network);
  return CompiledRoutes::compile(
      network.stack(),
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [&router](hypergraph::HyperarcId h, hypergraph::Node d) {
        return router.relay_on(h, d);
      },
      pool);
}

CompiledRoutes compile_pops_routes(const hypergraph::Pops& network,
                                   core::WorkStealingPool* pool) {
  const PopsRouter router(network);
  return CompiledRoutes::compile(
      network.stack(),
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [](hypergraph::HyperarcId, hypergraph::Node d) { return d; }, pool);
}

CompiledRoutes compile_generic_stack_routes(
    const hypergraph::StackGraph& network, core::WorkStealingPool* pool) {
  const GenericStackRouter router(network);
  return CompiledRoutes::compile(
      network,
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [&router](hypergraph::HyperarcId h, hypergraph::Node d) {
        return router.relay_on(h, d);
      },
      pool);
}

CompiledRoutes compile_stack_imase_itoh_routes(
    const hypergraph::StackImaseItoh& network, core::WorkStealingPool* pool) {
  return compile_generic_stack_routes(network.stack(), pool);
}

}  // namespace otis::routing
