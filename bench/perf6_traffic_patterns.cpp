// Perf F6: workload sensitivity of SK(6,3,2) -- uniform vs permutation
// vs hotspot vs bursty traffic at the same mean offered load. These are
// the canonical OPS-network workloads of the paper's refs [7, 9, 25].
//
// Expected shape: permutation (one fixed partner) concentrates load on
// fixed group-level paths but stays balanced; hotspot collapses onto the
// hot group's in-couplers (lower delivered fraction / higher latency);
// bursty matches uniform in mean but with a heavier latency tail.

#include <iostream>
#include <memory>

#include "core/table.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"

namespace {

otis::sim::RunMetrics run_with(
    std::unique_ptr<otis::sim::TrafficGenerator> traffic,
    std::uint64_t seed) {
  otis::hypergraph::StackKautz sk(6, 3, 2);
  otis::sim::SimConfig config;
  config.warmup_slots = 400;
  config.measure_slots = 3000;
  config.seed = seed;
  otis::sim::OpsNetworkSim sim(
      sk.stack(), otis::routing::compile_stack_kautz_routes(sk),
      std::move(traffic), config);
  return sim.run();
}

}  // namespace

int main() {
  std::cout << "[Perf F6] workload sensitivity of SK(6,3,2), mean load "
               "0.15, token arbitration\n\n";
  constexpr double kLoad = 0.15;
  constexpr std::int64_t kNodes = 72;

  struct Row {
    std::string name;
    otis::sim::RunMetrics metrics;
  };
  std::vector<Row> rows;
  rows.push_back({"uniform", run_with(std::make_unique<otis::sim::UniformTraffic>(
                                          kNodes, kLoad),
                                      21)});
  rows.push_back(
      {"permutation", run_with(std::make_unique<otis::sim::PermutationTraffic>(
                                   kNodes, kLoad, 99),
                               22)});
  rows.push_back(
      {"hotspot 20%", run_with(std::make_unique<otis::sim::HotspotTraffic>(
                                   kNodes, kLoad, 0, 0.2),
                               23)});
  // Bursty with the same mean: peak 0.45, P(on) = 1/3.
  rows.push_back({"bursty", run_with(std::make_unique<otis::sim::BurstyTraffic>(
                                         kNodes, 0.45, 0.05, 0.10),
                                     24)});

  otis::core::Table table({"workload", "offered", "delivered frac",
                           "mean lat", "p95 lat", "max lat"});
  for (const Row& row : rows) {
    const auto& m = row.metrics;
    table.add(row.name, m.offered_packets,
              m.offered_packets > 0
                  ? static_cast<double>(m.delivered_packets) /
                        static_cast<double>(m.offered_packets)
                  : 0.0,
              m.latency.mean(),
              static_cast<double>(m.latency.percentile(0.95)),
              m.latency.max());
  }
  table.print(std::cout);

  const auto& uniform = rows[0].metrics;
  const auto& hotspot = rows[2].metrics;
  const auto& bursty = rows[3].metrics;
  const bool hotspot_worse = hotspot.latency.mean() > uniform.latency.mean();
  const bool bursty_tail =
      bursty.latency.percentile(0.95) >= uniform.latency.percentile(0.95);
  const bool uniform_healthy =
      static_cast<double>(uniform.delivered_packets) /
          static_cast<double>(uniform.offered_packets) >
      0.95;
  std::cout << "\nshapes: hotspot raises mean latency vs uniform: "
            << (hotspot_worse ? "yes" : "NO")
            << "; bursty has a >= p95 tail: " << (bursty_tail ? "yes" : "NO")
            << "; uniform delivers > 95%: "
            << (uniform_healthy ? "yes" : "NO") << "\n";
  return hotspot_worse && bursty_tail && uniform_healthy ? 0 : 1;
}
