// Fig. 5 of the paper: POPS(4,2) modeled as the stack-graph
// sigma(4, K+_2). Regenerates the stack-graph, checks it is literally the
// POPS hypergraph, and checks the underlying identity K+_g = II(g,g)
// that later justifies using OTIS(g,g) as the POPS interconnect.

#include <iostream>

#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_graph.hpp"
#include "topology/complete.hpp"
#include "topology/imase_itoh.hpp"

int main() {
  std::cout << "[Fig. 5] POPS(4,2) == sigma(4, K+_2)\n\n";

  otis::hypergraph::Pops pops(4, 2);
  otis::hypergraph::StackGraph stack(
      4, otis::topology::complete_digraph(2, otis::topology::Loops::kWith));

  otis::core::Table table({"hyperarc", "sources", "targets"});
  auto fmt = [](const std::vector<otis::hypergraph::Node>& v) {
    std::string text;
    for (auto x : v) {
      text += (text.empty() ? "" : ",") + std::to_string(x);
    }
    return text;
  };
  for (otis::hypergraph::HyperarcId h = 0;
       h < stack.hypergraph().hyperarc_count(); ++h) {
    const auto& arc = stack.hypergraph().hyperarc(h);
    table.add(h, fmt(arc.sources), fmt(arc.targets));
  }
  table.print(std::cout);

  const bool same_model =
      pops.stack().hypergraph().equivalent_to(stack.hypergraph());
  const bool complete_is_ii =
      otis::topology::complete_digraph(2, otis::topology::Loops::kWith)
          .same_arcs(otis::topology::ImaseItoh(2, 2).graph());
  std::cout << "\nPOPS(4,2) hypergraph == sigma(4, K+_2): "
            << (same_model ? "yes" : "NO") << "\n"
            << "K+_2 == II(2,2) (so OTIS(2,2) realizes it, Sec. 4.1): "
            << (complete_is_ii ? "yes" : "NO") << "\n";
  // Also sweep the identity for larger g.
  bool sweep_ok = true;
  for (std::int64_t g = 1; g <= 8; ++g) {
    sweep_ok = sweep_ok &&
               otis::topology::complete_digraph(g, otis::topology::Loops::kWith)
                   .same_arcs(otis::topology::ImaseItoh(
                                  static_cast<int>(g), g)
                                  .graph());
  }
  std::cout << "K+_g == II(g,g) for g = 1..8: " << (sweep_ok ? "yes" : "NO")
            << "\n";
  return same_model && complete_is_ii && sweep_ok ? 0 : 1;
}
