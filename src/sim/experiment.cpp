#include "sim/experiment.hpp"

#include <atomic>
#include <thread>

#include "core/error.hpp"

namespace otis::sim {

std::vector<SweepPoint> run_load_sweep(
    const TrialFactory& factory, const std::vector<double>& loads,
    std::int64_t nodes, std::int64_t couplers,
    const std::vector<std::uint64_t>& seeds, int threads) {
  OTIS_REQUIRE(factory != nullptr, "run_load_sweep: factory must be set");
  OTIS_REQUIRE(!seeds.empty(), "run_load_sweep: need at least one seed");

  struct Trial {
    std::size_t load_index;
    std::uint64_t seed;
    RunMetrics metrics;
  };
  std::vector<Trial> trials;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (std::uint64_t seed : seeds) {
      trials.push_back(Trial{li, seed, {}});
    }
  }

  int worker_count = threads;
  if (worker_count <= 0) {
    worker_count = static_cast<int>(std::thread::hardware_concurrency());
    if (worker_count <= 0) {
      worker_count = 1;
    }
  }
  worker_count = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(worker_count),
                            trials.size()));

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= trials.size()) {
        return;
      }
      trials[i].metrics =
          factory(loads[trials[i].load_index], trials[i].seed);
    }
  };
  if (worker_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(worker_count));
    for (int w = 0; w < worker_count; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  std::vector<SweepPoint> points(loads.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    points[li].load = loads[li];
  }
  for (const Trial& trial : trials) {
    SweepPoint& p = points[trial.load_index];
    const RunMetrics& m = trial.metrics;
    p.throughput_per_node += m.throughput_per_node(nodes);
    p.mean_latency += m.latency.mean();
    p.p95_latency += static_cast<double>(m.latency.percentile(0.95));
    p.coupler_utilization += m.coupler_utilization(couplers);
    p.collision_rate +=
        couplers > 0 && m.slots > 0
            ? static_cast<double>(m.collisions) /
                  (static_cast<double>(couplers) *
                   static_cast<double>(m.slots))
            : 0.0;
    p.delivered_fraction +=
        m.offered_packets > 0
            ? static_cast<double>(m.delivered_packets) /
                  static_cast<double>(m.offered_packets)
            : 0.0;
    ++p.trials;
  }
  for (SweepPoint& p : points) {
    if (p.trials > 0) {
      const double inv = 1.0 / static_cast<double>(p.trials);
      p.throughput_per_node *= inv;
      p.mean_latency *= inv;
      p.p95_latency *= inv;
      p.coupler_utilization *= inv;
      p.collision_rate *= inv;
      p.delivered_fraction *= inv;
    }
  }
  return points;
}

}  // namespace otis::sim
