#include "otis/otis.hpp"

#include "core/error.hpp"

namespace otis::otis {

Otis::Otis(std::int64_t groups, std::int64_t group_size)
    : g_(groups), t_(group_size) {
  OTIS_REQUIRE(g_ >= 1, "Otis: G must be >= 1");
  OTIS_REQUIRE(t_ >= 1, "Otis: T must be >= 1");
}

OutputPort Otis::map(InputPort in) const {
  OTIS_REQUIRE(in.group >= 0 && in.group < g_, "Otis::map: group out of range");
  OTIS_REQUIRE(in.offset >= 0 && in.offset < t_,
               "Otis::map: offset out of range");
  return OutputPort{t_ - 1 - in.offset, g_ - 1 - in.group};
}

InputPort Otis::inverse_map(OutputPort out) const {
  OTIS_REQUIRE(out.group >= 0 && out.group < t_,
               "Otis::inverse_map: group out of range");
  OTIS_REQUIRE(out.offset >= 0 && out.offset < g_,
               "Otis::inverse_map: offset out of range");
  return InputPort{g_ - 1 - out.offset, t_ - 1 - out.group};
}

std::int64_t Otis::input_index(InputPort in) const {
  OTIS_REQUIRE(in.group >= 0 && in.group < g_ && in.offset >= 0 &&
                   in.offset < t_,
               "Otis::input_index: port out of range");
  return in.group * t_ + in.offset;
}

InputPort Otis::input_port(std::int64_t index) const {
  OTIS_REQUIRE(index >= 0 && index < port_count(),
               "Otis::input_port: index out of range");
  return InputPort{index / t_, index % t_};
}

std::int64_t Otis::output_index(OutputPort out) const {
  OTIS_REQUIRE(out.group >= 0 && out.group < t_ && out.offset >= 0 &&
                   out.offset < g_,
               "Otis::output_index: port out of range");
  return out.group * g_ + out.offset;
}

OutputPort Otis::output_port(std::int64_t index) const {
  OTIS_REQUIRE(index >= 0 && index < port_count(),
               "Otis::output_port: index out of range");
  return OutputPort{index / g_, index % g_};
}

std::vector<std::int64_t> Otis::permutation() const {
  std::vector<std::int64_t> perm(static_cast<std::size_t>(port_count()));
  for (std::int64_t idx = 0; idx < port_count(); ++idx) {
    perm[static_cast<std::size_t>(idx)] = output_index(map(input_port(idx)));
  }
  return perm;
}

std::int64_t Otis::fixed_point_count() const {
  std::int64_t count = 0;
  for (std::int64_t idx = 0; idx < port_count(); ++idx) {
    if (output_index(map(input_port(idx))) == idx) {
      ++count;
    }
  }
  return count;
}

bool composes_to_identity(const Otis& forward, const Otis& backward) {
  if (forward.input_groups() != backward.output_groups() ||
      forward.input_group_size() != backward.input_groups()) {
    return false;
  }
  for (std::int64_t i = 0; i < forward.input_groups(); ++i) {
    for (std::int64_t j = 0; j < forward.input_group_size(); ++j) {
      OutputPort mid = forward.map(InputPort{i, j});
      // Feed the output of the first stage into the second stage as an
      // input port with the same (group, offset) coordinates.
      OutputPort back = backward.map(InputPort{mid.group, mid.offset});
      if (back.group != i || back.offset != j) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace otis::otis
