#pragma once
/// \file arbitration.hpp
/// Per-coupler winner selection for the phased and async engines, over
/// the coupler's request-mask words (occupancy.hpp).
///
/// This is a faithful restatement of the event-queue engine's inline
/// arbitration (ops_network.cpp slot()), including the exact RNG
/// consumption order. The event-queue copy is deliberately kept as the
/// seed wrote it -- it is the reference implementation and benchmark
/// baseline -- so any change here MUST be mirrored there (or rejected);
/// tests/test_engine_equivalence.cpp enforces the bit-for-bit agreement
/// and will fail on divergence. (The token cursor's wrap-on-compare --
/// replacing the per-step remainder -- is mirrored there per this
/// contract; it visits the identical position sequence.)
///
/// The mask form replaces the seed's contender-list/byte-mask scan:
///  - token round-robin is a rotate-and-count-trailing-zeros scan over
///    the request words starting at the cursor, with no per-step `%`
///    (the cursor wraps on compare after the last position);
///  - random winner builds its ascending contender list from the mask
///    words (same list the byte scan produced) and runs the identical
///    partial Fisher-Yates over it;
///  - slotted aloha draws one Bernoulli per set bit in ascending
///    position order, exactly as the list walk did.
/// Every policy therefore consumes the same RNG draws in the same order
/// as the seed and elects the same winners in the same order.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sim/ops_network.hpp"

namespace otis::sim::detail {

/// Fast path for the ubiquitous single-wavelength token case (the
/// paper's couplers): the first requesting position at or after the
/// cursor, wrapping, with the cursor advanced just past the winner.
/// Elects the identical winner and leaves the identical cursor as
/// pick_winners(kTokenRoundRobin, capacity = 1, ...) and, like it,
/// consumes no RNG -- but skips the winners vector and the capacity
/// loop entirely. At least one request bit must be set.
[[nodiscard]] inline std::size_t pick_single_token(
    std::size_t source_count, const std::uint64_t* request,
    std::size_t words, std::int64_t& token) {
  const std::size_t start = static_cast<std::size_t>(token);
  const std::size_t start_word = start >> 6;
  std::size_t wi = start_word;
  std::uint64_t word = request[wi] & (~std::uint64_t{0} << (start & 63));
  for (;;) {
    if (word != 0) {
      const std::size_t si =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(word));
      token =
          si + 1 == source_count ? 0 : static_cast<std::int64_t>(si + 1);
      return si;
    }
    ++wi;
    if (wi >= words) {
      break;
    }
    word = request[wi];
  }
  for (wi = 0; wi <= start_word; ++wi) {
    word = request[wi];
    if (wi == start_word) {
      const std::size_t cut = start & 63;
      word &= cut == 0 ? 0 : ~std::uint64_t{0} >> (64 - cut);
    }
    if (word != 0) {
      const std::size_t si =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(word));
      token =
          si + 1 == source_count ? 0 : static_cast<std::int64_t>(si + 1);
      return si;
    }
  }
  OTIS_ASSERT(false, "pick_single_token: no request bit set");
  return static_cast<std::size_t>(-1);
}

/// Picks the winners of one coupler-slot.
///
/// `request` points at the coupler's `words` request-mask words: bit si
/// is set iff feed position si contends (its VOQ toward this coupler is
/// non-empty and, for the async engine, eligible). No bits at or above
/// `source_count` may be set. `token` is the coupler's round-robin
/// cursor, advanced just past each winner. `scratch` is caller-owned
/// scratch (kRandomWinner builds its contender list there). Winners are
/// appended to `winners` (cleared first) in transmission order. Returns
/// true when a slotted-aloha collision destroyed every transmission of
/// this coupler-slot.
inline bool pick_winners(Arbitration policy, std::size_t capacity,
                         std::size_t source_count,
                         const std::uint64_t* request, std::size_t words,
                         std::int64_t& token, core::Rng& rng,
                         std::vector<std::size_t>& winners,
                         std::vector<std::size_t>& scratch) {
  winners.clear();
  switch (policy) {
    case Arbitration::kTokenRoundRobin: {
      // Scan positions [start, source_count) then the wrapped prefix
      // [0, start); the first `capacity` set bits win and the token
      // moves just past the last winner, wrapping on compare.
      const std::size_t start = static_cast<std::size_t>(token);
      std::size_t wi = start >> 6;
      std::uint64_t word =
          request[wi] & (~std::uint64_t{0} << (start & 63));
      for (;;) {
        while (word != 0) {
          const std::size_t si =
              (wi << 6) +
              static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          winners.push_back(si);
          token = si + 1 == source_count
                      ? 0
                      : static_cast<std::int64_t>(si + 1);
          if (winners.size() == capacity) {
            return false;
          }
        }
        ++wi;
        if (wi >= words) {
          break;
        }
        word = request[wi];
      }
      const std::size_t start_word = start >> 6;
      for (wi = 0; wi <= start_word; ++wi) {
        word = request[wi];
        if (wi == start_word) {
          const std::size_t cut = start & 63;
          word &= cut == 0 ? 0 : ~std::uint64_t{0} >> (64 - cut);
        }
        while (word != 0) {
          const std::size_t si =
              (wi << 6) +
              static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          winners.push_back(si);
          token = si + 1 == source_count
                      ? 0
                      : static_cast<std::int64_t>(si + 1);
          if (winners.size() == capacity) {
            return false;
          }
        }
      }
      return false;
    }
    case Arbitration::kRandomWinner: {
      // Partial Fisher-Yates over the ascending contender list.
      scratch.clear();
      for (std::size_t wi = 0; wi < words; ++wi) {
        std::uint64_t word = request[wi];
        while (word != 0) {
          scratch.push_back(
              (wi << 6) +
              static_cast<std::size_t>(std::countr_zero(word)));
          word &= word - 1;
        }
      }
      // The draw bounds (n, n-1, ...) depend only on the contender
      // count, never on the swap results, so the uniforms batch ahead
      // of the swap loop -- draw-sequence identical to the interleaved
      // uniform()-per-swap loop of the event-queue reference
      // (test_engine_equivalence.cpp enforces the bit-parity).
      constexpr std::size_t kDrawChunk = 32;
      std::uint64_t draws[kDrawChunk];
      const std::size_t take = std::min(capacity, scratch.size());
      for (std::size_t base = 0; base < take; base += kDrawChunk) {
        const std::size_t chunk = std::min(kDrawChunk, take - base);
        rng.uniform_descending(scratch.size() - base, chunk, draws);
        for (std::size_t c = 0; c < chunk; ++c) {
          const std::size_t i = base + c;
          const std::size_t j = i + static_cast<std::size_t>(draws[c]);
          std::swap(scratch[i], scratch[j]);
          winners.push_back(scratch[i]);
        }
      }
      return false;
    }
    case Arbitration::kSlottedAloha: {
      // Every contender independently transmits with probability 1/2; at
      // most `capacity` simultaneous transmitters succeed, more collide.
      for (std::size_t wi = 0; wi < words; ++wi) {
        std::uint64_t word = request[wi];
        while (word != 0) {
          const std::size_t si =
              (wi << 6) +
              static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          if (rng.bernoulli(0.5)) {
            winners.push_back(si);
          }
        }
      }
      if (winners.size() > capacity) {
        winners.clear();
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace otis::sim::detail
