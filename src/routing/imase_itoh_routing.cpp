#include "routing/imase_itoh_routing.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace otis::routing {

namespace {

/// Decodes t (an exact integer in S_m) into digits a_0..a_{m-1} with
/// t = sum (-d)^j a_j, a_j in [1, d]. Returns false if t has no such
/// expansion of length m.
bool decode_digits(std::int64_t t, int d, int m, std::vector<int>& digits) {
  digits.assign(static_cast<std::size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    std::int64_t r = otis::core::floor_mod(t, d);
    int a = (r == 0) ? d : static_cast<int>(r);
    digits[static_cast<std::size_t>(j)] = a;
    // t - a is divisible by d with quotient of opposite sign base.
    t = (t - a) / (-d);
  }
  return t == 0;
}

}  // namespace

ImaseItohRouter::ImaseItohRouter(topology::ImaseItoh graph)
    : ii_(std::move(graph)) {}

std::vector<std::vector<int>> ImaseItohRouter::exact_length_routes(
    std::int64_t u, std::int64_t v, int m) const {
  const std::int64_t n = ii_.order();
  const int d = ii_.degree();
  std::vector<std::vector<int>> routes;
  if (m == 0) {
    if (u == v) {
      routes.push_back({});
    }
    return routes;
  }
  // Interval S_m: S_0 = [0,0]; S_m = -d*S_{m-1} + [1, d].
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (int j = 0; j < m; ++j) {
    const std::int64_t new_lo = -d * hi + 1;
    const std::int64_t new_hi = -d * lo + d;
    lo = new_lo;
    hi = new_hi;
  }
  // t0 = ((-d)^m u - v) mod n, computed with running reductions so no
  // intermediate overflows for any graph that fits in memory.
  std::int64_t p = 1;  // (-d)^m mod n, kept in [0, n)
  for (int j = 0; j < m; ++j) {
    p = otis::core::floor_mod(p * -static_cast<std::int64_t>(d), n);
  }
  const std::int64_t t0 = otis::core::floor_mod(p * u - v, n);
  // Smallest representative of t0 (mod n) that is >= lo; then step by n.
  const std::int64_t first = lo + otis::core::floor_mod(t0 - lo, n);
  std::vector<int> digits;
  for (std::int64_t t = first; t <= hi; t += n) {
    if (!decode_digits(t, d, m, digits)) {
      continue;  // cannot happen for contiguous S_m; kept defensive
    }
    // digits[j] is alpha_{m-j}; reverse into hop order alpha_1..alpha_m.
    std::vector<int> alphas(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) {
      alphas[static_cast<std::size_t>(m - 1 - j)] =
          digits[static_cast<std::size_t>(j)];
    }
    routes.push_back(std::move(alphas));
  }
  return routes;
}

int ImaseItohRouter::distance(std::int64_t u, std::int64_t v) const {
  OTIS_REQUIRE(u >= 0 && u < ii_.order(), "ImaseItohRouter: u out of range");
  OTIS_REQUIRE(v >= 0 && v < ii_.order(), "ImaseItohRouter: v out of range");
  const int limit = static_cast<int>(ii_.diameter_formula()) + 4;
  for (int m = 0; m <= limit; ++m) {
    if (!exact_length_routes(u, v, m).empty()) {
      return m;
    }
  }
  OTIS_REQUIRE(false, "ImaseItohRouter: no route within diameter bound + 4");
  return -1;
}

std::vector<int> ImaseItohRouter::route_labels(std::int64_t u,
                                               std::int64_t v) const {
  OTIS_REQUIRE(u >= 0 && u < ii_.order(), "ImaseItohRouter: u out of range");
  OTIS_REQUIRE(v >= 0 && v < ii_.order(), "ImaseItohRouter: v out of range");
  const int limit = static_cast<int>(ii_.diameter_formula()) + 4;
  for (int m = 0; m <= limit; ++m) {
    auto routes = exact_length_routes(u, v, m);
    if (!routes.empty()) {
      return routes.front();
    }
  }
  OTIS_REQUIRE(false, "ImaseItohRouter: no route within diameter bound + 4");
  return {};
}

std::vector<std::int64_t> ImaseItohRouter::route(std::int64_t u,
                                                 std::int64_t v) const {
  std::vector<std::int64_t> path{u};
  std::int64_t current = u;
  for (int alpha : route_labels(u, v)) {
    current = ii_.successor(current, alpha);
    path.push_back(current);
  }
  OTIS_ASSERT(path.back() == v, "ImaseItohRouter: route did not reach target");
  return path;
}

std::vector<std::vector<int>> ImaseItohRouter::all_shortest_label_routes(
    std::int64_t u, std::int64_t v) const {
  const int m = distance(u, v);
  return exact_length_routes(u, v, m);
}

}  // namespace otis::routing
