#include "sim/traffic.hpp"

#include <cmath>

#include "core/error.hpp"

namespace otis::sim {

namespace {

/// Integer-threshold form of Rng::bernoulli(p) for p in (0, 1): draws
/// the same single 64-bit value and makes the identical decision.
/// bernoulli compares (x >> 11) * 2^-53 < p, which for the 53-bit
/// integer k = x >> 11 is exactly k < ceil(p * 2^53) (the product is a
/// real scaled by a power of two, so the double holds it exactly) --
/// the per-trial int-to-double conversion and float compare become one
/// integer compare in the batch loops.
struct BernoulliThreshold {
  explicit BernoulliThreshold(double p)
      : threshold(static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53))) {}
  [[nodiscard]] bool draw(core::Rng& rng) const noexcept {
    return (rng() >> 11) < threshold;
  }
  std::uint64_t threshold;
};

std::int64_t uniform_other(std::int64_t node, std::int64_t nodes,
                           core::Rng& rng) {
  if (nodes <= 1) {
    return node;
  }
  // Draw from the n-1 nodes != node without rejection.
  std::int64_t dest = static_cast<std::int64_t>(
      rng.uniform(static_cast<std::uint64_t>(nodes - 1)));
  if (dest >= node) {
    ++dest;
  }
  return dest;
}

/// The batch loops of the built-in (final) generators: `gen` is a
/// concrete reference, so the demand() calls devirtualize and inline --
/// one virtual dispatch per slot instead of one per node. The draw
/// order is the defining loop of the demand_batch contract verbatim.
template <class Gen>
void batch_single(Gen& gen, std::int64_t node_begin, std::int64_t node_end,
                  core::Rng& rng, TrafficDemand* out) {
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    out[v] = gen.demand(v, rng);
  }
}

template <class Gen>
void batch_streams(Gen& gen, std::int64_t node_begin, std::int64_t node_end,
                   core::Rng* rngs, TrafficDemand* out) {
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    out[v] = gen.demand(v, rngs[v]);
  }
}

/// Compact-batch loops: the demand_batch loops with the engines'
/// sender filter fused in, so the per-node "idle this slot" branch is
/// taken once here instead of again over the dense array.
template <class Gen>
std::size_t senders_single(Gen& gen, std::int64_t node_begin,
                           std::int64_t node_end, core::Rng& rng,
                           SenderDemand* out) {
  std::size_t count = 0;
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    const TrafficDemand d = gen.demand(v, rng);
    if (d.has_packet && d.destination != v) {
      out[count++] = SenderDemand{v, d.destination};
    }
  }
  return count;
}

template <class Gen>
std::size_t senders_streams(Gen& gen, std::int64_t node_begin,
                            std::int64_t node_end, core::Rng* rngs,
                            SenderDemand* out) {
  std::size_t count = 0;
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    const TrafficDemand d = gen.demand(v, rngs[v]);
    if (d.has_packet && d.destination != v) {
      out[count++] = SenderDemand{v, d.destination};
    }
  }
  return count;
}

/// UniformTraffic's compact batch: its demand() loop with the arrival
/// gate in threshold form. The load <= 0 / >= 1 arms reproduce
/// bernoulli()'s no-draw shortcuts; `rng_of(v)` selects the shared or
/// per-node stream.
template <class RngOf>
std::size_t uniform_senders(std::int64_t nodes, double load,
                            std::int64_t node_begin, std::int64_t node_end,
                            RngOf rng_of, SenderDemand* out) {
  std::size_t count = 0;
  if (load <= 0.0) {
    return 0;
  }
  if (load >= 1.0) {
    for (std::int64_t v = node_begin; v < node_end; ++v) {
      const std::int64_t dest = uniform_other(v, nodes, rng_of(v));
      if (dest != v) {
        out[count++] = SenderDemand{v, dest};
      }
    }
    return count;
  }
  const BernoulliThreshold gate(load);
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    core::Rng& rng = rng_of(v);
    if (!gate.draw(rng)) {
      continue;
    }
    const std::int64_t dest = uniform_other(v, nodes, rng);
    if (dest != v) {
      out[count++] = SenderDemand{v, dest};
    }
  }
  return count;
}

}  // namespace

void TrafficGenerator::demand_batch(std::int64_t node_begin,
                                    std::int64_t node_end, core::Rng& rng,
                                    TrafficDemand* out) {
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    out[v] = demand(v, rng);
  }
}

void TrafficGenerator::demand_batch_streams(std::int64_t node_begin,
                                            std::int64_t node_end,
                                            core::Rng* rngs,
                                            TrafficDemand* out) {
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    out[v] = demand(v, rngs[v]);
  }
}

std::size_t TrafficGenerator::demand_batch_senders(std::int64_t node_begin,
                                                   std::int64_t node_end,
                                                   core::Rng& rng,
                                                   SenderDemand* out) {
  std::size_t count = 0;
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    const TrafficDemand d = demand(v, rng);
    if (d.has_packet && d.destination != v) {
      out[count++] = SenderDemand{v, d.destination};
    }
  }
  return count;
}

std::size_t TrafficGenerator::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  std::size_t count = 0;
  for (std::int64_t v = node_begin; v < node_end; ++v) {
    const TrafficDemand d = demand(v, rngs[v]);
    if (d.has_packet && d.destination != v) {
      out[count++] = SenderDemand{v, d.destination};
    }
  }
  return count;
}

UniformTraffic::UniformTraffic(std::int64_t nodes, double load)
    : nodes_(nodes), load_(load) {
  OTIS_REQUIRE(nodes >= 1, "UniformTraffic: need at least one node");
  OTIS_REQUIRE(load >= 0.0 && load <= 1.0,
               "UniformTraffic: load must be in [0, 1]");
}

TrafficDemand UniformTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

void UniformTraffic::demand_batch(std::int64_t node_begin, std::int64_t node_end,
                                  core::Rng& rng, TrafficDemand* out) {
  batch_single(*this, node_begin, node_end, rng, out);
}

void UniformTraffic::demand_batch_streams(std::int64_t node_begin,
                                          std::int64_t node_end, core::Rng* rngs,
                                          TrafficDemand* out) {
  batch_streams(*this, node_begin, node_end, rngs, out);
}

std::size_t UniformTraffic::demand_batch_senders(std::int64_t node_begin,
                                                 std::int64_t node_end,
                                                 core::Rng& rng,
                                                 SenderDemand* out) {
  return uniform_senders(
      nodes_, load_, node_begin, node_end,
      [&rng](std::int64_t) -> core::Rng& { return rng; }, out);
}

std::size_t UniformTraffic::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  return uniform_senders(
      nodes_, load_, node_begin, node_end,
      [rngs](std::int64_t v) -> core::Rng& { return rngs[v]; }, out);
}

HotspotTraffic::HotspotTraffic(std::int64_t nodes, double load,
                               std::int64_t hot_node, double hot_fraction)
    : nodes_(nodes),
      load_(load),
      hot_node_(hot_node),
      hot_fraction_(hot_fraction) {
  OTIS_REQUIRE(nodes >= 1, "HotspotTraffic: need at least one node");
  OTIS_REQUIRE(hot_node >= 0 && hot_node < nodes,
               "HotspotTraffic: hot node out of range");
  OTIS_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
               "HotspotTraffic: hot fraction must be in [0, 1]");
}

TrafficDemand HotspotTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  if (node != hot_node_ && rng.bernoulli(hot_fraction_)) {
    return TrafficDemand{true, hot_node_};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

void HotspotTraffic::demand_batch(std::int64_t node_begin, std::int64_t node_end,
                                  core::Rng& rng, TrafficDemand* out) {
  batch_single(*this, node_begin, node_end, rng, out);
}

void HotspotTraffic::demand_batch_streams(std::int64_t node_begin,
                                          std::int64_t node_end, core::Rng* rngs,
                                          TrafficDemand* out) {
  batch_streams(*this, node_begin, node_end, rngs, out);
}

std::size_t HotspotTraffic::demand_batch_senders(std::int64_t node_begin,
                                                 std::int64_t node_end,
                                                 core::Rng& rng,
                                                 SenderDemand* out) {
  return senders_single(*this, node_begin, node_end, rng, out);
}

std::size_t HotspotTraffic::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  return senders_streams(*this, node_begin, node_end, rngs, out);
}

PermutationTraffic::PermutationTraffic(std::int64_t nodes, double load,
                                       std::uint64_t seed)
    : load_(load) {
  OTIS_REQUIRE(nodes >= 1, "PermutationTraffic: need at least one node");
  core::Rng rng(seed);
  auto perm = rng.permutation(static_cast<std::size_t>(nodes));
  partner_.assign(perm.begin(), perm.end());
  // Fix the (rare) fixed points by swapping with a neighbour so no node
  // targets itself.
  for (std::int64_t i = 0; i < nodes && nodes > 1; ++i) {
    if (partner_[static_cast<std::size_t>(i)] == i) {
      const std::int64_t j = (i + 1) % nodes;
      std::swap(partner_[static_cast<std::size_t>(i)],
                partner_[static_cast<std::size_t>(j)]);
    }
  }
}

TrafficDemand PermutationTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  return TrafficDemand{true, partner_[static_cast<std::size_t>(node)]};
}

void PermutationTraffic::demand_batch(std::int64_t node_begin, std::int64_t node_end,
                                      core::Rng& rng, TrafficDemand* out) {
  batch_single(*this, node_begin, node_end, rng, out);
}

void PermutationTraffic::demand_batch_streams(std::int64_t node_begin,
                                              std::int64_t node_end, core::Rng* rngs,
                                              TrafficDemand* out) {
  batch_streams(*this, node_begin, node_end, rngs, out);
}

std::size_t PermutationTraffic::demand_batch_senders(std::int64_t node_begin,
                                                     std::int64_t node_end,
                                                     core::Rng& rng,
                                                     SenderDemand* out) {
  return senders_single(*this, node_begin, node_end, rng, out);
}

std::size_t PermutationTraffic::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  return senders_streams(*this, node_begin, node_end, rngs, out);
}

BurstyTraffic::BurstyTraffic(std::int64_t nodes, double peak_load,
                             double enter_on, double exit_on)
    : nodes_(nodes),
      peak_load_(peak_load),
      enter_on_(enter_on),
      exit_on_(exit_on),
      on_(static_cast<std::size_t>(nodes), 0) {
  OTIS_REQUIRE(nodes >= 1, "BurstyTraffic: need at least one node");
  OTIS_REQUIRE(peak_load >= 0.0 && peak_load <= 1.0,
               "BurstyTraffic: peak load must be in [0, 1]");
  OTIS_REQUIRE(enter_on > 0.0 && enter_on <= 1.0,
               "BurstyTraffic: enter_on must be in (0, 1]");
  OTIS_REQUIRE(exit_on > 0.0 && exit_on <= 1.0,
               "BurstyTraffic: exit_on must be in (0, 1]");
}

double BurstyTraffic::mean_load() const {
  // Stationary P(on) of the two-state chain: enter / (enter + exit).
  return peak_load_ * enter_on_ / (enter_on_ + exit_on_);
}

TrafficDemand BurstyTraffic::demand(std::int64_t node, core::Rng& rng) {
  char& state = on_[static_cast<std::size_t>(node)];
  if (state) {
    if (rng.bernoulli(exit_on_)) {
      state = 0;
    }
  } else if (rng.bernoulli(enter_on_)) {
    state = 1;
  }
  if (!state || !rng.bernoulli(peak_load_)) {
    return {};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

void BurstyTraffic::demand_batch(std::int64_t node_begin, std::int64_t node_end,
                                 core::Rng& rng, TrafficDemand* out) {
  batch_single(*this, node_begin, node_end, rng, out);
}

void BurstyTraffic::demand_batch_streams(std::int64_t node_begin,
                                         std::int64_t node_end, core::Rng* rngs,
                                         TrafficDemand* out) {
  batch_streams(*this, node_begin, node_end, rngs, out);
}

std::size_t BurstyTraffic::demand_batch_senders(std::int64_t node_begin,
                                                std::int64_t node_end,
                                                core::Rng& rng,
                                                SenderDemand* out) {
  return senders_single(*this, node_begin, node_end, rng, out);
}

std::size_t BurstyTraffic::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  return senders_streams(*this, node_begin, node_end, rngs, out);
}

void BurstyTraffic::checkpoint_state(std::vector<std::int64_t>& out) const {
  out.assign(on_.begin(), on_.end());
}

void BurstyTraffic::restore_state(const std::vector<std::int64_t>& state) {
  OTIS_REQUIRE(state.size() == on_.size(),
               "BurstyTraffic: checkpoint state size mismatch");
  for (std::size_t i = 0; i < on_.size(); ++i) {
    on_[i] = static_cast<char>(state[i]);
  }
}

SaturationTraffic::SaturationTraffic(std::int64_t nodes) : nodes_(nodes) {
  OTIS_REQUIRE(nodes >= 1, "SaturationTraffic: need at least one node");
}

TrafficDemand SaturationTraffic::demand(std::int64_t node, core::Rng& rng) {
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

void SaturationTraffic::demand_batch(std::int64_t node_begin, std::int64_t node_end,
                                     core::Rng& rng, TrafficDemand* out) {
  batch_single(*this, node_begin, node_end, rng, out);
}

void SaturationTraffic::demand_batch_streams(std::int64_t node_begin,
                                             std::int64_t node_end, core::Rng* rngs,
                                             TrafficDemand* out) {
  batch_streams(*this, node_begin, node_end, rngs, out);
}

std::size_t SaturationTraffic::demand_batch_senders(std::int64_t node_begin,
                                                    std::int64_t node_end,
                                                    core::Rng& rng,
                                                    SenderDemand* out) {
  return senders_single(*this, node_begin, node_end, rng, out);
}

std::size_t SaturationTraffic::demand_batch_senders_streams(
    std::int64_t node_begin, std::int64_t node_end, core::Rng* rngs,
    SenderDemand* out) {
  return senders_streams(*this, node_begin, node_end, rngs, out);
}

}  // namespace otis::sim
