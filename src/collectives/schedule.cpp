#include "collectives/schedule.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "core/error.hpp"

namespace otis::collectives {

std::string validate_schedule(const hypergraph::StackGraph& network,
                              const SlotSchedule& schedule) {
  const auto& hg = network.hypergraph();
  for (std::size_t slot = 0; slot < schedule.slots.size(); ++slot) {
    std::set<hypergraph::HyperarcId> used;
    for (const Transmission& tx : schedule.slots[slot]) {
      if (tx.coupler < 0 || tx.coupler >= hg.hyperarc_count()) {
        return "slot " + std::to_string(slot) + ": coupler out of range";
      }
      if (!used.insert(tx.coupler).second) {
        return "slot " + std::to_string(slot) + ": coupler " +
               std::to_string(tx.coupler) +
               " carries two transmissions (single wavelength)";
      }
      const auto& sources = hg.hyperarc(tx.coupler).sources;
      if (std::find(sources.begin(), sources.end(), tx.sender) ==
          sources.end()) {
        return "slot " + std::to_string(slot) + ": node " +
               std::to_string(tx.sender) + " cannot feed coupler " +
               std::to_string(tx.coupler);
      }
    }
  }
  return {};
}

Knowledge initial_knowledge(hypergraph::Node node_count) {
  Knowledge knowledge(static_cast<std::size_t>(node_count),
                      std::vector<char>(static_cast<std::size_t>(node_count),
                                        0));
  for (hypergraph::Node v = 0; v < node_count; ++v) {
    knowledge[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 1;
  }
  return knowledge;
}

Knowledge run_schedule(const hypergraph::StackGraph& network,
                       const SlotSchedule& schedule, Knowledge knowledge) {
  const auto& hg = network.hypergraph();
  OTIS_REQUIRE(static_cast<hypergraph::Node>(knowledge.size()) ==
                   hg.node_count(),
               "run_schedule: knowledge size mismatch");
  for (const auto& slot : schedule.slots) {
    // Read phase: snapshot the payloads first so simultaneous
    // transmissions cannot see each other's deliveries.
    std::vector<const std::vector<char>*> payloads;
    payloads.reserve(slot.size());
    for (const Transmission& tx : slot) {
      payloads.push_back(&knowledge[static_cast<std::size_t>(tx.sender)]);
    }
    // Copy payloads (senders may also be receivers in the same slot).
    std::vector<std::vector<char>> copies;
    copies.reserve(slot.size());
    for (const auto* p : payloads) {
      copies.push_back(*p);
    }
    // Deliver phase.
    for (std::size_t i = 0; i < slot.size(); ++i) {
      for (hypergraph::Node target :
           hg.hyperarc(slot[i].coupler).targets) {
        auto& dest = knowledge[static_cast<std::size_t>(target)];
        const auto& payload = copies[i];
        for (std::size_t b = 0; b < payload.size(); ++b) {
          dest[b] = static_cast<char>(dest[b] | payload[b]);
        }
      }
    }
  }
  return knowledge;
}

bool broadcast_complete(const Knowledge& knowledge, hypergraph::Node root) {
  for (const auto& known : knowledge) {
    if (!known[static_cast<std::size_t>(root)]) {
      return false;
    }
  }
  return true;
}

bool gossip_complete(const Knowledge& knowledge) {
  for (const auto& known : knowledge) {
    for (char bit : known) {
      if (!bit) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace otis::collectives
