#pragma once
/// \file pops.hpp
/// The Partitioned Optical Passive Star network POPS(t, g)
/// (Chiarulli et al. 1996; paper Sec. 2.4, Figs. 4-5).
///
/// N = t*g processors split into g groups of t; one OPS coupler of degree
/// t per ordered pair (i, j) of groups (g^2 couplers), coupler (i, j)
/// fed by group i and heard by group j. Single-hop: every processor
/// reaches every other in one coupler traversal. As a stack-graph it is
/// sigma(t, K+_g) (Berthome-Ferreira 1996).

#include <cstdint>
#include <utility>

#include "hypergraph/stack_graph.hpp"

namespace otis::hypergraph {

/// POPS(t, g) as a thin, label-aware wrapper over sigma(t, K+_g).
class Pops {
 public:
  /// Requires t >= 1 (group size) and g >= 1 (group count).
  Pops(std::int64_t group_size, std::int64_t group_count);

  [[nodiscard]] std::int64_t group_size() const noexcept { return t_; }
  [[nodiscard]] std::int64_t group_count() const noexcept { return g_; }
  /// N = t*g.
  [[nodiscard]] std::int64_t processor_count() const noexcept {
    return t_ * g_;
  }
  /// g^2 couplers of degree t.
  [[nodiscard]] std::int64_t coupler_count() const noexcept { return g_ * g_; }

  /// The stack-graph model sigma(t, K+_g).
  [[nodiscard]] const StackGraph& stack() const noexcept { return stack_; }

  /// Group of a processor.
  [[nodiscard]] std::int64_t group_of(Node p) const {
    return stack_.project(p);
  }

  /// Index of a processor within its group.
  [[nodiscard]] std::int64_t index_in_group(Node p) const {
    return stack_.copy_index(p);
  }

  /// Processor id of (group, index).
  [[nodiscard]] Node processor(std::int64_t group, std::int64_t index) const {
    return stack_.node_of(group, index);
  }

  /// Coupler id for the (source group i, destination group j) pair.
  [[nodiscard]] HyperarcId coupler(std::int64_t i, std::int64_t j) const;

  /// Inverse of coupler(): the (i, j) label of a coupler id.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> coupler_label(
      HyperarcId h) const;

 private:
  std::int64_t t_;
  std::int64_t g_;
  StackGraph stack_;
};

}  // namespace otis::hypergraph
