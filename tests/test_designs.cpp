// Tests for the optical design builders and the light-tracing verifier:
// each of the paper's constructions (Sec. 3.2 Imase-Itoh, Sec. 4.1 POPS,
// Sec. 4.2 stack-Kautz) must trace to exactly its target topology, with
// the bill of materials the paper states (Fig. 12's counts in
// particular).

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "designs/builders.hpp"
#include "designs/design.hpp"
#include "designs/group_block.hpp"
#include "designs/verify.hpp"
#include "optics/trace.hpp"
#include "topology/debruijn.hpp"
#include "topology/kautz.hpp"

namespace otis::designs {
namespace {

TEST(GroupBlock, TxShapesAndWiring) {
  // Fig. 8: a group of 6 processors to 4 multiplexers via OTIS(6,4).
  optics::Netlist netlist;
  GroupTxBlock block = build_group_tx(netlist, 6, 4, "g");
  EXPECT_EQ(block.tx.size(), 6u);
  EXPECT_EQ(block.tx[0].size(), 4u);
  EXPECT_EQ(block.mux.size(), 4u);
  EXPECT_EQ(netlist.count(optics::ComponentKind::kTransmitter), 24);
  EXPECT_EQ(netlist.count(optics::ComponentKind::kMultiplexer), 4);
  const optics::Component& otis = netlist.component(block.otis);
  EXPECT_EQ(otis.otis_groups, 6);
  EXPECT_EQ(otis.otis_group_size, 4);
  // Only the mux outputs dangle (they go to the interconnect).
  auto dangling = netlist.find_dangling_port();
  ASSERT_TRUE(dangling.has_value());
  EXPECT_NE(dangling->find("multiplexer"), std::string::npos);
}

TEST(GroupBlock, RxShapesAndWiring) {
  // Fig. 9: 3 beam-splitters to a group of 5 processors via OTIS(3,5).
  optics::Netlist netlist;
  GroupRxBlock block = build_group_rx(netlist, 3, 5, "g");
  EXPECT_EQ(block.splitter.size(), 3u);
  EXPECT_EQ(block.rx.size(), 5u);
  EXPECT_EQ(block.rx[0].size(), 3u);
  EXPECT_EQ(netlist.count(optics::ComponentKind::kReceiver), 15);
  const optics::Component& otis = netlist.component(block.otis);
  EXPECT_EQ(otis.otis_groups, 3);
  EXPECT_EQ(otis.otis_group_size, 5);
}

TEST(GroupBlock, TxThenRxFormsCouplers) {
  // Closing a TX block onto an RX block of the same shape yields s
  // couplers connecting the group to itself; verify by tracing.
  optics::Netlist netlist;
  GroupTxBlock tx = build_group_tx(netlist, 3, 2, "g");
  GroupRxBlock rx = build_group_rx(netlist, 2, 3, "g");
  for (std::int64_t c = 0; c < 2; ++c) {
    netlist.connect({tx.mux[static_cast<std::size_t>(c)], 0},
                    {rx.splitter[static_cast<std::size_t>(c)], 0});
  }
  EXPECT_FALSE(netlist.find_dangling_port().has_value());
  auto endpoints =
      optics::trace_from_transmitter(netlist, tx.tx[0][0], {});
  EXPECT_EQ(endpoints.size(), 3u);  // splitter fan-out = group size
  for (const auto& e : endpoints) {
    EXPECT_EQ(e.couplers, 1);
  }
}

TEST(ImaseItohDesign, Fig10VerifiesAndCounts) {
  NetworkDesign design = imase_itoh_design(3, 12);
  VerificationResult result = verify_design(design);
  EXPECT_TRUE(result.ok) << result.details;
  EXPECT_EQ(result.lightpaths, 36);  // n*d point-to-point paths
  BillOfMaterials bom = bill_of_materials(design.netlist);
  EXPECT_EQ(bom.transmitters, 36);
  EXPECT_EQ(bom.receivers, 36);
  EXPECT_EQ(bom.multiplexers, 0);
  EXPECT_EQ(bom.total_otis_blocks(), 1);
  EXPECT_EQ(bom.otis_blocks.at({3, 12}), 1);
}

TEST(ImaseItohDesign, SweepVerifies) {
  for (int d = 2; d <= 4; ++d) {
    for (std::int64_t n : {std::int64_t{d + 1}, std::int64_t{10},
                           std::int64_t{21}}) {
      NetworkDesign design = imase_itoh_design(d, n);
      VerificationResult result = verify_design(design);
      EXPECT_TRUE(result.ok) << design.name << ": " << result.details;
    }
  }
}

TEST(PopsDesign, Fig11VerifiesAndCounts) {
  NetworkDesign design = pops_design(4, 2);
  VerificationResult result = verify_design(design);
  EXPECT_TRUE(result.ok) << result.details;
  EXPECT_EQ(result.couplers_seen, 4);  // g^2 couplers
  BillOfMaterials bom = bill_of_materials(design.netlist);
  // Sec. 4.1: per group one OTIS(t,g) and one OTIS(g,t), plus one
  // OTIS(g,g) interconnect. For POPS(4,2): 2x OTIS(4,2), 2x OTIS(2,4),
  // 1x OTIS(2,2) (Fig. 11 draws the per-group planes merged).
  EXPECT_EQ(bom.otis_blocks.at({4, 2}), 2);
  EXPECT_EQ(bom.otis_blocks.at({2, 4}), 2);
  EXPECT_EQ(bom.otis_blocks.at({2, 2}), 1);
  EXPECT_EQ(bom.multiplexers, 4);
  EXPECT_EQ(bom.beam_splitters, 4);
  // Each of the 8 processors has g = 2 transmitters and 2 receivers.
  EXPECT_EQ(bom.transmitters, 16);
  EXPECT_EQ(bom.receivers, 16);
}

TEST(PopsDesign, SweepVerifies) {
  for (std::int64_t t : {1, 2, 5}) {
    for (std::int64_t g : {1, 2, 3, 4}) {
      NetworkDesign design = pops_design(t, g);
      VerificationResult result = verify_design(design);
      EXPECT_TRUE(result.ok) << design.name << ": " << result.details;
      EXPECT_EQ(result.couplers_seen, g * g);
    }
  }
}

TEST(StackKautzDesign, Fig12CountsExactly) {
  // The paper's worked example: SK(6,3,2) uses 12 OTIS(6,4), 12
  // OTIS(4,6), 48 optical multiplexers, 48 beam-splitters and one
  // OTIS(3,12); 72 processors of degree 4 in a diameter-2 network.
  NetworkDesign design = stack_kautz_design(6, 3, 2);
  BillOfMaterials bom = bill_of_materials(design.netlist);
  EXPECT_EQ(bom.otis_blocks.at({6, 4}), 12);
  EXPECT_EQ(bom.otis_blocks.at({4, 6}), 12);
  EXPECT_EQ(bom.otis_blocks.at({3, 12}), 1);
  EXPECT_EQ(bom.total_otis_blocks(), 25);
  EXPECT_EQ(bom.multiplexers, 48);
  EXPECT_EQ(bom.beam_splitters, 48);
  EXPECT_EQ(bom.fibers, 12);  // one loop-back per group
  EXPECT_EQ(design.processor_count, 72);
  // 72 processors x degree 4 transceivers.
  EXPECT_EQ(bom.transmitters, 288);
  EXPECT_EQ(bom.receivers, 288);
}

TEST(StackKautzDesign, Fig12Verifies) {
  NetworkDesign design = stack_kautz_design(6, 3, 2);
  VerificationResult result = verify_design(design);
  EXPECT_TRUE(result.ok) << result.details;
  EXPECT_EQ(result.couplers_seen, 48);
  // Every lightpath crosses exactly one coupler; 288 transmitters x 6
  // receivers each.
  EXPECT_EQ(result.lightpaths, 288 * 6);
}

TEST(StackKautzDesign, SweepVerifies) {
  struct Param {
    std::int64_t s;
    int d;
    int k;
  };
  for (const Param& p : {Param{2, 2, 2}, Param{1, 3, 2}, Param{3, 2, 3},
                         Param{2, 4, 2}}) {
    NetworkDesign design = stack_kautz_design(p.s, p.d, p.k);
    VerificationResult result = verify_design(design);
    EXPECT_TRUE(result.ok) << design.name << ": " << result.details;
  }
}

TEST(StackImaseItohDesign, NonKautzOrderVerifies) {
  // Group counts that are NOT Kautz orders: the Sec. 2.7 generalization.
  for (std::int64_t n : {5LL, 7LL, 9LL, 14LL}) {
    NetworkDesign design = stack_imase_itoh_design(2, 3, n);
    VerificationResult result = verify_design(design);
    EXPECT_TRUE(result.ok) << design.name << ": " << result.details;
  }
}

TEST(SingleOpsBus, VerifiesAndIsOneCoupler) {
  NetworkDesign design = single_ops_bus_design(16);
  VerificationResult result = verify_design(design);
  EXPECT_TRUE(result.ok) << result.details;
  EXPECT_EQ(result.couplers_seen, 1);
  BillOfMaterials bom = bill_of_materials(design.netlist);
  EXPECT_EQ(bom.multiplexers, 1);
  EXPECT_EQ(bom.beam_splitters, 1);
  EXPECT_EQ(bom.total_otis_blocks(), 0);
}

TEST(FiberBaseline, DeBruijnWiresVerify) {
  topology::DeBruijn db(2, 3);
  NetworkDesign design = fiber_point_to_point_design(db.graph(), "B(2,3)");
  VerificationResult result = verify_design(design);
  EXPECT_TRUE(result.ok) << result.details;
  BillOfMaterials bom = bill_of_materials(design.netlist);
  EXPECT_EQ(bom.fibers, db.graph().size());
  EXPECT_EQ(bom.total_otis_blocks(), 0);
}

TEST(FiberBaseline, KautzWiresCostMoreFibersThanOtisDesign) {
  // The hardware claim behind Corollary 1: one OTIS block replaces N*d
  // dedicated links.
  topology::Kautz kautz(3, 2);
  NetworkDesign wired = fiber_point_to_point_design(kautz.graph(), "KG(3,2)");
  NetworkDesign optical = imase_itoh_design(3, 12);
  BillOfMaterials wired_bom = bill_of_materials(wired.netlist);
  BillOfMaterials optical_bom = bill_of_materials(optical.netlist);
  EXPECT_EQ(wired_bom.fibers, 36);
  EXPECT_EQ(optical_bom.fibers, 0);
  EXPECT_EQ(optical_bom.total_otis_blocks(), 1);
  EXPECT_TRUE(verify_design(wired).ok);
}

TEST(Verify, DetectsMiswiredDesign) {
  // Swap two multiplexer->OTIS links in a POPS design: verification must
  // fail because the realized hypergraph changes.
  NetworkDesign design = pops_design(2, 2);
  // Rebuild a broken variant manually: easiest is to corrupt the target.
  hypergraph::Hyperarc wrong{{0, 1}, {0, 1}};
  std::vector<hypergraph::Hyperarc> arcs(
      design.target_hypergraph->hyperarcs());
  arcs[0] = wrong;
  arcs[1] = wrong;  // duplicate hyperarc cannot match g^2 distinct couplers
  design.target_hypergraph =
      hypergraph::DirectedHypergraph(design.processor_count, arcs);
  VerificationResult result = verify_design(design);
  EXPECT_FALSE(result.ok);
}

TEST(Verify, RequiresExactlyOneTarget) {
  NetworkDesign design = pops_design(2, 2);
  design.target_digraph = graph::Digraph(4);  // now both targets set
  EXPECT_FALSE(verify_design(design).ok);
}

TEST(Bom, ToStringMentionsEveryKind) {
  NetworkDesign design = stack_kautz_design(2, 2, 2);
  const std::string text = bill_of_materials(design.netlist).to_string();
  EXPECT_NE(text.find("transmitters"), std::string::npos);
  EXPECT_NE(text.find("OTIS(2,6)"), std::string::npos);
}

TEST(Bom, LensletCount) {
  BillOfMaterials bom;
  bom.otis_blocks[{3, 12}] = 1;
  bom.otis_blocks[{6, 4}] = 2;
  EXPECT_EQ(bom.total_lenslets(), 2 * 36 + 2 * 2 * 24);
}

TEST(Design, ProcessorOfReceiverIndex) {
  NetworkDesign design = pops_design(2, 2);
  for (std::int64_t p = 0; p < design.processor_count; ++p) {
    for (optics::ComponentId rx :
         design.rx_of_processor[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(design.processor_of_receiver(rx), p);
    }
  }
  EXPECT_THROW((void)design.processor_of_receiver(
                   design.tx_of_processor[0][0]),
               core::Error);
}

}  // namespace
}  // namespace otis::designs
