// Tests for the campaign subsystem: grid expansion, spec parsing, the
// one-compile-per-topology contract, thread-count invariance of the
// emitted JSONL/CSV streams, and resume-from-manifest. The big spec used
// below is the ISSUE acceptance grid -- >= 100 cells across SK(4,3,2),
// POPS(6,12) and SII(4,2,12) -- with a short measurement window so the
// whole file stays fast.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/grid.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "workload/trace.hpp"

namespace {

using namespace otis;
using campaign::CampaignOptions;
using campaign::CampaignRunner;
using campaign::CampaignSpec;
using campaign::TopologySpec;

/// The ISSUE acceptance grid: 3 topologies x 1 arbitration x 5 loads x
/// 2 wavelengths x 4 seeds = 120 cells, tiny windows.
CampaignSpec acceptance_spec() {
  CampaignSpec spec;
  spec.name = "acceptance";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2),
                     TopologySpec::pops(6, 12),
                     TopologySpec::stack_imase_itoh(4, 2, 12)};
  spec.loads = {0.1, 0.3, 0.5, 0.7, 0.9};
  spec.wavelengths = {1, 2};
  spec.seeds = {1, 2, 3, 4};
  spec.warmup_slots = 10;
  spec.measure_slots = 40;
  return spec;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_campaign_" + tag + "_" +
               std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(CampaignGrid, ExpansionCountsAndOrder) {
  const CampaignSpec spec = acceptance_spec();
  EXPECT_EQ(spec.cell_count(), 3 * 5 * 2 * 4);

  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 120u);

  std::set<std::string> ids;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<std::int64_t>(i));
    ids.insert(cells[i].id);
  }
  EXPECT_EQ(ids.size(), cells.size()) << "cell IDs must be unique";

  // Nesting order: seeds innermost, then wavelengths, loads, topology.
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[0].wavelengths, 1);
  EXPECT_EQ(cells[4].wavelengths, 2);
  EXPECT_DOUBLE_EQ(cells[0].load, 0.1);
  EXPECT_DOUBLE_EQ(cells[8].load, 0.3);
  EXPECT_EQ(cells[0].topology, 0u);
  EXPECT_EQ(cells[40].topology, 1u);
  EXPECT_EQ(cells[80].topology, 2u);

  EXPECT_EQ(cells[0].id,
            "SK(4,3,2)|token|uniform|load=0.100000|w=1|routes=auto|timing=none|"
            "workload=none|seed=1");

  // Axis values that collide in the ID's 6-decimal load form are
  // refused (a silent collision would make resume drop cells).
  CampaignSpec colliding = spec;
  colliding.loads = {0.1, 0.1000000001};
  EXPECT_THROW(campaign::expand_grid(colliding), core::Error);
}

TEST(CampaignSpecJson, ParsesFullSchema) {
  const std::string json = R"({
    "name": "parse-test",
    "topologies": [
      {"kind": "stack_kautz", "s": 6, "d": 3, "k": 2},
      {"kind": "pops", "t": 6, "g": 12},
      {"kind": "stack_imase_itoh", "s": 4, "d": 2, "n": 12}
    ],
    "arbitrations": ["token", "random", "aloha"],
    "traffic": "saturation",
    "loads": [1.0],
    "wavelengths": [1, 4],
    "seeds": [7, 8],
    "warmup_slots": 50,
    "measure_slots": 200,
    "queue_capacity": 16,
    "engine": "sharded",
    "engine_threads": 2,
    "latency_stats": "sketch",
    "checkpoint_every": 500
  })";
  const CampaignSpec spec = campaign::parse_campaign_spec(json);
  EXPECT_EQ(spec.name, "parse-test");
  ASSERT_EQ(spec.topologies.size(), 3u);
  EXPECT_EQ(spec.topologies[0].label(), "SK(6,3,2)");
  EXPECT_EQ(spec.topologies[1].label(), "POPS(6,12)");
  EXPECT_EQ(spec.topologies[2].label(), "SII(4,2,12)");
  EXPECT_EQ(spec.arbitrations.size(), 3u);
  EXPECT_EQ(spec.traffics,
            (std::vector<campaign::TrafficSpec>{
                campaign::TrafficKind::kSaturation}));
  EXPECT_EQ(spec.wavelengths, (std::vector<std::int64_t>{1, 4}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(spec.warmup_slots, 50);
  EXPECT_EQ(spec.measure_slots, 200);
  EXPECT_EQ(spec.queue_capacity, 16);
  EXPECT_EQ(spec.engine, sim::Engine::kSharded);
  EXPECT_EQ(spec.engine_threads, 2);
  EXPECT_EQ(spec.latency_stats, sim::LatencyMode::kSketch);
  EXPECT_EQ(spec.checkpoint_every, 500);
  EXPECT_EQ(spec.cell_count(), 3 * 3 * 1 * 2 * 2);
}

TEST(CampaignSpecJson, DefaultsAndErrors) {
  const CampaignSpec spec = campaign::parse_campaign_spec(
      R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}]})");
  EXPECT_EQ(spec.arbitrations.size(), 1u);
  EXPECT_EQ(spec.traffics,
            (std::vector<campaign::TrafficSpec>{
                campaign::TrafficKind::kUniform}));
  EXPECT_EQ(spec.route_tables,
            (std::vector<sim::RouteTable>{sim::RouteTable::kAuto}));
  EXPECT_EQ(spec.engine, sim::Engine::kPhased);

  EXPECT_THROW(campaign::parse_campaign_spec("{}"), core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"({"topologies": [{"kind": "ring", "n": 4}]})"),
               core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "arbitrations": ["coin-flip"]})"),
      core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "loads": []})"),
      core::Error);
  // Misspelled keys fail loudly instead of silently running defaults.
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
              "measure_slot": 100000})"),
      core::Error);
  EXPECT_THROW(
      campaign::parse_campaign_spec(
          R"({"topologies": [{"kind": "pops", "t": 2, "g": 3, "s": 4}]})"),
      core::Error);
}

TEST(CampaignRunnerTest, OneCompilePerTopology) {
  CampaignSpec spec = acceptance_spec();
  campaign::reset_topology_compile_count();

  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  CampaignOptions options;
  options.threads = 4;
  const campaign::CampaignReport report = runner.run(options);

  EXPECT_EQ(report.total_cells, 120);
  EXPECT_EQ(report.completed_cells, 120);
  EXPECT_EQ(report.skipped_cells, 0);
  EXPECT_EQ(report.topologies_compiled, 3);
  EXPECT_EQ(campaign::topology_compile_count(), 3)
      << "120 cells over 3 topologies must compile exactly 3 route tables";

  // 3 topologies x 5 loads x 2 wavelengths groups, each folding 4 seeds.
  EXPECT_EQ(aggregate->groups().size(), 30u);
  for (const campaign::AggregateSink::Group& group : aggregate->groups()) {
    EXPECT_EQ(group.point.trials, 4);
    EXPECT_GE(group.point.throughput_stddev, 0.0);
  }
}

TEST(CampaignRunnerTest, JsonlBitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = acceptance_spec();
  ScratchDir dir1("t1");
  ScratchDir dir8("t8");

  CampaignOptions options1;
  options1.threads = 1;
  options1.out_dir = dir1.path().string();
  CampaignRunner(spec).run(options1);

  CampaignOptions options8;
  options8.threads = 8;
  options8.out_dir = dir8.path().string();
  CampaignRunner(spec).run(options8);

  const std::string jsonl1 =
      read_file(dir1.path() / CampaignRunner::kJsonlFile);
  const std::string jsonl8 =
      read_file(dir8.path() / CampaignRunner::kJsonlFile);
  ASSERT_FALSE(jsonl1.empty());
  EXPECT_EQ(jsonl1, jsonl8) << "JSONL must be bit-identical for any "
                               "--threads value";
  EXPECT_EQ(read_file(dir1.path() / CampaignRunner::kCsvFile),
            read_file(dir8.path() / CampaignRunner::kCsvFile));

  // Every line is valid JSON with the cell's ID first.
  std::istringstream lines(jsonl1);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const core::Json row = core::Json::parse(line);
    EXPECT_TRUE(row.is_object());
    EXPECT_FALSE(row.at("cell_id").as_string().empty());
    ++count;
  }
  EXPECT_EQ(count, 120u);
}

TEST(CampaignRunnerTest, ResumeSkipsCompletedCells) {
  const CampaignSpec spec = acceptance_spec();

  // Reference: one uninterrupted run.
  ScratchDir full("full");
  CampaignOptions full_options;
  full_options.threads = 4;
  full_options.out_dir = full.path().string();
  CampaignRunner(spec).run(full_options);
  const std::string full_jsonl =
      read_file(full.path() / CampaignRunner::kJsonlFile);
  const std::string full_manifest =
      read_file(full.path() / CampaignRunner::kManifestFile);

  // Simulated interrupt: keep the first 30 cells' rows + manifest lines.
  ScratchDir part("part");
  constexpr std::size_t kDone = 30;
  auto truncate_lines = [](const std::string& text, std::size_t lines) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < lines && pos != std::string::npos; ++i) {
      pos = text.find('\n', pos);
      if (pos != std::string::npos) {
        ++pos;
      }
    }
    return text.substr(0, pos);
  };
  std::ofstream(part.path() / CampaignRunner::kJsonlFile)
      << truncate_lines(full_jsonl, kDone);
  std::ofstream(part.path() / CampaignRunner::kManifestFile)
      << truncate_lines(full_manifest, kDone);
  // CSV: header + first kDone rows.
  std::ofstream(part.path() / CampaignRunner::kCsvFile) << truncate_lines(
      read_file(full.path() / CampaignRunner::kCsvFile), kDone + 1);

  campaign::reset_topology_compile_count();
  CampaignOptions resume_options;
  resume_options.threads = 4;
  resume_options.out_dir = part.path().string();
  resume_options.resume = true;
  const campaign::CampaignReport report =
      CampaignRunner(spec).run(resume_options);

  EXPECT_EQ(report.skipped_cells, static_cast<std::int64_t>(kDone));
  EXPECT_EQ(report.completed_cells,
            static_cast<std::int64_t>(120 - kDone));
  // 30 done cells cover only the first topology's first 30 of 40 cells,
  // so all 3 topologies still have pending work.
  EXPECT_EQ(campaign::topology_compile_count(), 3);

  // After resume the output files equal the uninterrupted run's, byte
  // for byte.
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kJsonlFile),
            full_jsonl);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kManifestFile),
            full_manifest);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kCsvFile),
            read_file(full.path() / CampaignRunner::kCsvFile));

  // Resuming a finished campaign is a no-op.
  const campaign::CampaignReport again =
      CampaignRunner(spec).run(resume_options);
  EXPECT_EQ(again.skipped_cells, 120);
  EXPECT_EQ(again.completed_cells, 0);
  EXPECT_EQ(read_file(part.path() / CampaignRunner::kJsonlFile),
            full_jsonl);
}

TEST(CampaignRunnerTest, ManifestSurvivesSpecGrowth) {
  // IDs are parameter-derived, so enlarging an axis only runs new cells.
  CampaignSpec small;
  small.topologies = {TopologySpec::pops(3, 4)};
  small.loads = {0.2};
  small.seeds = {1, 2};
  small.warmup_slots = 5;
  small.measure_slots = 20;

  ScratchDir dir("grow");
  CampaignOptions options;
  options.out_dir = dir.path().string();
  CampaignRunner(small).run(options);

  CampaignSpec grown = small;
  grown.seeds = {1, 2, 3};
  options.resume = true;
  const campaign::CampaignReport report = CampaignRunner(grown).run(options);
  EXPECT_EQ(report.skipped_cells, 2);
  EXPECT_EQ(report.completed_cells, 1);
}

TEST(CampaignGrid, TrafficAndRoutesAxesExpand) {
  CampaignSpec spec;
  spec.topologies = {TopologySpec::pops(3, 4)};
  spec.traffics = {campaign::TrafficKind::kUniform,
                   campaign::TrafficKind::kHotspot,
                   campaign::TrafficKind::kPermutation,
                   campaign::TrafficKind::kBursty};
  spec.route_tables = {sim::RouteTable::kDense, sim::RouteTable::kCompressed};
  spec.loads = {0.3};
  spec.seeds = {1, 2};
  EXPECT_EQ(spec.cell_count(), 4 * 2 * 2);

  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 16u);
  // Nesting: traffic above load/wavelengths, routes above seed.
  EXPECT_EQ(cells[0].traffic.kind, campaign::TrafficKind::kUniform);
  EXPECT_EQ(cells[4].traffic.kind, campaign::TrafficKind::kHotspot);
  EXPECT_EQ(cells[0].routes, sim::RouteTable::kDense);
  EXPECT_EQ(cells[2].routes, sim::RouteTable::kCompressed);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[0].id,
            "POPS(3,4)|token|uniform|load=0.300000|w=1|routes=dense|timing=none|"
            "workload=none|seed=1");
  EXPECT_EQ(cells[6].id,
            "POPS(3,4)|token|hotspot(n0,f0.2000)|load=0.300000|w=1|"
            "routes=compressed|timing=none|workload=none|seed=1");
}

TEST(CampaignGrid, TopologySpecProcessorCountMatchesNetworks) {
  EXPECT_EQ(TopologySpec::stack_kautz(4, 3, 2).processor_count(), 48);
  EXPECT_EQ(TopologySpec::stack_kautz(6, 3, 2).processor_count(), 72);
  EXPECT_EQ(TopologySpec::stack_kautz(10, 10, 3).processor_count(), 11000);
  EXPECT_EQ(TopologySpec::pops(6, 12).processor_count(), 72);
  EXPECT_EQ(TopologySpec::stack_imase_itoh(4, 2, 12).processor_count(), 48);
}

TEST(CampaignGrid, OverridesResolveExecutionKnobs) {
  CampaignSpec spec;
  spec.topologies = {TopologySpec::pops(3, 4),
                     TopologySpec::stack_kautz(4, 3, 2)};
  spec.seeds = {1};
  campaign::CellOverride override;
  override.topology = "SK(4,3,2)";
  override.engine = sim::Engine::kSharded;
  override.engine_threads = 4;
  override.route_table = sim::RouteTable::kCompressed;
  spec.overrides = {override};

  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].engine, sim::Engine::kPhased);
  EXPECT_EQ(cells[0].routes, sim::RouteTable::kAuto);
  EXPECT_EQ(cells[1].engine, sim::Engine::kSharded);
  EXPECT_EQ(cells[1].engine_threads, 4);
  EXPECT_EQ(cells[1].routes, sim::RouteTable::kCompressed);
  EXPECT_EQ(cells[1].id,
            "SK(4,3,2)|token|uniform|load=0.500000|w=1|routes=compressed|"
            "timing=none|workload=none|seed=1");

  // Several overrides for one topology layer in order, later wins.
  campaign::CellOverride second;
  second.topology = "SK(4,3,2)";
  second.engine_threads = 8;
  spec.overrides.push_back(second);
  EXPECT_EQ(campaign::expand_grid(spec)[1].engine_threads, 8);
  EXPECT_EQ(campaign::expand_grid(spec)[1].engine, sim::Engine::kSharded);
  spec.overrides.pop_back();

  // A pinned route table collapses that topology's routes axis: the
  // dense-vs-compressed comparison grid plus one pinned topology works.
  spec.route_tables = {sim::RouteTable::kDense, sim::RouteTable::kCompressed};
  EXPECT_EQ(spec.cell_count(), 2 + 1);
  const std::vector<campaign::CampaignCell> pinned =
      campaign::expand_grid(spec);
  ASSERT_EQ(pinned.size(), 3u);
  EXPECT_EQ(pinned[0].routes, sim::RouteTable::kDense);
  EXPECT_EQ(pinned[1].routes, sim::RouteTable::kCompressed);
  EXPECT_EQ(pinned[2].routes, sim::RouteTable::kCompressed);
  spec.route_tables = {sim::RouteTable::kAuto};

  // Overrides must name a topology that exists in the grid.
  spec.overrides[0].topology = "SK(9,9,9)";
  EXPECT_THROW(campaign::expand_grid(spec), core::Error);
}

TEST(CampaignSpecJson, ParsesTrafficRoutesAxesAndOverrides) {
  const CampaignSpec spec = campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 2, "g": 3},
                   {"kind": "stack_kautz", "s": 4, "d": 3, "k": 2}],
    "traffic": ["uniform", "hotspot", "bursty"],
    "routes": ["dense", "compressed"],
    "hotspot_node": 1, "hotspot_fraction": 0.5,
    "bursty_enter_on": 0.1, "bursty_exit_on": 0.4,
    "overrides": [{"topology": "SK(4,3,2)", "engine": "sharded",
                   "engine_threads": 2, "routes": "compressed"}]
  })json");
  ASSERT_EQ(spec.traffics.size(), 3u);
  EXPECT_EQ(spec.traffics[0].kind, campaign::TrafficKind::kUniform);
  EXPECT_EQ(spec.traffics[1].kind, campaign::TrafficKind::kHotspot);
  // Plain-string entries inherit the spec-level shape defaults.
  EXPECT_EQ(spec.traffics[1].hotspot_node, 1);
  EXPECT_DOUBLE_EQ(spec.traffics[1].hotspot_fraction, 0.5);
  EXPECT_EQ(spec.traffics[1].label(), "hotspot(n1,f0.5000)");
  EXPECT_EQ(spec.traffics[2].kind, campaign::TrafficKind::kBursty);
  EXPECT_DOUBLE_EQ(spec.traffics[2].bursty_enter_on, 0.1);
  EXPECT_DOUBLE_EQ(spec.traffics[2].bursty_exit_on, 0.4);
  EXPECT_EQ(spec.traffics[2].label(), "bursty(on0.1000,off0.4000)");
  EXPECT_EQ(spec.route_tables,
            (std::vector<sim::RouteTable>{sim::RouteTable::kDense,
                                          sim::RouteTable::kCompressed}));
  EXPECT_EQ(spec.hotspot_node, 1);
  EXPECT_DOUBLE_EQ(spec.hotspot_fraction, 0.5);
  EXPECT_DOUBLE_EQ(spec.bursty_enter_on, 0.1);
  EXPECT_DOUBLE_EQ(spec.bursty_exit_on, 0.4);
  ASSERT_EQ(spec.overrides.size(), 1u);
  EXPECT_EQ(spec.overrides[0].topology, "SK(4,3,2)");
  EXPECT_EQ(spec.overrides[0].engine, sim::Engine::kSharded);
  EXPECT_EQ(spec.overrides[0].engine_threads, 2);
  EXPECT_EQ(spec.overrides[0].route_table, sim::RouteTable::kCompressed);

  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "traffic": ["poisson"]})"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "routes": ["sparse"]})"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"json({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "overrides": [{"topology": "POPS(2,3)",
                                      "route": "dense"}]})json"),
               core::Error);
}

TEST(CampaignRunnerTest, TrafficAxisFlowsThroughToRows) {
  CampaignSpec spec;
  spec.name = "traffic-axis";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2)};
  spec.traffics = {campaign::TrafficKind::kUniform,
                   campaign::TrafficKind::kHotspot,
                   campaign::TrafficKind::kPermutation,
                   campaign::TrafficKind::kBursty};
  spec.loads = {0.4};
  spec.seeds = {1, 2};
  spec.warmup_slots = 10;
  spec.measure_slots = 60;

  ScratchDir dir("traffic");
  CampaignOptions options;
  options.threads = 4;
  options.out_dir = dir.path().string();
  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  runner.run(options);

  // One aggregate group per traffic family (the seed axis folds), so
  // the sink must key on traffic, not only on (load, wavelengths).
  ASSERT_EQ(aggregate->groups().size(), 4u);

  std::map<std::string, int> by_traffic;
  std::istringstream lines(read_file(dir.path() / CampaignRunner::kJsonlFile));
  std::string line;
  while (std::getline(lines, line)) {
    const core::Json row = core::Json::parse(line);
    ++by_traffic[row.at("traffic").as_string()];
    EXPECT_EQ(row.at("routes").as_string(), "auto");
    // Each family must actually move packets in this tiny window.
    EXPECT_GT(row.at("delivered").as_int(), 0);
  }
  EXPECT_EQ(by_traffic["uniform"], 2);
  // Shaped families carry their parameters in the row label.
  EXPECT_EQ(by_traffic["hotspot(n0,f0.2000)"], 2);
  EXPECT_EQ(by_traffic["permutation"], 2);
  EXPECT_EQ(by_traffic["bursty(on0.0500,off0.2000)"], 2);
}

TEST(CampaignRunnerTest, DenseAndCompressedCellsProduceIdenticalMetrics) {
  CampaignSpec spec;
  spec.name = "routes-parity";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2),
                     TopologySpec::pops(6, 12),
                     TopologySpec::stack_imase_itoh(4, 2, 12)};
  spec.route_tables = {sim::RouteTable::kDense, sim::RouteTable::kCompressed};
  spec.loads = {0.5};
  spec.seeds = {3};
  spec.warmup_slots = 10;
  spec.measure_slots = 80;

  ScratchDir dir("routesparity");
  CampaignOptions options;
  options.threads = 2;
  options.out_dir = dir.path().string();
  campaign::reset_topology_compile_count();
  const campaign::CampaignReport report = CampaignRunner(spec).run(options);
  EXPECT_EQ(report.completed_cells, 6);
  // Both representations of a topology come from ONE build call.
  EXPECT_EQ(campaign::topology_compile_count(), 3);

  // Per topology, the dense and compressed rows must agree on every
  // metric -- only cell_id and the routes field may differ.
  std::map<std::string, std::string> stripped;
  std::istringstream lines(read_file(dir.path() / CampaignRunner::kJsonlFile));
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    const core::Json row = core::Json::parse(line);
    const std::string topology = row.at("topology").as_string();
    std::ostringstream metrics;
    metrics << row.at("offered").as_int() << "/"
            << row.at("delivered").as_int() << "/"
            << row.at("collisions").as_int() << "/"
            << row.at("coupler_transmissions").as_int() << "/"
            << row.at("backlog").as_int() << "/"
            << row.at("mean_latency").as_number() << "/"
            << row.at("p95_latency").as_number();
    auto [it, inserted] = stripped.try_emplace(topology, metrics.str());
    if (!inserted) {
      EXPECT_EQ(it->second, metrics.str())
          << topology << ": dense and compressed rows must be identical";
    }
  }
  EXPECT_EQ(rows, 6);
}

TEST(CampaignRunnerTest, ShardsPartitionTheGridAndMergeToFullOutputs) {
  const CampaignSpec spec = acceptance_spec();

  ScratchDir full("shardfull");
  CampaignOptions full_options;
  full_options.threads = 4;
  full_options.out_dir = full.path().string();
  CampaignRunner(spec).run(full_options);

  // Three machines, deterministic split: every cell exactly once.
  constexpr int kShards = 3;
  std::vector<std::unique_ptr<ScratchDir>> dirs;
  std::multiset<std::string> shard_jsonl_lines;
  std::string merged_manifest;
  std::string merged_jsonl;
  std::int64_t completed_total = 0;
  for (int i = 0; i < kShards; ++i) {
    dirs.push_back(
        std::make_unique<ScratchDir>("shard" + std::to_string(i)));
    CampaignOptions options;
    options.threads = 2;
    options.out_dir = dirs.back()->path().string();
    options.shard_index = i;
    options.shard_count = kShards;
    const campaign::CampaignReport report = CampaignRunner(spec).run(options);
    EXPECT_EQ(report.total_cells, 120);
    EXPECT_EQ(report.completed_cells + report.out_of_shard_cells, 120);
    completed_total += report.completed_cells;
    const std::string jsonl =
        read_file(dirs.back()->path() / CampaignRunner::kJsonlFile);
    merged_jsonl += jsonl;
    merged_manifest +=
        read_file(dirs.back()->path() / CampaignRunner::kManifestFile);
    std::istringstream lines(jsonl);
    std::string line;
    while (std::getline(lines, line)) {
      shard_jsonl_lines.insert(line);
    }
  }
  EXPECT_EQ(completed_total, 120);

  // The shards' rows are exactly the full run's rows (order aside).
  std::multiset<std::string> full_lines;
  {
    std::istringstream lines(
        read_file(full.path() / CampaignRunner::kJsonlFile));
    std::string line;
    while (std::getline(lines, line)) {
      full_lines.insert(line);
    }
  }
  EXPECT_EQ(shard_jsonl_lines, full_lines);

  // Concatenating shard outputs yields a directory --resume recognizes
  // as a complete campaign: nothing left to simulate.
  ScratchDir merged("shardmerged");
  std::ofstream(merged.path() / CampaignRunner::kJsonlFile) << merged_jsonl;
  std::ofstream(merged.path() / CampaignRunner::kManifestFile)
      << merged_manifest;
  CampaignOptions resume_options;
  resume_options.out_dir = merged.path().string();
  resume_options.resume = true;
  resume_options.write_csv = false;
  const campaign::CampaignReport resumed =
      CampaignRunner(spec).run(resume_options);
  EXPECT_EQ(resumed.skipped_cells, 120);
  EXPECT_EQ(resumed.completed_cells, 0);

  // --resume composes with --shard: a shard resumed against the merged
  // manifest has no pending work either.
  resume_options.shard_index = 1;
  resume_options.shard_count = kShards;
  const campaign::CampaignReport shard_resumed =
      CampaignRunner(spec).run(resume_options);
  EXPECT_EQ(shard_resumed.completed_cells, 0);
  EXPECT_EQ(shard_resumed.skipped_cells, 40);
  EXPECT_EQ(shard_resumed.out_of_shard_cells, 80);
}

TEST(CampaignRunnerTest, LargeCompressedWdmCellRunsEndToEnd) {
  // The wdm_scale shape at test size: a >= 10^4-processor stack-Kautz
  // cell on the sharded engine with compressed routes, end to end
  // through spec -> grid -> runner -> sinks. The dense table (~1.5 GB)
  // is never materialized.
  CampaignSpec spec;
  spec.name = "wdm-scale-cell";
  spec.topologies = {TopologySpec::stack_kautz(10, 10, 3)};
  spec.traffics = {campaign::TrafficKind::kUniform};
  spec.loads = {0.5};
  spec.wavelengths = {4};
  spec.route_tables = {sim::RouteTable::kCompressed};
  spec.seeds = {1};
  spec.warmup_slots = 5;
  spec.measure_slots = 30;
  spec.engine = sim::Engine::kSharded;
  spec.engine_threads = 2;

  ScratchDir dir("wdmscale");
  CampaignOptions options;
  options.out_dir = dir.path().string();
  const campaign::CampaignReport report = CampaignRunner(spec).run(options);
  EXPECT_EQ(report.completed_cells, 1);

  const std::string jsonl =
      read_file(dir.path() / CampaignRunner::kJsonlFile);
  const core::Json row = core::Json::parse(jsonl);
  EXPECT_EQ(row.at("nodes").as_int(), 11000);
  EXPECT_EQ(row.at("routes").as_string(), "compressed");
  EXPECT_GT(row.at("delivered").as_int(), 0);
}

TEST(CampaignSpecJson, ParsesShapeSweepsAndTimingAxis) {
  const CampaignSpec spec = campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 2, "g": 3}],
    "traffic": ["uniform",
                {"kind": "hotspot", "node": 2, "fraction": [0.1, 0.3]},
                {"kind": "bursty", "enter_on": 0.05, "exit_on": [0.1, 0.2]}],
    "timings": ["none",
                {"profile": "const", "tuning": [256, 512],
                 "propagation": 128},
                {"profile": "level", "propagation": 64, "level_skew": 32,
                 "guard": 16}]
  })json");
  // Sweep arrays expand into one axis entry per value.
  ASSERT_EQ(spec.traffics.size(), 5u);
  EXPECT_EQ(spec.traffics[1].label(), "hotspot(n2,f0.1000)");
  EXPECT_EQ(spec.traffics[2].label(), "hotspot(n2,f0.3000)");
  EXPECT_EQ(spec.traffics[3].label(), "bursty(on0.0500,off0.1000)");
  EXPECT_EQ(spec.traffics[4].label(), "bursty(on0.0500,off0.2000)");
  ASSERT_EQ(spec.timings.size(), 4u);
  EXPECT_EQ(spec.timings[0].label(), "none");
  EXPECT_EQ(spec.timings[1].label(), "const(t256,p128,g0)");
  EXPECT_EQ(spec.timings[2].label(), "const(t512,p128,g0)");
  EXPECT_EQ(spec.timings[3].label(), "level(t0,p64,l32,g16)");
  EXPECT_EQ(spec.cell_count(), 5 * 4);

  // Non-slot-aligned cells run on the async engine; aligned cells keep
  // the spec engine. The timing label is part of the cell ID.
  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 20u);
  EXPECT_EQ(cells[0].engine, sim::Engine::kPhased);
  EXPECT_EQ(cells[1].engine, sim::Engine::kAsync);
  EXPECT_EQ(cells[1].id,
            "POPS(2,3)|token|uniform|load=0.500000|w=1|routes=auto|"
            "timing=const(t256,p128,g0)|workload=none|seed=1");

  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"json({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "timings": ["fast"]})json"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"json({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "timings": [{"profile": "warp"}]})json"),
               core::Error);
  // Fractional ticks must fail loudly, not truncate into a cell ID
  // that was never simulated.
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"json({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "timings": [{"profile": "const",
                                    "tuning": [256.5]}]})json"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(
                   R"json({"topologies": [{"kind": "pops", "t": 2, "g": 3}],
                       "traffic": [{"kind": "hotspot", "fracton": 0.2}]})json"),
               core::Error);
}

TEST(CampaignRunnerTest, ShapeSweepsProduceDistinctGroups) {
  // Two hotspot fractions in one grid: distinct cells, distinct
  // aggregate groups, and the hotter fraction concentrates traffic.
  CampaignSpec spec;
  spec.name = "shape-sweep";
  spec.topologies = {TopologySpec::pops(6, 4)};
  campaign::TrafficSpec mild(campaign::TrafficKind::kHotspot);
  mild.hotspot_fraction = 0.1;
  campaign::TrafficSpec hot = mild;
  hot.hotspot_fraction = 0.9;
  spec.traffics = {mild, hot};
  spec.loads = {0.5};
  spec.seeds = {1, 2};
  spec.warmup_slots = 10;
  spec.measure_slots = 200;

  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  runner.run({});
  ASSERT_EQ(aggregate->groups().size(), 2u);
  EXPECT_EQ(aggregate->groups()[0].traffic, "hotspot(n0,f0.1000)");
  EXPECT_EQ(aggregate->groups()[1].traffic, "hotspot(n0,f0.9000)");
  // Funnelling 90% of traffic into one node must hurt throughput.
  EXPECT_LT(aggregate->groups()[1].point.throughput_per_node,
            aggregate->groups()[0].point.throughput_per_node);
}

TEST(CampaignRunnerTest, TimingAxisFlowsThroughToRowsAndAggregate) {
  CampaignSpec spec;
  spec.name = "timing-axis";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2)};
  sim::TimingConfig skewed;
  skewed.profile = sim::SkewProfile::kConstant;
  skewed.tuning_ticks = 3 * sim::kTicksPerSlot;
  spec.timings = {sim::TimingConfig{}, skewed};
  spec.loads = {0.3};
  spec.seeds = {1, 2};
  spec.warmup_slots = 10;
  spec.measure_slots = 200;

  ScratchDir dir("timing");
  CampaignOptions options;
  options.threads = 2;
  options.out_dir = dir.path().string();
  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  runner.run(options);

  std::map<std::string, double> latency_by_timing;
  std::istringstream lines(
      read_file(dir.path() / CampaignRunner::kJsonlFile));
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    const core::Json row = core::Json::parse(line);
    latency_by_timing[row.at("timing").as_string()] =
        row.at("mean_latency").as_number();
    EXPECT_NE(row.at("cell_id").as_string().find("|timing="),
              std::string::npos);
  }
  EXPECT_EQ(rows, 4);
  ASSERT_EQ(latency_by_timing.count("none"), 1u);
  ASSERT_EQ(latency_by_timing.count("const(t3072,p0,g0)"), 1u);
  // Three slots of tuning per hop must show up in the latency.
  EXPECT_GT(latency_by_timing["const(t3072,p0,g0)"],
            latency_by_timing["none"] + 2.0);

  // The aggregate keys on timing: one group per axis value.
  ASSERT_EQ(aggregate->groups().size(), 2u);
  EXPECT_EQ(aggregate->groups()[0].timing, "none");
  EXPECT_EQ(aggregate->groups()[1].timing, "const(t3072,p0,g0)");
}

TEST(WorkStealingPool, RunsEveryItemOnceAndPropagatesErrors) {
  campaign::WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) {
    h = 0;
  }
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // Reusable across batches (persistent threads).
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 2);
  }
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 5) {
                            throw core::Error("boom");
                          }
                        }),
               core::Error);
}

// ------------------------------------------------------- workload axis

TEST(CampaignWorkloadTest, WorkloadAxisExpandsAndCarriesLabels) {
  CampaignSpec spec;
  spec.topologies = {TopologySpec::pops(4, 6)};
  spec.loads = {0.0};
  spec.seeds = {1};
  spec.workloads = {campaign::WorkloadSpec{},
                    campaign::WorkloadSpec{campaign::WorkloadKind::kGossip}};
  EXPECT_EQ(spec.cell_count(), 2);
  const std::vector<campaign::CampaignCell> cells =
      campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].id,
            "POPS(4,6)|token|uniform|load=0.000000|w=1|routes=auto|"
            "timing=none|workload=none|seed=1");
  EXPECT_EQ(cells[1].id,
            "POPS(4,6)|token|uniform|load=0.000000|w=1|routes=auto|"
            "timing=none|workload=gossip|seed=1");

  // Labels carry the shape parameters.
  campaign::WorkloadSpec bsp{campaign::WorkloadKind::kBsp};
  bsp.phases = 3;
  bsp.shift = 2;
  EXPECT_EQ(bsp.label(), "bsp(p3,s2)");
  campaign::WorkloadSpec reduce{campaign::WorkloadKind::kReduce};
  reduce.root = 4;
  reduce.arity = 3;
  EXPECT_EQ(reduce.label(), "reduce(r4,a3)");
  campaign::WorkloadSpec trace{campaign::WorkloadKind::kTrace};
  trace.trace_file = "/some/dir/uniform.trace";
  EXPECT_EQ(trace.label(), "trace(uniform.trace)");
}

TEST(CampaignWorkloadTest, ParsesWorkloadsJsonAndRejectsBadSpecs) {
  const CampaignSpec spec = campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "loads": [0.0],
    "workloads": ["none", {"kind": "one_to_all", "root": 2}, "gossip",
                  {"kind": "bsp", "phases": [2, 4]},
                  {"kind": "reduce", "arity": 3},
                  {"kind": "gather", "root": 1},
                  {"kind": "trace", "file": "t.trace"}]
  })json");
  ASSERT_EQ(spec.workloads.size(), 8u);  // bsp sweeps into 2 entries
  EXPECT_EQ(spec.workloads[1].label(), "one_to_all(r2)");
  EXPECT_EQ(spec.workloads[3].label(), "bsp(p2,s1)");
  EXPECT_EQ(spec.workloads[4].label(), "bsp(p4,s1)");
  EXPECT_EQ(spec.workloads[5].label(), "reduce(r0,a3)");
  EXPECT_EQ(spec.workloads[7].trace_file, "t.trace");

  // Unknown kinds and keys fail loudly.
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "workloads": ["alltoall"]})json"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "workloads": [{"kind": "bsp", "root": 3}]})json"),
               core::Error);
  // Trace workloads need a file.
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "workloads": [{"kind": "trace"}]})json"),
               core::Error);
  // Schedule kernels cannot run on stack-Imase-Itoh topologies.
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "stack_imase_itoh", "s": 4, "d": 2, "n": 12}],
    "workloads": ["gossip"]})json"),
               core::Error);
  // Closed-loop cells need unbounded VOQs.
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "queue_capacity": 16, "workloads": ["gossip"]})json"),
               core::Error);
  // A root must be a valid node of every topology in the grid (the
  // cross product would otherwise abort mid-run).
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "workloads": [{"kind": "gather", "root": 64}]})json"),
               core::Error);
  // The tests-only event-queue fixture has no delivery feedback: a
  // workload grid pinned to it (spec-level or via override) is refused.
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "engine": "event-queue", "workloads": ["gossip"]})json"),
               core::Error);
  EXPECT_THROW(campaign::parse_campaign_spec(R"json({
    "topologies": [{"kind": "pops", "t": 4, "g": 6}],
    "workloads": ["gossip"],
    "overrides": [{"topology": "POPS(4,6)", "engine": "event-queue"}]})json"),
               core::Error);
}

TEST(CampaignWorkloadTest, WorkloadCellsRunToCompletionWithMakespan) {
  CampaignSpec spec;
  spec.name = "workload-cells";
  spec.topologies = {TopologySpec::pops(6, 12),
                     TopologySpec::stack_kautz(4, 3, 2)};
  spec.loads = {0.0};
  spec.seeds = {1};
  spec.warmup_slots = 5;   // ignored by workload cells
  spec.measure_slots = 50;
  spec.workloads = {
      campaign::WorkloadSpec{campaign::WorkloadKind::kOneToAll},
      campaign::WorkloadSpec{campaign::WorkloadKind::kGossip},
      campaign::WorkloadSpec{campaign::WorkloadKind::kGather}};

  ScratchDir dir("workload-cells");
  CampaignOptions options;
  options.threads = 2;
  options.out_dir = dir.path().string();
  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  runner.run(options);

  // Uncontended schedule cells hit the analytic bounds exactly:
  // POPS(6,12) broadcasts in 1 and gossips in t = 6; SK(4,3,2)
  // broadcasts in k = 2 and gossips in s + k = 6.
  std::map<std::string, std::map<std::string, std::int64_t>> makespans;
  std::istringstream lines(
      read_file(dir.path() / CampaignRunner::kJsonlFile));
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    const core::Json row = core::Json::parse(line);
    makespans[row.at("topology").as_string()]
             [row.at("workload").as_string()] =
        row.at("makespan").as_int();
    EXPECT_DOUBLE_EQ(row.at("delivered_fraction").as_number(), 1.0);
    EXPECT_EQ(row.at("backlog").as_int(), 0);
  }
  EXPECT_EQ(rows, 6);
  EXPECT_EQ(makespans["POPS(6,12)"]["one_to_all(r0)"], 1);
  EXPECT_EQ(makespans["POPS(6,12)"]["gossip"], 6);
  EXPECT_EQ(makespans["SK(4,3,2)"]["one_to_all(r0)"], 2);
  EXPECT_EQ(makespans["SK(4,3,2)"]["gossip"], 6);
  EXPECT_GT(makespans["POPS(6,12)"]["gather(r0)"], 1);

  // The aggregate keys on workload and carries the makespan.
  ASSERT_EQ(aggregate->groups().size(), 6u);
  EXPECT_EQ(aggregate->groups()[0].workload, "one_to_all(r0)");
  EXPECT_DOUBLE_EQ(aggregate->groups()[0].point.makespan, 1.0);

  // The CSV carries the workload and makespan columns.
  const std::string csv = read_file(dir.path() / CampaignRunner::kCsvFile);
  EXPECT_NE(csv.find(",workload,"), std::string::npos);
  EXPECT_NE(csv.find(",makespan"), std::string::npos);
  EXPECT_NE(csv.find("\"gossip\""), std::string::npos);
}

TEST(CampaignWorkloadTest, TraceFileCellsReplayEndToEnd) {
  // Record a tiny synthetic trace, point a campaign cell at the file.
  workload::Trace trace;
  trace.nodes = 24;  // POPS(4,6)
  trace.entries = {{0, 0, 7}, {0, 3, 12}, {1, 5, 2}, {4, 23, 11}};
  ScratchDir dir("trace-cell");
  const std::string trace_path = (dir.path() / "tiny.trace").string();
  trace.save_binary(trace_path);

  CampaignSpec spec;
  spec.topologies = {TopologySpec::pops(4, 6)};
  spec.loads = {0.0};
  spec.seeds = {1};
  campaign::WorkloadSpec entry{campaign::WorkloadKind::kTrace};
  entry.trace_file = trace_path;
  spec.workloads = {entry};

  auto aggregate = std::make_shared<campaign::AggregateSink>();
  CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  runner.run(CampaignOptions{});
  ASSERT_EQ(aggregate->groups().size(), 1u);
  EXPECT_EQ(aggregate->groups()[0].workload, "trace(tiny.trace)");
  EXPECT_DOUBLE_EQ(aggregate->groups()[0].point.delivered_fraction, 1.0);
  EXPECT_GE(aggregate->groups()[0].point.makespan, 5.0);

  // A trace recorded on the wrong node count is refused.
  CampaignSpec wrong = spec;
  wrong.topologies = {TopologySpec::pops(6, 12)};
  CampaignRunner bad(wrong);
  EXPECT_THROW(bad.run(CampaignOptions{}), core::Error);
}

TEST(CampaignWorkloadTest, WorkloadCellsAreThreadCountInvariant) {
  CampaignSpec spec;
  spec.name = "workload-invariance";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2)};
  spec.arbitrations = {sim::Arbitration::kTokenRoundRobin,
                       sim::Arbitration::kRandomWinner};
  spec.loads = {0.3};  // background traffic beside the collective
  spec.seeds = {1, 2};
  spec.workloads = {
      campaign::WorkloadSpec{campaign::WorkloadKind::kGossip}};

  std::string reference;
  for (const int threads : {1, 3}) {
    ScratchDir dir("wl-threads-" + std::to_string(threads));
    CampaignOptions options;
    options.threads = threads;
    options.out_dir = dir.path().string();
    CampaignRunner runner(spec);
    runner.run(options);
    const std::string jsonl =
        read_file(dir.path() / CampaignRunner::kJsonlFile);
    if (reference.empty()) {
      reference = jsonl;
    } else {
      EXPECT_EQ(reference, jsonl);
    }
  }
}

TEST(CampaignRunnerTest, CheckpointDrillThenResumeIsByteIdentical) {
  // The crash drill: a --checkpoint-stop run interrupts every open-loop
  // cell mid-window (blobs on disk, nothing in the result files), and a
  // --resume run finishes them from the blobs. The resumed directory's
  // results must match an uninterrupted run's byte for byte, and the
  // per-cell blobs must be gone once their cells complete.
  CampaignSpec spec;
  spec.name = "drill";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2)};
  spec.loads = {0.3, 0.7};
  spec.seeds = {1, 2};
  spec.warmup_slots = 10;
  spec.measure_slots = 120;
  spec.checkpoint_every = 30;

  ScratchDir uninterrupted("ckpt-full");
  {
    CampaignOptions options;
    options.threads = 2;
    options.out_dir = uninterrupted.path().string();
    CampaignRunner runner(spec);
    const campaign::CampaignReport report = runner.run(options);
    EXPECT_EQ(report.completed_cells, 4);
    EXPECT_EQ(report.interrupted_cells, 0);
    // Completed cells clean up their blobs.
    EXPECT_TRUE(std::filesystem::is_empty(uninterrupted.path() /
                                          "checkpoints"));
  }

  ScratchDir drilled("ckpt-drill");
  {
    CampaignOptions options;
    options.threads = 2;
    options.out_dir = drilled.path().string();
    options.checkpoint_stop = 50;  // dies at the slot-60 boundary
    CampaignRunner runner(spec);
    const campaign::CampaignReport report = runner.run(options);
    EXPECT_EQ(report.interrupted_cells, 4);
    EXPECT_EQ(report.completed_cells, 0);
    std::size_t blobs = 0;
    for (const auto& entry : std::filesystem::directory_iterator(
             drilled.path() / "checkpoints")) {
      blobs += entry.is_regular_file() ? 1 : 0;
    }
    EXPECT_EQ(blobs, 4u);
    // Interrupted cells reach no sink and no manifest line.
    EXPECT_EQ(read_file(drilled.path() / CampaignRunner::kJsonlFile), "");
    EXPECT_EQ(read_file(drilled.path() / CampaignRunner::kManifestFile), "");
  }
  {
    CampaignOptions options;
    options.threads = 2;
    options.out_dir = drilled.path().string();
    options.resume = true;
    CampaignRunner runner(spec);
    const campaign::CampaignReport report = runner.run(options);
    EXPECT_EQ(report.completed_cells, 4);
    EXPECT_EQ(report.interrupted_cells, 0);
  }
  EXPECT_EQ(read_file(drilled.path() / CampaignRunner::kJsonlFile),
            read_file(uninterrupted.path() / CampaignRunner::kJsonlFile));
  EXPECT_EQ(read_file(drilled.path() / CampaignRunner::kCsvFile),
            read_file(uninterrupted.path() / CampaignRunner::kCsvFile));
  EXPECT_EQ(read_file(drilled.path() / CampaignRunner::kManifestFile),
            read_file(uninterrupted.path() / CampaignRunner::kManifestFile));
  EXPECT_TRUE(std::filesystem::is_empty(drilled.path() / "checkpoints"));
}

TEST(CampaignRunnerTest, SketchLatencyModeRunsTheGrid) {
  // latency_stats: "sketch" flips every cell to the O(1)-memory sketch;
  // the grid still runs end to end and reports plausible percentiles.
  CampaignSpec spec;
  spec.name = "sketch";
  spec.topologies = {TopologySpec::stack_kautz(4, 3, 2)};
  spec.loads = {0.5};
  spec.seeds = {1};
  spec.warmup_slots = 10;
  spec.measure_slots = 60;
  spec.latency_stats = sim::LatencyMode::kSketch;

  ScratchDir dir("sketch");
  CampaignOptions options;
  options.out_dir = dir.path().string();
  CampaignRunner runner(spec);
  const campaign::CampaignReport report = runner.run(options);
  EXPECT_EQ(report.completed_cells, 1);
  const std::string jsonl = read_file(dir.path() / CampaignRunner::kJsonlFile);
  EXPECT_NE(jsonl.find("\"p95_latency\""), std::string::npos);
}

}  // namespace
