#pragma once
/// \file route_view.hpp
/// The RouteView concept: what the slot engines need from a routing
/// table.
///
/// A route view answers three hot-path questions -- which VOQ slot a
/// packet queues into, which coupler that slot feeds, and which node
/// picks the packet off a coupler -- plus the two sizes the engines use
/// to lay out their flat state. The phased engines are templated over
/// this concept, so each implementation is compiled into the slot loop
/// with no virtual dispatch: a hop stays two array loads (dense tables,
/// CompiledRoutes) or two loads plus the group/copy integer arithmetic
/// (group-factored tables, CompressedRoutes).
///
/// Contract shared by all implementations:
///  - next_coupler/next_slot are defined for node != dest only (the
///    engines never route a delivered packet); the dense tables return
///    -1 on the diagonal, the compressed ones return the loop decision.
///  - relay(coupler, dest) is defined for every (coupler, dest) pair
///    some route actually produces.

#include <concepts>
#include <cstdint>

#include "hypergraph/hypergraph.hpp"

namespace otis::routing {

template <class R>
concept RouteView =
    requires(const R view, hypergraph::Node node, hypergraph::HyperarcId h) {
      { view.next_coupler(node, node) } noexcept
          -> std::convertible_to<hypergraph::HyperarcId>;
      { view.next_slot(node, node) } noexcept
          -> std::convertible_to<std::int32_t>;
      { view.relay(h, node) } noexcept -> std::convertible_to<hypergraph::Node>;
      { view.prefetch_relay(h, node) } noexcept;
      { view.node_count() } noexcept -> std::convertible_to<std::int64_t>;
      { view.coupler_count() } noexcept -> std::convertible_to<std::int64_t>;
      { view.memory_bytes() } noexcept -> std::convertible_to<std::size_t>;
    };

}  // namespace otis::routing
