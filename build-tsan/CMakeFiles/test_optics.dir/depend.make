# Empty dependencies file for test_optics.
# This may be replaced when dependencies are built.
