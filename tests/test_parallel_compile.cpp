// Parallel route compilation (core::WorkStealingPool threading through
// routing::CompiledRoutes::compile / CompressedRoutes::compile) is
// bit-identical to serial:
//  - dense tables: every next_coupler / next_slot / relay answer agrees
//    for SK, POPS, SII and a generic stack-graph, at 1 and 4 workers;
//  - compressed tables: same, plus the group-level accessors and the
//    memory footprint;
//  - the diagonal stays -1 and table sizes are unchanged, so the
//    parallel fill writes exactly the entries the serial fill does.

#include <gtest/gtest.h>

#include <string>

#include "core/work_pool.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "topology/debruijn.hpp"

namespace otis {
namespace {

/// Every routing answer the engines consume must agree between the
/// serial and pool-compiled tables; the relay is checked on the coupler
/// each route actually chose.
void expect_dense_equal(const routing::CompiledRoutes& serial,
                        const routing::CompiledRoutes& parallel) {
  ASSERT_EQ(serial.node_count(), parallel.node_count());
  ASSERT_EQ(serial.coupler_count(), parallel.coupler_count());
  EXPECT_EQ(serial.memory_bytes(), parallel.memory_bytes());
  for (hypergraph::Node v = 0; v < serial.node_count(); ++v) {
    for (hypergraph::Node d = 0; d < serial.node_count(); ++d) {
      if (v == d) {
        EXPECT_EQ(parallel.next_coupler(v, d), -1);
        continue;
      }
      const hypergraph::HyperarcId h = serial.next_coupler(v, d);
      ASSERT_EQ(parallel.next_coupler(v, d), h) << "v=" << v << " d=" << d;
      EXPECT_EQ(parallel.next_slot(v, d), serial.next_slot(v, d))
          << "v=" << v << " d=" << d;
      EXPECT_EQ(parallel.relay(h, d), serial.relay(h, d))
          << "h=" << h << " d=" << d;
    }
  }
}

void expect_compressed_equal(const routing::CompressedRoutes& serial,
                             const routing::CompressedRoutes& parallel) {
  ASSERT_EQ(serial.node_count(), parallel.node_count());
  ASSERT_EQ(serial.coupler_count(), parallel.coupler_count());
  ASSERT_EQ(serial.group_count(), parallel.group_count());
  EXPECT_EQ(serial.memory_bytes(), parallel.memory_bytes());
  for (hypergraph::Node v = 0; v < serial.node_count(); ++v) {
    for (hypergraph::Node d = 0; d < serial.node_count(); ++d) {
      if (v == d) {
        continue;
      }
      const hypergraph::HyperarcId h = serial.next_coupler(v, d);
      ASSERT_EQ(parallel.next_coupler(v, d), h) << "v=" << v << " d=" << d;
      EXPECT_EQ(parallel.next_slot(v, d), serial.next_slot(v, d))
          << "v=" << v << " d=" << d;
      EXPECT_EQ(parallel.relay(h, d), serial.relay(h, d))
          << "h=" << h << " d=" << d;
    }
  }
}

/// Serial baseline against pools of 1 and 4 workers. A 1-worker pool is
/// the degenerate case (same code path as 4, no actual concurrency);
/// 4 workers exercise row stealing on every family.
template <typename Network, typename CompileFn, typename CompressFn>
void expect_pool_parity(const Network& network, const CompileFn& compile,
                        const CompressFn& compress) {
  const routing::CompiledRoutes dense_serial = compile(network, nullptr);
  const routing::CompressedRoutes grouped_serial = compress(network, nullptr);
  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    core::WorkStealingPool pool(workers);
    expect_dense_equal(dense_serial, compile(network, &pool));
    expect_compressed_equal(grouped_serial, compress(network, &pool));
  }
}

TEST(ParallelCompile, StackKautzMatchesSerial) {
  expect_pool_parity(
      hypergraph::StackKautz(4, 3, 2),
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compile_stack_kautz_routes(n, pool);
      },
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compress_stack_kautz_routes(n, pool);
      });
}

TEST(ParallelCompile, PopsMatchesSerial) {
  expect_pool_parity(
      hypergraph::Pops(4, 5),
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compile_pops_routes(n, pool);
      },
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compress_pops_routes(n, pool);
      });
}

TEST(ParallelCompile, StackImaseItohMatchesSerial) {
  expect_pool_parity(
      hypergraph::StackImaseItoh(3, 2, 7),
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compile_stack_imase_itoh_routes(n, pool);
      },
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compress_stack_imase_itoh_routes(n, pool);
      });
}

TEST(ParallelCompile, GenericStackGraphMatchesSerial) {
  const hypergraph::StackGraph looped(3,
                                      hypergraph::imase_itoh_with_loops(2, 5));
  expect_pool_parity(
      looped,
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compile_generic_stack_routes(n, pool);
      },
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compress_generic_stack_routes(n, pool);
      });
}

TEST(ParallelCompile, SingleNodeGroupsTolerateUnbakedDiagonal) {
  // s = 1: every group is one node, same-group traffic does not exist
  // and the (g, g) entries stay unbaked -- the parallel fill must leave
  // them exactly as serial does.
  topology::DeBruijn db(2, 3);
  const hypergraph::StackGraph stack(1, db.graph());
  expect_pool_parity(
      stack,
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compile_generic_stack_routes(n, pool);
      },
      [](const auto& n, core::WorkStealingPool* pool) {
        return routing::compress_generic_stack_routes(n, pool);
      });
}

}  // namespace
}  // namespace otis
