#!/usr/bin/env python3
"""Compare two BENCH_sim.json files; warn on regressions, enforce bars.

Usage: compare_bench.py PREVIOUS.json CURRENT.json [--threshold 0.20]

Matches results on (topology, arbitration, engine) and reports the
slots/sec ratio current/previous. Rows slower than the threshold emit a
GitHub Actions ::warning:: annotation, as do route-table byte growth,
event-queue hold-rate slowdowns, collective-makespan growth, and
per-phase ns/slot growth from the phase_breakdown section. Cross-run
wall-clock comparisons stay warnings (shared CI runners are noisy; the
trajectory is informative).

The acceptance section of the CURRENT file IS enforced: if
micro_benchmarks recorded pass=false (phased >= 6x event-queue),
queue_pass=false (calendar >= 3x priority queue),
telemetry_pass=false (attached-but-disabled telemetry costs more than
2% on the phased acceptance case), runtime_stats_pass=false
(attached-but-disabled runtime-introspection channel costs more than
2% on the sharded acceptance case), or async_parallel_pass=false
(async-sharded >= 2.5x its own 1-thread run at 8 threads) -- all
judged on the best of paired back-to-back rounds, so a slow runner
cannot flip them -- the script emits ::error:: and exits 1. The same
holds for route_compile_pass (parallel route compile >= 2.5x serial at
8 threads) and memory_pass (one sketch-mode scale-up cell's peak-RSS
growth within its KiB budget). An async_parallel_pass or
route_compile_pass of null means the host could not judge the 8-thread
bar (too few cores); a memory_pass of null means /proc/self/status was
unavailable -- null verdicts only warn. Exit status is also 1 when the
*current* file is missing/unreadable.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def results_by_key(doc):
    return {
        (r["topology"], r["arbitration"], r["engine"]): r
        for r in doc.get("results", [])
    }


def enforce_acceptance(current_doc):
    """Fail (return 1) when the current run's recorded bars are false."""
    acceptance = current_doc.get("acceptance", {})
    if not acceptance:
        return 0
    speedup = acceptance.get("measured_speedup")
    required = acceptance.get("required_speedup")
    print(f"\nacceptance: phased vs event-queue "
          f"{speedup}x (required {required}x), "
          f"calendar vs priority "
          f"{acceptance.get('queue_measured_speedup')}x "
          f"(required {acceptance.get('queue_required_speedup')}x)")
    failed = False
    if acceptance.get("pass") is False:
        print(f"::error title=Engine speedup bar failed::phased engine "
              f"at {speedup}x of the event-queue baseline, below the "
              f"required {required}x")
        failed = True
    if acceptance.get("queue_pass") is False:
        print(f"::error title=Queue speedup bar failed::calendar queue "
              f"at {acceptance.get('queue_measured_speedup')}x of the "
              f"priority-queue baseline, below the required "
              f"{acceptance.get('queue_required_speedup')}x")
        failed = True
    if "telemetry_pass" in acceptance:
        print(f"acceptance: disabled-telemetry overhead "
              f"{acceptance.get('telemetry_overhead_pct')}% (max "
              f"{acceptance.get('telemetry_required_max_overhead_pct')}%)")
    if acceptance.get("telemetry_pass") is False:
        print(f"::error title=Telemetry overhead bar failed::attached-but-"
              f"disabled telemetry costs "
              f"{acceptance.get('telemetry_overhead_pct')}% on the phased "
              f"acceptance case, above the allowed "
              f"{acceptance.get('telemetry_required_max_overhead_pct')}%")
        failed = True
    if "runtime_stats_pass" in acceptance:
        print(f"acceptance: disabled-runtime-stats overhead "
              f"{acceptance.get('runtime_stats_overhead_pct')}% (max "
              f"{acceptance.get('runtime_stats_required_max_overhead_pct')}"
              f"%)")
    if acceptance.get("runtime_stats_pass") is False:
        print(f"::error title=Runtime-stats overhead bar failed::attached-"
              f"but-disabled runtime-introspection channel costs "
              f"{acceptance.get('runtime_stats_overhead_pct')}% on the "
              f"sharded acceptance case, above the allowed "
              f"{acceptance.get('runtime_stats_required_max_overhead_pct')}"
              f"%")
        failed = True
    # The async-parallel scaling bar is tri-state: true/false when the
    # host could judge the 8-thread requirement, null (None) with a skip
    # reason when it could not. Only an explicit false fails the build;
    # a skipped verdict stays a warning so laptop/CI runs on small
    # machines don't block on a bar they cannot measure.
    if "async_parallel_pass" in acceptance:
        print(f"acceptance: async-sharded scaling "
              f"{acceptance.get('async_parallel_measured_speedup')}x at "
              f"{acceptance.get('async_parallel_threads')} threads "
              f"(required {acceptance.get('async_parallel_required_speedup')}"
              f"x at 8)")
    if acceptance.get("async_parallel_pass") is False:
        print(f"::error title=Async-parallel scaling bar failed::async-"
              f"sharded engine at "
              f"{acceptance.get('async_parallel_measured_speedup')}x of its "
              f"1-thread run, below the required "
              f"{acceptance.get('async_parallel_required_speedup')}x")
        failed = True
    elif ("async_parallel_pass" in acceptance
          and acceptance.get("async_parallel_pass") is None):
        print(f"::warning title=Async-parallel bar skipped::"
              f"{acceptance.get('async_parallel_skip_reason')}")
    # Parallel route compilation: same tri-state protocol (an 8-thread
    # bar that small hosts record as null with a skip reason).
    if "route_compile_pass" in acceptance:
        print(f"acceptance: parallel route compile "
              f"{acceptance.get('route_compile_measured_speedup')}x at "
              f"{acceptance.get('route_compile_threads')} threads "
              f"(required {acceptance.get('route_compile_required_speedup')}"
              f"x at 8)")
    if acceptance.get("route_compile_pass") is False:
        print(f"::error title=Route-compile scaling bar failed::parallel "
              f"route compile at "
              f"{acceptance.get('route_compile_measured_speedup')}x of the "
              f"serial compile, below the required "
              f"{acceptance.get('route_compile_required_speedup')}x")
        failed = True
    elif ("route_compile_pass" in acceptance
          and acceptance.get("route_compile_pass") is None):
        print(f"::warning title=Route-compile bar skipped::"
              f"{acceptance.get('route_compile_skip_reason')}")
    # Per-cell memory budget: null means /proc/self/status was
    # unavailable (non-Linux host); only an explicit false fails.
    if "memory_pass" in acceptance:
        print(f"acceptance: sketch-cell peak RSS "
              f"{acceptance.get('memory_cell_kib')} KiB (budget "
              f"{acceptance.get('memory_budget_kib')} KiB)")
    if acceptance.get("memory_pass") is False:
        print(f"::error title=Per-cell memory budget exceeded::the "
              f"sketch-mode scale-up cell grew peak RSS by "
              f"{acceptance.get('memory_cell_kib')} KiB, above the "
              f"{acceptance.get('memory_budget_kib')} KiB budget")
        failed = True
    elif ("memory_pass" in acceptance
          and acceptance.get("memory_pass") is None):
        print(f"::warning title=Memory budget skipped::"
              f"{acceptance.get('memory_skip_reason')}")
    return 1 if failed else 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown that triggers a warning")
    args = parser.parse_args()

    try:
        current_doc = load_doc(args.current)
        current = results_by_key(current_doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"compare_bench: cannot read current results: {exc}")
        return 1

    try:
        previous_doc = load_doc(args.previous)
        previous = results_by_key(previous_doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"compare_bench: no previous results ({exc}); "
              "nothing to compare -- first run on this branch?")
        return enforce_acceptance(current_doc)

    header = f"{'topology':<12} {'arb':<7} {'engine':<12} " \
             f"{'prev slots/s':>13} {'cur slots/s':>13} {'ratio':>7}"
    print(header)
    print("-" * len(header))
    regressions = []
    for key in sorted(current):
        cur = current[key]
        prev = previous.get(key)
        if prev is None or not prev.get("slots_per_sec"):
            print(f"{key[0]:<12} {key[1]:<7} {key[2]:<12} "
                  f"{'(new)':>13} {cur['slots_per_sec']:>13} {'-':>7}")
            continue
        ratio = cur["slots_per_sec"] / prev["slots_per_sec"]
        print(f"{key[0]:<12} {key[1]:<7} {key[2]:<12} "
              f"{prev['slots_per_sec']:>13} {cur['slots_per_sec']:>13} "
              f"{ratio:>7.2f}")
        if ratio < 1.0 - args.threshold:
            regressions.append((key, ratio))

    for (topology, arbitration, engine), ratio in regressions:
        print(f"::warning title=Perf regression::{topology}/{arbitration}/"
              f"{engine} slots/sec at {ratio:.2f}x of previous run "
              f"(threshold {1.0 - args.threshold:.2f}x)")

    # Memory dimension: route-table bytes are deterministic per
    # (topology, engine), so ANY growth is a real regression, not noise.
    memory_regressions = []
    for key in sorted(current):
        cur_bytes = current[key].get("route_table_bytes")
        prev = previous.get(key)
        prev_bytes = prev.get("route_table_bytes") if prev else None
        if cur_bytes and prev_bytes and cur_bytes > prev_bytes:
            memory_regressions.append((key, prev_bytes, cur_bytes))
    for (topology, arbitration, engine), prev_bytes, cur_bytes in \
            memory_regressions:
        print(f"::warning title=Route-table memory regression::{topology}/"
              f"{arbitration}/{engine} route tables grew from {prev_bytes} "
              f"to {cur_bytes} bytes")

    # Event-queue dimension: calendar vs priority hold rates (rows keyed
    # by queue name; absent in pre-async-layer baselines). A malformed
    # row (missing "queue") should surface, not silence the comparison.
    queue_regressions = []
    cur_queues = {q["queue"]: q
                  for q in current_doc.get("event_queues", [])}
    prev_queues = {q["queue"]: q
                   for q in previous_doc.get("event_queues", [])}
    for name in sorted(cur_queues):
        cur_rate = cur_queues[name].get("events_per_sec")
        prev_rate = prev_queues.get(name, {}).get("events_per_sec")
        if not cur_rate or not prev_rate:
            continue
        ratio = cur_rate / prev_rate
        print(f"event queue {name:<10} {prev_rate:>13} {cur_rate:>13} "
              f"{ratio:>7.2f}")
        if ratio < 1.0 - args.threshold:
            queue_regressions.append((name, ratio))
    for name, ratio in queue_regressions:
        print(f"::warning title=Event-rate regression::{name} queue "
              f"events/sec at {ratio:.2f}x of previous run")

    # Collectives dimension: simulated makespans of the compiled schedule
    # workloads are deterministic per (topology, operation), so ANY growth
    # against the previous run is a real scheduling/engine regression,
    # not noise (rows absent in pre-workload-subsystem baselines).
    makespan_regressions = []
    cur_coll = {(c["topology"], c["operation"]): c
                for c in current_doc.get("collectives", [])}
    prev_coll = {(c["topology"], c["operation"]): c
                 for c in previous_doc.get("collectives", [])}
    for key in sorted(cur_coll):
        cur_slots = cur_coll[key].get("makespan_slots")
        prev_slots = prev_coll.get(key, {}).get("makespan_slots")
        if cur_slots is None or prev_slots is None:
            continue
        print(f"collective {key[0]:<12} {key[1]:<12} "
              f"{prev_slots:>6} -> {cur_slots:>6} slots")
        if cur_slots > prev_slots:
            makespan_regressions.append((key, prev_slots, cur_slots))
    for (topology, operation), prev_slots, cur_slots in makespan_regressions:
        print(f"::warning title=Makespan regression::{topology}/{operation} "
              f"simulated makespan grew from {prev_slots} to {cur_slots} "
              f"slots")

    # Telemetry dimension: the obs-layer cost ladder (off / disabled /
    # sampling slots/sec on the phased acceptance case). Wall-clock, so
    # regressions beyond the threshold warn; the enforced disabled-mode
    # bar lives in the acceptance section below. Rows absent in
    # pre-observability baselines.
    telemetry_regressions = []
    cur_tel = {t["mode"]: t for t in current_doc.get("telemetry", [])}
    prev_tel = {t["mode"]: t for t in previous_doc.get("telemetry", [])}
    for mode in sorted(cur_tel):
        cur_rate = cur_tel[mode].get("slots_per_sec")
        prev_rate = prev_tel.get(mode, {}).get("slots_per_sec")
        if not cur_rate or not prev_rate:
            continue
        ratio = cur_rate / prev_rate
        print(f"telemetry {mode:<12} {prev_rate:>13} {cur_rate:>13} "
              f"{ratio:>7.2f}")
        if ratio < 1.0 - args.threshold:
            telemetry_regressions.append((mode, ratio))
    for mode, ratio in telemetry_regressions:
        print(f"::warning title=Telemetry-overhead regression::telemetry "
              f"mode {mode} slots/sec at {ratio:.2f}x of previous run")

    # Runtime-stats dimension: the runtime-channel cost ladder (off /
    # disabled / collecting slots/sec on the sharded acceptance case).
    # Same protocol as the telemetry ladder: per-mode wall-clock drops
    # beyond the threshold warn here, the enforced disabled-mode bar
    # lives in the acceptance section. Rows absent in pre-runtime-
    # channel baselines.
    runtime_regressions = []
    cur_rt = {r["mode"]: r for r in current_doc.get("runtime_stats", [])}
    prev_rt = {r["mode"]: r for r in previous_doc.get("runtime_stats", [])}
    for mode in sorted(cur_rt):
        cur_rate = cur_rt[mode].get("slots_per_sec")
        prev_rate = prev_rt.get(mode, {}).get("slots_per_sec")
        if not cur_rate or not prev_rate:
            continue
        ratio = cur_rate / prev_rate
        print(f"runtime-stats {mode:<12} {prev_rate:>13} {cur_rate:>13} "
              f"{ratio:>7.2f}")
        if ratio < 1.0 - args.threshold:
            runtime_regressions.append((mode, ratio))
    for mode, ratio in runtime_regressions:
        print(f"::warning title=Runtime-stats overhead regression::runtime "
              f"stats mode {mode} slots/sec at {ratio:.2f}x of previous run")

    # Async-parallel dimension: the threads-vs-1 scaling of the sharded
    # calendar-queue engine on the scale-up case. Only comparable when
    # both runs used the same thread count (different hosts measure
    # different bars); wall-clock, so a drop beyond the threshold warns.
    # Absent in pre-parallel-async baselines.
    async_regressions = []
    cur_async = current_doc.get("async_parallel", {})
    prev_async = previous_doc.get("async_parallel", {})
    cur_scaling = cur_async.get("speedup_best")
    prev_scaling = prev_async.get("speedup_best")
    if cur_scaling and prev_scaling \
            and cur_async.get("threads") == prev_async.get("threads"):
        ratio = cur_scaling / prev_scaling
        print(f"async-parallel scaling ({cur_async.get('threads')}T) "
              f"{prev_scaling:>7.2f}x {cur_scaling:>7.2f}x {ratio:>7.2f}")
        if ratio < 1.0 - args.threshold:
            async_regressions.append(ratio)
    for ratio in async_regressions:
        print(f"::warning title=Async-parallel scaling regression::"
              f"async-sharded threads-vs-1 speedup at {ratio:.2f}x of the "
              f"previous run's")

    # Phase dimension: the serial phased engine's per-phase ns/slot
    # (generate / arbitrate / receive / total, keyed by topology).
    # Wall-clock like the slots/sec rows, so growth beyond the threshold
    # warns; a regressing phase points straight at its hot functions
    # (the hot_functions section names them). Absent in pre-breakdown
    # baselines.
    phase_regressions = []
    phase_fields = ("generate_ns_per_slot", "arbitrate_ns_per_slot",
                    "receive_ns_per_slot", "total_ns_per_slot")
    cur_phases = {p["topology"]: p
                  for p in current_doc.get("phase_breakdown", [])}
    prev_phases = {p["topology"]: p
                   for p in previous_doc.get("phase_breakdown", [])}
    for topology in sorted(cur_phases):
        if topology not in prev_phases:
            continue
        for field in phase_fields:
            cur_ns = cur_phases[topology].get(field)
            prev_ns = prev_phases[topology].get(field)
            if not cur_ns or not prev_ns:
                continue
            ratio = cur_ns / prev_ns
            phase = field.removesuffix("_ns_per_slot")
            print(f"phase {topology:<12} {phase:<10} {prev_ns:>9.1f} "
                  f"{cur_ns:>9.1f} ns/slot {ratio:>7.2f}")
            if ratio > 1.0 + args.threshold:
                phase_regressions.append((topology, phase, ratio))
    for topology, phase, ratio in phase_regressions:
        print(f"::warning title=Phase regression::{topology} {phase} phase "
              f"at {ratio:.2f}x the previous run's ns/slot "
              f"(threshold {1.0 + args.threshold:.2f}x)")

    if not regressions and not memory_regressions and not queue_regressions \
            and not makespan_regressions and not telemetry_regressions \
            and not runtime_regressions and not async_regressions \
            and not phase_regressions:
        print(f"\nno regression beyond {args.threshold:.0%} threshold")

    # The enforced bars: micro_benchmarks already measured these on
    # paired rounds and recorded the verdicts; a false here fails the
    # build even if the benchmark step's exit status was swallowed.
    return enforce_acceptance(current_doc)


if __name__ == "__main__":
    sys.exit(main())
