#include "collectives/stack_kautz_collectives.hpp"

#include "core/error.hpp"

namespace otis::collectives {

namespace {

/// Appends the d arc-coupler transmissions of group x, sent by the
/// member with in-group index `sender_index`.
void fire_arc_couplers(const hypergraph::StackKautz& network,
                       graph::Vertex x, std::int64_t sender_index,
                       std::vector<Transmission>& slot) {
  const hypergraph::Node sender = network.processor(x, sender_index);
  for (int alpha = 1; alpha <= network.kautz_degree(); ++alpha) {
    slot.push_back(Transmission{sender, network.arc_coupler(x, alpha)});
  }
}

}  // namespace

SlotSchedule stack_kautz_one_to_all(const hypergraph::StackKautz& network,
                                    hypergraph::Node root) {
  OTIS_REQUIRE(root >= 0 && root < network.processor_count(),
               "stack_kautz_one_to_all: root out of range");
  SlotSchedule schedule;
  const graph::Vertex root_group = network.group_of(root);

  // Track group-level information spread to build the flooding slots.
  std::vector<char> informed(static_cast<std::size_t>(network.group_count()),
                             0);
  informed[static_cast<std::size_t>(root_group)] = 1;

  for (int round = 0; round < network.diameter(); ++round) {
    std::vector<Transmission> slot;
    std::vector<graph::Vertex> senders;
    for (graph::Vertex x = 0; x < network.group_count(); ++x) {
      if (informed[static_cast<std::size_t>(x)]) {
        senders.push_back(x);
      }
    }
    for (graph::Vertex x : senders) {
      // Informed groups know the root token via their broadcast-hearing
      // members; any member works as the relay -- use index 0 (the root
      // itself in round 1 for its own group).
      const std::int64_t relay_index =
          (round == 0 && x == root_group) ? network.index_in_group(root) : 0;
      fire_arc_couplers(network, x, relay_index, slot);
      if (round == 0 && x == root_group) {
        // The loop coupler informs the root's own group in the same slot.
        slot.push_back(Transmission{root, network.loop_coupler(x)});
      }
    }
    // Mark newly informed groups (all successors of senders).
    for (graph::Vertex x : senders) {
      for (graph::Vertex y : network.kautz().graph().out_neighbors(x)) {
        informed[static_cast<std::size_t>(y)] = 1;
      }
    }
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

SlotSchedule stack_kautz_gossip(const hypergraph::StackKautz& network) {
  SlotSchedule schedule;
  // Phase 1: intra-group loop round-robin. After slot y, everyone in a
  // group knows the tokens of members 0..y (member y's payload includes
  // what it heard in earlier slots).
  for (std::int64_t y = 0; y < network.stacking_factor(); ++y) {
    std::vector<Transmission> slot;
    for (graph::Vertex x = 0; x < network.group_count(); ++x) {
      slot.push_back(
          Transmission{network.processor(x, y), network.loop_coupler(x)});
    }
    schedule.slots.push_back(std::move(slot));
  }
  // Phase 2: k rounds of all-group flooding on the arc couplers; group
  // knowledge travels every Kautz arc each round, so after k rounds
  // every group's bundle has reached every other group.
  for (int round = 0; round < network.diameter(); ++round) {
    std::vector<Transmission> slot;
    for (graph::Vertex x = 0; x < network.group_count(); ++x) {
      fire_arc_couplers(network, x, 0, slot);
    }
    // Re-synchronize each group internally: member 0 just transmitted
    // the group's bundle outward; the loop keeps everyone in the group
    // current so the *next* round's payload is complete.
    for (graph::Vertex x = 0; x < network.group_count(); ++x) {
      slot.push_back(
          Transmission{network.processor(x, 0), network.loop_coupler(x)});
    }
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

std::int64_t stack_kautz_broadcast_lower_bound(
    const hypergraph::StackKautz& network) {
  return network.diameter();
}

}  // namespace otis::collectives
