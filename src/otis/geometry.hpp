#pragma once
/// \file geometry.hpp
/// Physical lens-plane geometry of the OTIS architecture.
///
/// OTIS(G, T) is built from two planes of lenslets in free space
/// (Marsden et al. 1993, paper Fig. 1): a transmitter-side plane with G
/// lenslets (one per input group) and a receiver-side plane with T
/// lenslets (one per output group). Each input group's lenslet images
/// the whole group onto the opposite plane reversed, producing the
/// transpose. This model assigns 1-D coordinates (the figure's layout)
/// to every port and lenslet and computes the beam angles the design
/// would need -- the quantity that bounds how large an OTIS plane can
/// get before lens aperture/field limits bite (Zane et al. 1996).

#include <cstdint>
#include <vector>

#include "otis/otis.hpp"

namespace otis::otis {

/// Geometry parameters: all lengths in arbitrary consistent units.
struct GeometryConfig {
  double port_pitch = 1.0;        ///< spacing between adjacent ports
  double plane_separation = 50.0; ///< distance between the two planes
};

/// A straight beam segment from a transmitter port to a receiver port.
struct Beam {
  std::int64_t input_index = 0;   ///< linear transmitter index
  std::int64_t output_index = 0;  ///< linear receiver index
  double x_in = 0.0;              ///< transmitter-plane coordinate
  double x_out = 0.0;             ///< receiver-plane coordinate
  double angle_rad = 0.0;         ///< deflection from the optical axis
  double length = 0.0;            ///< geometric path length
};

/// 1-D physical layout of an OTIS(G, T) system.
class OtisGeometry {
 public:
  OtisGeometry(Otis otis, GeometryConfig config);

  [[nodiscard]] const Otis& otis() const noexcept { return otis_; }
  [[nodiscard]] const GeometryConfig& config() const noexcept {
    return config_;
  }

  /// Transmitter-plane coordinate of an input port (linear index).
  [[nodiscard]] double input_position(std::int64_t input_index) const;

  /// Receiver-plane coordinate of an output port (linear index).
  [[nodiscard]] double output_position(std::int64_t output_index) const;

  /// Center coordinate of transmitter-side lenslet `group` (one per
  /// input group, spanning that group's T ports).
  [[nodiscard]] double input_lenslet_center(std::int64_t group) const;

  /// Center coordinate of receiver-side lenslet `group`.
  [[nodiscard]] double output_lenslet_center(std::int64_t group) const;

  /// The beam carrying a given input port's light.
  [[nodiscard]] Beam beam(std::int64_t input_index) const;

  /// All G*T beams.
  [[nodiscard]] std::vector<Beam> all_beams() const;

  /// Largest |deflection angle| over all beams: the aperture driver.
  [[nodiscard]] double max_angle_rad() const;

  /// Total optical path length summed over beams (relative figure of
  /// merit between OTIS shapes of equal port count).
  [[nodiscard]] double total_beam_length() const;

 private:
  Otis otis_;
  GeometryConfig config_;
};

}  // namespace otis::otis
