#pragma once
/// \file json.hpp
/// Minimal JSON reader for declarative configuration files.
///
/// The campaign subsystem takes experiment grids as JSON spec files; the
/// container images this library targets ship no JSON dependency, so this
/// is a small recursive-descent parser over an immutable value tree.
/// Writing JSON stays with the emitters (sinks format their own lines so
/// byte-level output is under their control).
///
/// Supported: objects, arrays, strings (with the standard escapes and
/// \uXXXX for the Basic Multilingual Plane), numbers (parsed as double),
/// booleans, null, and arbitrary whitespace. Malformed input throws
/// core::Error with a line/column position.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace otis::core {

/// An immutable parsed JSON value.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members in source order (JSON allows duplicate keys; lookups
  /// below return the first occurrence).
  using Member = std::pair<std::string, Json>;

  Json() = default;

  /// Parses a complete JSON document; trailing garbage is an error.
  [[nodiscard]] static Json parse(const std::string& text);

  /// Reads and parses `path`; missing/unreadable files throw core::Error.
  [[nodiscard]] static Json parse_file(const std::string& path);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Typed accessors; wrong-type access throws core::Error.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number() narrowed; throws if the value is not integral.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Object lookup; nullptr when absent (or when this is not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object lookup; throws core::Error naming the missing key.
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Convenience lookups with defaults for optional spec fields.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

}  // namespace otis::core
