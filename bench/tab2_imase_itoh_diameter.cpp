// Claim T2 (paper Sec. 2.6): Imase-Itoh graphs exist for EVERY order n,
// have degree d and diameter <= ceil(log_d n) [Imase-Itoh 1981], and
// II(d, d^{k-1}(d+1)) is the Kautz graph KG(d,k) [Imase-Itoh 1983].
// Sweeps n for several d, measuring the true diameter by BFS.

#include <iostream>

#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Claim T2] diameter(II(d,n)) <= ceil(log_d n); equality "
               "with KG at Kautz orders\n\n";
  otis::core::Table table({"d", "n", "BFS diameter", "ceil(log_d n)",
                           "within bound", "is Kautz order", "== KG(d,k)"});
  bool ok = true;
  for (int d = 2; d <= 4; ++d) {
    for (std::int64_t n = d + 1; n <= 80; n = n + (n < 20 ? 1 : 7)) {
      otis::topology::ImaseItoh ii(d, n);
      const std::int64_t measured = otis::graph::diameter(ii.graph());
      const std::int64_t bound =
          static_cast<std::int64_t>(ii.diameter_formula());
      const bool within = measured <= bound;
      std::string kautz_match = "-";
      if (ii.is_kautz()) {
        otis::topology::Kautz kautz(d, ii.kautz_diameter());
        kautz_match = ii.graph().same_arcs(kautz.graph()) ? "yes" : "NO";
        ok = ok && kautz_match == "yes";
        ok = ok && measured == ii.kautz_diameter();
      }
      table.add(d, n, measured, bound, within, ii.is_kautz(), kautz_match);
      ok = ok && within;
    }
  }
  table.print(std::cout);
  std::cout << "\nall diameters within the Imase-Itoh bound, all Kautz "
               "orders match KG: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
