#pragma once
/// \file telemetry.hpp
/// Run-scoped telemetry: probe registry + time-series sampler + span
/// tracing, attached to a simulation through one nullable pointer.
///
/// Cost model: `SimConfig::telemetry` is a shared_ptr that defaults to
/// null, and every engine guards its instrumentation behind a single
/// `tel != nullptr` branch per slot -- the BENCH telemetry row verifies
/// the attached-but-disabled overhead stays <= 2% on the phased
/// SK(4,3,2)/token case. With sampling enabled the engines fill the
/// probes and emit one JSONL row every `sample_period` slots; the work
/// is proportional to network size but amortized over the period.
///
/// Determinism: probe values and timeseries rows are derived from
/// simulation state only (no RNG draws, no clocks), and the sharded
/// engine fills per-shard ProbeRegistry clones that are folded with
/// order-independent integer addition at the slot barrier -- so for a
/// fixed seed the merged probe values and the timeseries bytes are
/// identical for every thread count. Chrome-trace spans use wall-clock
/// timestamps and are exempt (diagnostics, never inputs).
///
/// Probe naming: short snake_case keys that become JSONL fields.
/// Engine-standard probes (see engine_probe_names()):
///   counters  offered, delivered, transmissions, collisions, dropped
///             (rows carry per-window deltas over the measured window)
///   gauges    backlog (queued + in flight), pending_events
///             (async calendar-queue entries; 0 on slot engines)
///   histogram occupancy (couplers bucketed by queued packets across
///             their feed VOQs; snapshot, bounds 0,1,2,4,8,16,32,64)

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "obs/trace_sink.hpp"

namespace otis::obs {

/// What to record; the all-defaults config means "attached but inert"
/// (only the per-slot null/period checks run -- the BENCH mode).
struct TelemetryConfig {
  /// Slots between timeseries samples; 0 disables sampling. A row is
  /// emitted at the end of slots period-1, 2*period-1, ...
  std::int64_t sample_period = 0;
  /// Probe names to include in timeseries rows; empty = all. Unknown
  /// names are rejected when the Telemetry is built.
  std::vector<std::string> probes;
  /// JSONL output for timeseries rows; empty buffers row counts only.
  std::string timeseries_path;
  /// Chrome-trace JSON output for spans; empty disables tracing.
  std::string trace_path;

  [[nodiscard]] bool enabled() const {
    return sample_period > 0 || !trace_path.empty();
  }
  void validate() const;
};

/// Ids of the engine-standard probes (registered by Telemetry).
struct EngineProbes {
  ProbeId offered = 0;
  ProbeId delivered = 0;
  ProbeId transmissions = 0;
  ProbeId collisions = 0;
  ProbeId dropped = 0;
  ProbeId backlog = 0;
  ProbeId pending_events = 0;
  ProbeId occupancy = 0;
};

/// The engine-standard probe names, for allowlist validation in specs.
[[nodiscard]] const std::vector<std::string>& engine_probe_names();

/// Thread-safe append-only JSONL stream, shared across a campaign's
/// cells (each row is tagged with its cell id). An empty path counts
/// rows without writing -- the bench's discard mode.
class TimeSeriesWriter {
 public:
  explicit TimeSeriesWriter(std::string path);

  void append(const std::string& line);
  void flush();
  void close();
  [[nodiscard]] std::int64_t rows() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::int64_t rows_ = 0;
};

/// One run's telemetry session. Engines reach it through
/// `SimConfig::telemetry` and touch only probes()/engine_probes(),
/// due()/sample()/finish(), and trace_sink().
class Telemetry {
 public:
  /// Standalone session owning its writer and trace sink.
  static std::shared_ptr<Telemetry> create(const TelemetryConfig& config);

  /// Campaign session sharing one writer/sink across cells. `label`
  /// tags every row (the cell id); `tid` is the span track (1 + worker
  /// index by the ChromeTraceSink convention). Either sink may be null.
  static std::shared_ptr<Telemetry> attach(
      const TelemetryConfig& config, std::shared_ptr<TimeSeriesWriter> writer,
      std::shared_ptr<ChromeTraceSink> sink, std::string label,
      std::int32_t tid);

  [[nodiscard]] ProbeRegistry& probes() noexcept { return probes_; }
  [[nodiscard]] const ProbeRegistry& probes() const noexcept {
    return probes_;
  }
  [[nodiscard]] const EngineProbes& engine_probes() const noexcept {
    return engine_;
  }
  [[nodiscard]] ChromeTraceSink* trace_sink() const noexcept {
    return sink_.get();
  }
  [[nodiscard]] std::int32_t tid() const noexcept { return tid_; }

  [[nodiscard]] bool sampling() const noexcept { return period_ > 0; }
  /// True when the end of `slot` is a sampling boundary.
  [[nodiscard]] bool due(std::int64_t slot) const noexcept {
    return period_ > 0 && (slot + 1) % period_ == 0;
  }
  /// Emits one timeseries row from the registry's current values
  /// (counter fields as deltas since the previous row).
  void sample(std::int64_t slot);
  /// End of run: engines refresh the probes first, then call this with
  /// the last executed slot; emits a final row unless that slot was
  /// just sampled, and flushes the writer.
  void finish(std::int64_t last_slot);

  /// Sampler cross-row state (header flag + previous counter values),
  /// for engine checkpointing: restoring it lets a resumed run append
  /// rows to the interrupted run's stream byte-identically to an
  /// uninterrupted run (counter fields are deltas against prev_, so
  /// prev_ must survive the restart).
  [[nodiscard]] bool header_written() const noexcept {
    return header_written_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& sampler_prev()
      const noexcept {
    return prev_;
  }
  void restore_sampler(bool header_written, std::vector<std::int64_t> prev) {
    header_written_ = header_written;
    prev_ = std::move(prev);
  }

  [[nodiscard]] std::int64_t rows_sampled() const;
  /// Closes owned sinks (campaign-shared sinks are closed by their
  /// owner); call before reading the output files.
  void close();

 private:
  Telemetry(const TelemetryConfig& config,
            std::shared_ptr<TimeSeriesWriter> writer,
            std::shared_ptr<ChromeTraceSink> sink, std::string label,
            std::int32_t tid, bool owns_sinks);

  std::int64_t period_ = 0;
  std::string label_;
  std::int32_t tid_ = 0;
  bool owns_sinks_ = false;
  bool header_written_ = false;
  ProbeRegistry probes_;
  EngineProbes engine_;
  std::vector<bool> emit_;        ///< allowlist mask by ProbeId
  std::vector<std::int64_t> prev_;  ///< previous counter values by ProbeId
  std::shared_ptr<TimeSeriesWriter> writer_;
  std::shared_ptr<ChromeTraceSink> sink_;
};

/// Emits warmup / measure / drain spans for a slotted engine run. The
/// engine calls at_slot(now) once per slot (inside its telemetry
/// branch) and finish() after the loop; boundaries are detected by
/// slot number, so the helper works for every engine and drain policy.
class WindowSpans {
 public:
  WindowSpans() = default;
  WindowSpans(ChromeTraceSink* sink, std::int32_t tid, std::int64_t warmup,
              std::int64_t horizon);

  void at_slot(std::int64_t now);
  void finish();

 private:
  ChromeTraceSink* sink_ = nullptr;
  std::int32_t tid_ = 0;
  std::int64_t warmup_ = 0;
  std::int64_t horizon_ = 0;
  std::int64_t start_us_ = -1;
  std::int64_t measure_us_ = -1;
  std::int64_t drain_us_ = -1;
};

}  // namespace otis::obs
