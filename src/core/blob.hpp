#pragma once
/// \file blob.hpp
/// Fixed-layout binary blob serialization for engine checkpoints.
///
/// Checkpoint blobs must be byte-stable across runs of the same build
/// (a restored run is compared bit-for-bit against an uninterrupted
/// one), so every field is written explicitly in little-endian order --
/// no struct memcpy, no padding, no host-endianness leaks. The reader
/// is bounds-checked: a truncated or corrupt blob raises through
/// OTIS_REQUIRE instead of reading past the buffer, and callers treat
/// that as "no usable checkpoint" rather than a fatal error.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace otis::core {

/// Append-only little-endian byte buffer.
class BlobWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_rng(const Rng& rng) {
    for (std::uint64_t lane : rng.state()) {
      put_u64(lane);
    }
  }

  /// Length-prefixed vector of i64.
  void put_i64_vec(const std::vector<std::int64_t>& v) {
    put_u64(v.size());
    for (std::int64_t x : v) {
      put_i64(x);
    }
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a byte buffer (not owned).
class BlobReader {
 public:
  BlobReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BlobReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  [[nodiscard]] std::uint8_t get_u8() {
    OTIS_REQUIRE(pos_ + 1 <= size_, "BlobReader: truncated blob");
    return data_[pos_++];
  }

  [[nodiscard]] std::uint64_t get_u64() {
    OTIS_REQUIRE(pos_ + 8 <= size_, "BlobReader: truncated blob");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] Rng get_rng() {
    std::array<std::uint64_t, 4> lanes{};
    for (std::uint64_t& lane : lanes) {
      lane = get_u64();
    }
    Rng rng;
    rng.set_state(lanes);
    return rng;
  }

  [[nodiscard]] std::vector<std::int64_t> get_i64_vec() {
    const std::uint64_t n = get_u64();
    OTIS_REQUIRE(pos_ + n * 8 <= size_, "BlobReader: truncated blob");
    std::vector<std::int64_t> v(static_cast<std::size_t>(n));
    for (std::int64_t& x : v) {
      x = get_i64();
    }
    return v;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes `bytes` to `path` atomically (temp file in the same
/// directory, then rename), so an interrupted writer never leaves a
/// half-written checkpoint where a resume would find it.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Reads the whole file into `bytes`; returns false when the file does
/// not exist or cannot be read (never throws).
[[nodiscard]] bool read_file(const std::string& path,
                             std::vector<std::uint8_t>& bytes);

}  // namespace otis::core
