#include "sim/phased_engine.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "sim/arbitration.hpp"

namespace otis::sim {
namespace {

/// Legacy per-run stream tag (must match the event-queue engine).
constexpr std::uint64_t kRunStream = 0x0715;
/// Sharded/workload per-unit streams and the closed-loop slot bound
/// are shared with the async engine (ops_network.hpp detail) so
/// workload runs agree across engines.
using detail::coupler_streams;
using detail::node_streams;
using detail::workload_slot_bound;

/// Ceiling-free contiguous partition of [0, count) into `parts` ranges.
std::pair<std::int64_t, std::int64_t> partition(std::int64_t count, int part,
                                                int parts) {
  const std::int64_t lo = count * part / parts;
  const std::int64_t hi = count * (part + 1) / parts;
  return {lo, hi};
}

}  // namespace

template <routing::RouteView Routes>
PhasedEngineT<Routes>::PhasedEngineT(const hypergraph::StackGraph& network,
                                     const Routes& routes,
                                     TrafficGenerator& traffic,
                                     const SimConfig& config)
    : network_(network),
      routes_(routes),
      traffic_(traffic),
      config_(config) {
  const auto& hg = network_.hypergraph();
  nodes_ = hg.node_count();
  couplers_ = hg.hyperarc_count();
  voq_base_.resize(static_cast<std::size_t>(nodes_) + 1);
  voq_base_[0] = 0;
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    voq_base_[static_cast<std::size_t>(v) + 1] =
        voq_base_[static_cast<std::size_t>(v)] + hg.out_degree(v);
  }
  voq_.resize(static_cast<std::size_t>(voq_base_.back()));
  token_.assign(static_cast<std::size_t>(couplers_), 0);
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run(
    std::vector<std::int64_t>& coupler_success) {
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  if (config_.workload != nullptr) {
    return config_.engine == Engine::kSharded
               ? run_workload_sharded(coupler_success)
               : run_workload_serial(coupler_success);
  }
  if (config_.engine == Engine::kSharded) {
    return run_sharded(coupler_success);
  }
  return run_serial(coupler_success);
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_serial(
    std::vector<std::int64_t>& coupler_success) {
  const auto& hg = network_.hypergraph();
  core::Rng rng = core::Rng::stream(config_.seed, kRunStream);
  RunMetrics metrics;
  metrics.slots = config_.measure_slots;

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  std::int64_t inflight = 0;
  std::int64_t next_packet_id = 0;

  // Hoisted scratch: one allocation per run, not per coupler-slot.
  std::vector<std::size_t> contenders;
  std::vector<std::size_t> winners;
  std::vector<char> is_contender;
  struct Delivery {
    Packet packet;
    hypergraph::HyperarcId coupler;
  };
  std::vector<Delivery> deliveries;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  const auto enqueue = [&](Packet packet, hypergraph::Node at,
                           bool measuring) {
    const std::int32_t slot = routes_.next_slot(at, packet.destination);
    auto& queue = voq_[static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot)];
    if (config_.queue_capacity > 0 &&
        static_cast<std::int64_t>(queue.size()) >= config_.queue_capacity) {
      if (measuring) {
        ++metrics.dropped_packets;
      }
      --inflight;
      return;
    }
    queue.push_back(std::move(packet));
  };

  for (SimTime now = 0;;) {
    const bool measuring = now >= config_.warmup_slots && now < horizon;

    // Phase 1: traffic generation (stops at the horizon; drain only).
    if (now < horizon) {
      for (hypergraph::Node v = 0; v < nodes_; ++v) {
        const TrafficDemand demand = traffic_.demand(v, rng);
        if (!demand.has_packet || demand.destination == v) {
          continue;
        }
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, v, demand.destination);
        }
        if (measuring) {
          ++metrics.offered_packets;
        }
        ++inflight;
        enqueue(Packet{next_packet_id++, v, demand.destination, now, 0}, v,
                measuring);
      }
    }

    // Phase 2: per-coupler arbitration over the flattened feeds.
    deliveries.clear();
    for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
      const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
      const std::size_t feed_count = static_cast<std::size_t>(feed.count);
      if (is_contender.size() < feed_count) {
        is_contender.resize(feed_count, 0);
      }
      contenders.clear();
      for (std::size_t si = 0; si < feed_count; ++si) {
        if (!voq_[static_cast<std::size_t>(
                      voq_base_[static_cast<std::size_t>(feed.source[si])] +
                      feed.slot[si])]
                 .empty()) {
          contenders.push_back(si);
          is_contender[si] = 1;
        }
      }
      if (contenders.empty()) {
        continue;
      }
      const bool collided = detail::pick_winners(
          config_.arbitration, capacity, feed_count, contenders, is_contender,
          token_[static_cast<std::size_t>(h)], rng, winners);
      for (std::size_t si : contenders) {
        is_contender[si] = 0;
      }
      if (collided && measuring) {
        ++metrics.collisions;
      }
      for (std::size_t si : winners) {
        auto& queue = voq_[static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si])];
        Packet packet = std::move(queue.front());
        queue.pop_front();
        ++packet.hops;
        if (measuring) {
          ++metrics.coupler_transmissions;
          ++coupler_success[static_cast<std::size_t>(h)];
        }
        deliveries.push_back(Delivery{std::move(packet), h});
      }
    }

    // Phase 3: receivers pick winners off their couplers.
    for (Delivery& d : deliveries) {
      const hypergraph::Node relay =
          routes_.relay(d.coupler, d.packet.destination);
      if (relay == d.packet.destination) {
        if (measuring) {
          ++metrics.delivered_packets;
          if (d.packet.created >= config_.warmup_slots) {
            metrics.latency.record(now - d.packet.created + 1);
          }
        }
        --inflight;
      } else {
        enqueue(std::move(d.packet), relay, measuring);
      }
    }

    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      break;
    }
    ++now;
    if (now > drain_bound) {
      break;
    }
  }

  metrics.backlog = inflight;
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_sharded(
    std::vector<std::int64_t>& coupler_success) {
  const auto& hg = network_.hypergraph();
  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }
  threads = static_cast<int>(std::min<std::int64_t>(
      threads, std::max<std::int64_t>(1, std::max(nodes_, couplers_))));

  // Per-unit RNG streams: the partition can never influence the draw.
  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  /// Deliveries of the current slot, per coupler, in winner order; hop
  /// counter already bumped. Written by the coupler's owner in phase 2,
  /// read by every worker in phase 3.
  std::vector<std::vector<Packet>> deliveries(
      static_cast<std::size_t>(couplers_));

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t coupler_begin = 0, coupler_end = 0;
    std::int64_t offered = 0, delivered = 0, dropped = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;
    LatencyStats latency;
    std::vector<std::size_t> contenders, winners;
    std::vector<char> is_contender;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    auto [nb, ne] = partition(nodes_, w, threads);
    auto [cb, ce] = partition(couplers_, w, threads);
    shards[static_cast<std::size_t>(w)].node_begin = nb;
    shards[static_cast<std::size_t>(w)].node_end = ne;
    shards[static_cast<std::size_t>(w)].coupler_begin = cb;
    shards[static_cast<std::size_t>(w)].coupler_end = ce;
  }

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  // Slot state shared across workers; mutated only by the slot barrier's
  // completion step, which runs while every worker is blocked.
  SimTime now = 0;
  std::int64_t inflight = 0;
  bool running = true;

  const auto on_slot_end = [&]() noexcept {
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
    }
    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      running = false;
      return;
    }
    ++now;
    if (now > drain_bound) {
      running = false;
    }
  };
  std::barrier<> phase_barrier(threads);
  std::barrier<decltype(on_slot_end)> slot_barrier(threads, on_slot_end);

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    const auto enqueue = [&](const Packet& packet, hypergraph::Node at,
                             bool measuring) {
      const std::int32_t slot = routes_.next_slot(at, packet.destination);
      auto& queue = voq_[static_cast<std::size_t>(
          voq_base_[static_cast<std::size_t>(at)] + slot)];
      if (config_.queue_capacity > 0 &&
          static_cast<std::int64_t>(queue.size()) >= config_.queue_capacity) {
        if (measuring) {
          ++shard.dropped;
        }
        --shard.inflight_delta;
        return;
      }
      queue.push_back(packet);
    };

    while (true) {
      const bool measuring = now >= config_.warmup_slots && now < horizon;

      // Phase 1: generation over the shard's nodes.
      if (now < horizon) {
        for (hypergraph::Node v = shard.node_begin; v < shard.node_end; ++v) {
          const TrafficDemand demand =
              traffic_.demand(v, gen_rng[static_cast<std::size_t>(v)]);
          if (!demand.has_packet || demand.destination == v) {
            continue;
          }
          if (config_.recorder != nullptr) {
            config_.recorder->record(now, v, demand.destination);
          }
          if (measuring) {
            ++shard.offered;
          }
          ++shard.inflight_delta;
          // Deterministic id without a shared counter.
          enqueue(Packet{now * nodes_ + v, v, demand.destination, now, 0}, v,
                  measuring);
        }
      }
      phase_barrier.arrive_and_wait();

      // Phase 2: arbitration over the shard's couplers.
      for (hypergraph::HyperarcId h = shard.coupler_begin;
           h < shard.coupler_end; ++h) {
        auto& out = deliveries[static_cast<std::size_t>(h)];
        out.clear();
        const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
        const std::size_t feed_count = static_cast<std::size_t>(feed.count);
        if (shard.is_contender.size() < feed_count) {
          shard.is_contender.resize(feed_count, 0);
        }
        shard.contenders.clear();
        for (std::size_t si = 0; si < feed_count; ++si) {
          if (!voq_[static_cast<std::size_t>(
                        voq_base_[static_cast<std::size_t>(feed.source[si])] +
                        feed.slot[si])]
                   .empty()) {
            shard.contenders.push_back(si);
            shard.is_contender[si] = 1;
          }
        }
        if (shard.contenders.empty()) {
          continue;
        }
        const bool collided = detail::pick_winners(
            config_.arbitration, capacity, feed_count, shard.contenders,
            shard.is_contender, token_[static_cast<std::size_t>(h)],
            arb_rng[static_cast<std::size_t>(h)], shard.winners);
        for (std::size_t si : shard.contenders) {
          shard.is_contender[si] = 0;
        }
        if (collided && measuring) {
          ++shard.collisions;
        }
        for (std::size_t si : shard.winners) {
          auto& queue = voq_[static_cast<std::size_t>(
              voq_base_[static_cast<std::size_t>(feed.source[si])] +
              feed.slot[si])];
          Packet packet = std::move(queue.front());
          queue.pop_front();
          ++packet.hops;
          if (measuring) {
            ++shard.transmissions;
            ++coupler_success[static_cast<std::size_t>(h)];
          }
          out.push_back(packet);
        }
      }
      phase_barrier.arrive_and_wait();

      // Phase 3: every worker scans all deliveries in coupler order and
      // consumes the ones whose relay it owns, so the push order at each
      // node is canonical regardless of the partition.
      for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
        for (const Packet& packet : deliveries[static_cast<std::size_t>(h)]) {
          const hypergraph::Node relay =
              routes_.relay(h, packet.destination);
          if (relay < shard.node_begin || relay >= shard.node_end) {
            continue;
          }
          if (relay == packet.destination) {
            if (measuring) {
              ++shard.delivered;
              if (packet.created >= config_.warmup_slots) {
                shard.latency.record(now - packet.created + 1);
              }
            }
            --shard.inflight_delta;
          } else {
            enqueue(packet, relay, measuring);
          }
        }
      }
      slot_barrier.arrive_and_wait();
      if (!running) {
        break;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  RunMetrics metrics;
  metrics.slots = config_.measure_slots;
  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.dropped_packets += shard.dropped;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
  }
  metrics.backlog = inflight;
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_workload_serial(
    std::vector<std::int64_t>& coupler_success) {
  const auto& hg = network_.hypergraph();
  workload::Workload& load = *config_.workload;
  load.reset();

  // Workload contract: per-node generation streams and per-coupler
  // arbitration streams on EVERY engine, so the run is one universe
  // across phased/sharded/async (see ops_network.hpp detail tags).
  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  const SimTime bound = workload_slot_bound(load);
  std::int64_t inflight = 0;
  bool load_done = false;  ///< as of the end of the previous slot

  std::vector<std::size_t> contenders;
  std::vector<std::size_t> winners;
  std::vector<char> is_contender;
  struct Delivery {
    Packet packet;
    hypergraph::HyperarcId coupler;
  };
  std::vector<Delivery> deliveries;
  std::vector<workload::WorkloadPacket> inject;
  std::vector<std::int64_t> delivered_ids;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  // queue_capacity is 0 in workload mode (validated), so enqueue never
  // drops.
  const auto enqueue = [&](Packet packet, hypergraph::Node at) {
    const std::int32_t slot = routes_.next_slot(at, packet.destination);
    voq_[static_cast<std::size_t>(voq_base_[static_cast<std::size_t>(at)] +
                                  slot)]
        .push_back(std::move(packet));
  };

  load.poll(0, inject);
  SimTime now = 0;
  for (;;) {
    // Phase 1a: inject the packets that became eligible, in the
    // workload's (id-sorted) order.
    for (const workload::WorkloadPacket& packet : inject) {
      ++metrics.offered_packets;
      ++inflight;
      enqueue(Packet{packet.id, packet.source, packet.destination, now, 0},
              packet.source);
    }
    inject.clear();
    // Phase 1b: open-loop background traffic until the workload is
    // complete (load 0 generators never fire).
    if (!load_done) {
      for (hypergraph::Node v = 0; v < nodes_; ++v) {
        const TrafficDemand demand =
            traffic_.demand(v, gen_rng[static_cast<std::size_t>(v)]);
        if (!demand.has_packet || demand.destination == v) {
          continue;
        }
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, v, demand.destination);
        }
        ++metrics.offered_packets;
        ++inflight;
        enqueue(Packet{background_base + now * nodes_ + v, v,
                       demand.destination, now, 0},
                v);
      }
    }

    // Phase 2: arbitration, drawing from the coupler's own stream.
    deliveries.clear();
    for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
      const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
      const std::size_t feed_count = static_cast<std::size_t>(feed.count);
      if (is_contender.size() < feed_count) {
        is_contender.resize(feed_count, 0);
      }
      contenders.clear();
      for (std::size_t si = 0; si < feed_count; ++si) {
        if (!voq_[static_cast<std::size_t>(
                      voq_base_[static_cast<std::size_t>(feed.source[si])] +
                      feed.slot[si])]
                 .empty()) {
          contenders.push_back(si);
          is_contender[si] = 1;
        }
      }
      if (contenders.empty()) {
        continue;
      }
      const bool collided = detail::pick_winners(
          config_.arbitration, capacity, feed_count, contenders, is_contender,
          token_[static_cast<std::size_t>(h)],
          arb_rng[static_cast<std::size_t>(h)], winners);
      for (std::size_t si : contenders) {
        is_contender[si] = 0;
      }
      if (collided) {
        ++metrics.collisions;
      }
      for (std::size_t si : winners) {
        auto& queue = voq_[static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si])];
        Packet packet = std::move(queue.front());
        queue.pop_front();
        ++packet.hops;
        ++metrics.coupler_transmissions;
        ++coupler_success[static_cast<std::size_t>(h)];
        deliveries.push_back(Delivery{std::move(packet), h});
      }
    }

    // Phase 3: consume winners; workload deliveries feed back.
    delivered_ids.clear();
    for (Delivery& d : deliveries) {
      const hypergraph::Node relay =
          routes_.relay(d.coupler, d.packet.destination);
      if (relay == d.packet.destination) {
        ++metrics.delivered_packets;
        metrics.latency.record(now - d.packet.created + 1);
        if (d.packet.id < background_base) {
          delivered_ids.push_back(d.packet.id);
        }
        --inflight;
      } else {
        enqueue(std::move(d.packet), relay);
      }
    }
    for (std::int64_t id : delivered_ids) {
      load.delivered(id);
    }
    if (!delivered_ids.empty()) {
      metrics.makespan_slots = now + 1;
    }
    load_done = load.done();

    if (load_done && inflight == 0) {
      break;
    }
    ++now;
    if (now > bound) {
      break;
    }
    if (!load_done) {
      load.poll(now, inject);
    }
  }

  metrics.slots = now + 1;
  metrics.backlog = inflight;
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics PhasedEngineT<Routes>::run_workload_sharded(
    std::vector<std::int64_t>& coupler_success) {
  const auto& hg = network_.hypergraph();
  workload::Workload& load = *config_.workload;
  load.reset();

  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }
  threads = static_cast<int>(std::min<std::int64_t>(
      threads, std::max<std::int64_t>(1, std::max(nodes_, couplers_))));

  std::vector<core::Rng> gen_rng = node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng = coupler_streams(config_.seed, couplers_);

  std::vector<std::vector<Packet>> deliveries(
      static_cast<std::size_t>(couplers_));

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t coupler_begin = 0, coupler_end = 0;
    std::int64_t offered = 0, delivered = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;
    LatencyStats latency;
    std::vector<std::int64_t> delivered_ids;  ///< workload ids this slot
    std::vector<std::size_t> contenders, winners;
    std::vector<char> is_contender;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    auto [nb, ne] = partition(nodes_, w, threads);
    auto [cb, ce] = partition(couplers_, w, threads);
    shards[static_cast<std::size_t>(w)].node_begin = nb;
    shards[static_cast<std::size_t>(w)].node_end = ne;
    shards[static_cast<std::size_t>(w)].coupler_begin = cb;
    shards[static_cast<std::size_t>(w)].coupler_end = ce;
  }

  const std::int64_t background_base = load.packet_count();
  const SimTime bound = workload_slot_bound(load);
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  // Slot state shared across workers; mutated only in the slot
  // barrier's completion step (every worker is blocked then). `inject`
  // is read-only during phases.
  SimTime now = 0;
  std::int64_t inflight = 0;
  std::int64_t makespan = 0;
  bool load_done = false;
  bool running = true;
  std::vector<workload::WorkloadPacket> inject;
  load.poll(0, inject);

  const auto on_slot_end = [&]() noexcept {
    bool delivered_any = false;
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
      // Feed order across shards is arbitrary but irrelevant: poll()
      // depends only on the delivered SET (workload contract).
      for (std::int64_t id : shard.delivered_ids) {
        load.delivered(id);
        delivered_any = true;
      }
      shard.delivered_ids.clear();
    }
    if (delivered_any) {
      makespan = now + 1;
    }
    load_done = load.done();
    inject.clear();
    if (load_done && inflight == 0) {
      running = false;
      return;
    }
    ++now;
    if (now > bound) {
      running = false;
      return;
    }
    if (!load_done) {
      load.poll(now, inject);
    }
  };
  std::barrier<> phase_barrier(threads);
  std::barrier<decltype(on_slot_end)> slot_barrier(threads, on_slot_end);

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    const auto enqueue = [&](const Packet& packet, hypergraph::Node at) {
      const std::int32_t slot = routes_.next_slot(at, packet.destination);
      voq_[static_cast<std::size_t>(voq_base_[static_cast<std::size_t>(at)] +
                                    slot)]
          .push_back(packet);
    };

    while (true) {
      // Phase 1a: the shard's slice of the eligible injections.
      for (const workload::WorkloadPacket& packet : inject) {
        if (packet.source < shard.node_begin ||
            packet.source >= shard.node_end) {
          continue;
        }
        ++shard.offered;
        ++shard.inflight_delta;
        enqueue(Packet{packet.id, packet.source, packet.destination, now, 0},
                packet.source);
      }
      // Phase 1b: background traffic over the shard's nodes.
      if (!load_done) {
        for (hypergraph::Node v = shard.node_begin; v < shard.node_end; ++v) {
          const TrafficDemand demand =
              traffic_.demand(v, gen_rng[static_cast<std::size_t>(v)]);
          if (!demand.has_packet || demand.destination == v) {
            continue;
          }
          if (config_.recorder != nullptr) {
            config_.recorder->record(now, v, demand.destination);
          }
          ++shard.offered;
          ++shard.inflight_delta;
          enqueue(Packet{background_base + now * nodes_ + v, v,
                         demand.destination, now, 0},
                  v);
        }
      }
      phase_barrier.arrive_and_wait();

      // Phase 2: arbitration over the shard's couplers.
      for (hypergraph::HyperarcId h = shard.coupler_begin;
           h < shard.coupler_end; ++h) {
        auto& out = deliveries[static_cast<std::size_t>(h)];
        out.clear();
        const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
        const std::size_t feed_count = static_cast<std::size_t>(feed.count);
        if (shard.is_contender.size() < feed_count) {
          shard.is_contender.resize(feed_count, 0);
        }
        shard.contenders.clear();
        for (std::size_t si = 0; si < feed_count; ++si) {
          if (!voq_[static_cast<std::size_t>(
                        voq_base_[static_cast<std::size_t>(feed.source[si])] +
                        feed.slot[si])]
                   .empty()) {
            shard.contenders.push_back(si);
            shard.is_contender[si] = 1;
          }
        }
        if (shard.contenders.empty()) {
          continue;
        }
        const bool collided = detail::pick_winners(
            config_.arbitration, capacity, feed_count, shard.contenders,
            shard.is_contender, token_[static_cast<std::size_t>(h)],
            arb_rng[static_cast<std::size_t>(h)], shard.winners);
        for (std::size_t si : shard.contenders) {
          shard.is_contender[si] = 0;
        }
        if (collided) {
          ++shard.collisions;
        }
        for (std::size_t si : shard.winners) {
          auto& queue = voq_[static_cast<std::size_t>(
              voq_base_[static_cast<std::size_t>(feed.source[si])] +
              feed.slot[si])];
          Packet packet = std::move(queue.front());
          queue.pop_front();
          ++packet.hops;
          ++shard.transmissions;
          ++coupler_success[static_cast<std::size_t>(h)];
          out.push_back(packet);
        }
      }
      phase_barrier.arrive_and_wait();

      // Phase 3: consume the deliveries whose relay this shard owns.
      for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
        for (const Packet& packet : deliveries[static_cast<std::size_t>(h)]) {
          const hypergraph::Node relay =
              routes_.relay(h, packet.destination);
          if (relay < shard.node_begin || relay >= shard.node_end) {
            continue;
          }
          if (relay == packet.destination) {
            ++shard.delivered;
            shard.latency.record(now - packet.created + 1);
            if (packet.id < background_base) {
              shard.delivered_ids.push_back(packet.id);
            }
            --shard.inflight_delta;
          } else {
            enqueue(packet, relay);
          }
        }
      }
      slot_barrier.arrive_and_wait();
      if (!running) {
        break;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  RunMetrics metrics;
  metrics.slots = now + 1;
  metrics.makespan_slots = makespan;
  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
  }
  metrics.backlog = inflight;
  return metrics;
}

template class PhasedEngineT<routing::CompiledRoutes>;
template class PhasedEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
