#pragma once
/// \file error.hpp
/// Error handling primitives shared by every otisnet module.
///
/// The library reports contract violations (bad parameters, malformed
/// constructions) by throwing `otis::core::Error`, and uses
/// `OTIS_REQUIRE` for argument validation on public entry points.
/// Internal invariants that indicate a library bug use `OTIS_ASSERT`.

#include <stdexcept>
#include <string>

namespace otis::core {

/// Exception type thrown on contract violations in otisnet APIs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the "file:line: message" text used by the checking macros.
[[nodiscard]] std::string format_error(const char* file, int line,
                                       const std::string& message);

/// Throws `Error` unconditionally; used by the macros below so the throw
/// lives in one translation unit.
[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& message);

}  // namespace otis::core

/// Validates a precondition on a public API; throws otis::core::Error with
/// location info when `cond` is false.
#define OTIS_REQUIRE(cond, message)                             \
  do {                                                          \
    if (!(cond)) {                                              \
      ::otis::core::throw_error(__FILE__, __LINE__, (message)); \
    }                                                           \
  } while (false)

/// Checks an internal invariant. Failure means a bug inside otisnet, not a
/// misuse by the caller; still throws so tests can observe it.
#define OTIS_ASSERT(cond, message)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::otis::core::throw_error(__FILE__, __LINE__,                         \
                                std::string("internal invariant failed: ") \
                                    + (message));                           \
    }                                                                       \
  } while (false)
