#pragma once
/// \file imase_itoh_routing.hpp
/// Arithmetic shortest-path routing on Imase-Itoh graphs.
///
/// In II(d, n) a walk of m hops with arc labels alpha_1..alpha_m lands at
///   v = (-d)^m u - sum_{i=1..m} (-d)^{m-i} alpha_i   (mod n),
/// so v is reachable in exactly m hops iff
///   t := ((-d)^m u - v) mod n
/// has a representative in S_m = { sum_{j=0..m-1} (-d)^j a_j : a_j in
/// [1, d] }. S_m is a contiguous integer interval (S_0 = {0},
/// S_m = -d * S_{m-1} + [1, d]) in which every value has a *unique*
/// digit expansion, decodable greedily like negative-base arithmetic.
/// The router therefore finds the minimal m, picks the representative
/// t + j*n inside the interval, peels the digits and emits the path --
/// no search, O(diameter) arithmetic per route, and provably shortest
/// (cross-checked against BFS in tests). This is the natural
/// generalization of Kautz label routing to arbitrary n.

#include <cstdint>
#include <vector>

#include "topology/imase_itoh.hpp"

namespace otis::routing {

/// Arithmetic router for II(d, n).
class ImaseItohRouter {
 public:
  explicit ImaseItohRouter(topology::ImaseItoh graph);

  [[nodiscard]] const topology::ImaseItoh& graph() const noexcept {
    return ii_;
  }

  /// Exact distance from u to v (0 when equal). Throws only if no path
  /// exists within diameter_formula() + 4 hops, which would contradict
  /// the Imase-Itoh diameter theorem.
  [[nodiscard]] int distance(std::int64_t u, std::int64_t v) const;

  /// One shortest path, vertices u .. v inclusive.
  [[nodiscard]] std::vector<std::int64_t> route(std::int64_t u,
                                                std::int64_t v) const;

  /// The arc labels alpha_1..alpha_m of that shortest path.
  [[nodiscard]] std::vector<int> route_labels(std::int64_t u,
                                              std::int64_t v) const;

  /// All shortest-path label sequences (there can be several when t has
  /// several representatives in S_m); used by fault-tolerant routing.
  [[nodiscard]] std::vector<std::vector<int>> all_shortest_label_routes(
      std::int64_t u, std::int64_t v) const;

 private:
  /// Label sequences of walks of *exactly* m hops from u to v.
  [[nodiscard]] std::vector<std::vector<int>> exact_length_routes(
      std::int64_t u, std::int64_t v, int m) const;

  topology::ImaseItoh ii_;
};

}  // namespace otis::routing
