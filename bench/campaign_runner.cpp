// Campaign driver: runs a declarative experiment grid from a JSON spec.
//
//   campaign_runner --spec specs/paper_grid.json --out out/paper --threads 8
//   campaign_runner --spec specs/paper_grid.json --out out/paper --resume
//   campaign_runner --spec specs/wdm_scale.json --out out/s0 --shard 0/4
//
// Expands topologies x arbitrations x loads x wavelengths x seeds into
// cells, compiles one routing table per topology, fans cells out over a
// work-stealing pool, and streams results.jsonl / results.csv (plus a
// manifest that makes interrupted runs resumable) into --out. The
// emitted bytes are identical for every --threads value. An aggregate
// over the seed axis (mean +/- stddev per metric) is printed and written
// to aggregate.csv.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "core/args.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "core/table.hpp"

namespace {

/// On --resume, cells already in the manifest never reach the sinks, so
/// their rows are read back from results.jsonl and folded into the
/// aggregate -- otherwise aggregate.csv would cover only this
/// invocation's cells. Rows not recorded in the manifest are ignored
/// (they belong to cells that will be re-simulated), and each manifest
/// ID folds at most once. Folded values carry the JSONL's fixed
/// 6-decimal rounding, so a resumed aggregate matches an uninterrupted
/// run's to ~1e-6 per metric rather than bit-exactly. Because traffic
/// and routes are per-row fields, this also refolds a directory merged
/// from several --shard runs into the full-grid aggregate.
void refold_completed_cells(const std::string& out_dir,
                            otis::campaign::AggregateSink& aggregate) {
  namespace fs = std::filesystem;
  const fs::path dir(out_dir);
  auto completed = otis::campaign::Manifest::load(
      (dir / otis::campaign::CampaignRunner::kManifestFile).string());
  std::ifstream jsonl(dir / otis::campaign::CampaignRunner::kJsonlFile);
  std::string line;
  while (std::getline(jsonl, line)) {
    if (line.empty()) {
      continue;
    }
    const otis::core::Json row = otis::core::Json::parse(line);
    if (completed.erase(row.at("cell_id").as_string()) == 0) {
      continue;
    }
    otis::sim::SweepPoint trial;
    trial.load = row.at("load").as_number();
    trial.throughput_per_node = row.at("throughput_per_node").as_number();
    trial.mean_latency = row.at("mean_latency").as_number();
    trial.p95_latency = row.at("p95_latency").as_number();
    trial.coupler_utilization = row.at("coupler_utilization").as_number();
    trial.delivered_fraction = row.at("delivered_fraction").as_number();
    const std::int64_t couplers = row.at("couplers").as_int();
    const std::int64_t slots = row.at("slots").as_int();
    trial.collision_rate =
        couplers > 0 && slots > 0
            ? row.at("collisions").as_number() /
                  (static_cast<double>(couplers) *
                   static_cast<double>(slots))
            : 0.0;
    trial.makespan = row.number_or("makespan", 0.0);
    trial.trials = 1;
    // Traffic/timing/workload are folded by their row labels verbatim
    // -- the labels carry the shape/skew parameters, so swept entries
    // land in distinct groups without re-parsing.
    aggregate.fold(row.at("topology").as_string(),
                   row.at("arbitration").as_string(),
                   row.at("traffic").as_string(), trial.load,
                   row.at("wavelengths").as_int(),
                   otis::campaign::parse_route_table(
                       row.string_or("routes", "auto")),
                   row.string_or("timing", "none"),
                   row.string_or("workload", "none"),
                   row.at("nodes").as_int(), couplers, trial);
  }
}

void print_usage(std::ostream& os) {
  os << "usage: campaign_runner --spec FILE.json [--out DIR] [--threads N]\n"
     << "                       [--resume] [--shard I/N] [--no-jsonl]\n"
     << "                       [--no-csv] [--progress] [--list-cells]\n"
     << "  --spec     campaign spec file (see README 'Running campaigns')\n"
     << "  --out      output directory for results.jsonl, results.csv,\n"
     << "             manifest.txt and aggregate.csv\n"
     << "  --threads  worker pool size (default 1; <= 0 = all cores)\n"
     << "  --resume   skip cells already in DIR/manifest.txt, append files\n"
     << "  --shard    run only every N-th cell starting at I (0 <= I < N):\n"
     << "             a deterministic split of one campaign across\n"
     << "             machines; concatenate the shards' results.jsonl and\n"
     << "             manifest.txt to refold the full grid (composes with\n"
     << "             --resume)\n"
     << "  --progress heartbeat on stderr every ~2 s: cells done/total,\n"
     << "             rate, ETA (over this invocation's cells only, so\n"
     << "             --resume shows the true remaining time) and busy\n"
     << "             workers; with the spec's telemetry runtime_stats\n"
     << "             sink set, adds the running barrier-stall share and\n"
     << "             a per-cell stall-attribution line\n"
     << "  --checkpoint-stop SLOT  drill (tests/CI): with the spec's\n"
     << "             checkpoint_every set, stop every cell right after\n"
     << "             its first checkpoint at a boundary >= SLOT, as if\n"
     << "             the process died there; rerun with --resume to\n"
     << "             finish the cells bit-identically\n"
     << "  --list-cells  dry run: print every cell's expansion index,\n"
     << "             status, engine, estimated weight (nodes x slots x\n"
     << "             timing factor, skewed cells weighing 2.5-3x their\n"
     << "             slot-aligned twins, plus the cell's amortized\n"
     << "             share of its topology's route-compile cost --\n"
     << "             O(G^2) compressed vs O(N^2) dense -- for\n"
     << "             balancing shards by work, not cell count) and ID\n"
     << "             without simulating anything -- for planning\n"
     << "             sharded and resumed runs\n";
}

/// Per-slot cost multiplier of the cell's timing profile. Skewed cells
/// run the calendar-queue async loop, whose per-event pops, eligibility
/// gates and tick arithmetic cost roughly 2.5x a phased slot; per-level
/// skew spreads the delays further (wider windows, longer in-flight
/// tails), so it carries another half step. Slot-aligned cells -- kNone
/// or a skew profile with every tick zero -- stay on the phased-loop
/// baseline of 1.
double timing_weight_factor(const otis::sim::TimingConfig& timing) {
  if (timing.is_slot_aligned()) {
    return 1.0;
  }
  return timing.profile == otis::sim::SkewProfile::kPerLevel ? 3.0 : 2.5;
}

/// One topology's route-compile cost in router evaluations: O(G^2) for
/// the group-factored table, O(N^2) for the dense one (the same
/// quantities CompiledRoutes/CompressedRoutes::compile loop over). At
/// SK(12,20,3) scale the dense/compressed gap is four orders of
/// magnitude, which is exactly what shard planning must see.
std::int64_t route_compile_cost(const otis::campaign::TopologySpec& topology,
                                otis::sim::RouteTable routes) {
  const std::int64_t nodes = topology.processor_count();
  const std::int64_t groups = nodes / topology.stacking;
  return otis::sim::resolve_route_table(routes, nodes) ==
                 otis::sim::RouteTable::kCompressed
             ? groups * groups
             : nodes * nodes;
}

/// The --list-cells dry run: the exact expansion, shard split and
/// manifest skip set a real run would use, as a printout.
int list_cells(const otis::campaign::CampaignSpec& spec,
               const otis::campaign::CampaignOptions& options) {
  const std::vector<otis::campaign::CampaignCell> cells =
      otis::campaign::expand_grid(spec);
  // The compile happens once per topology and its cells share it, so
  // each cell's weight carries an amortized slice of that cost.
  std::vector<std::int64_t> topology_cells(spec.topologies.size(), 0);
  for (const otis::campaign::CampaignCell& cell : cells) {
    ++topology_cells[cell.topology];
  }
  std::unordered_set<std::string> completed;
  if (options.resume && !options.out_dir.empty()) {
    completed = otis::campaign::Manifest::load(
        (std::filesystem::path(options.out_dir) /
         otis::campaign::CampaignRunner::kManifestFile)
            .string());
  }
  std::int64_t pending = 0, done = 0, other_shard = 0;
  std::int64_t pending_weight = 0;
  for (const otis::campaign::CampaignCell& cell : cells) {
    // Estimated cell weight: nodes x simulated slots x timing factor,
    // the slot loop's work bound up to the per-slot constant. Skewed
    // cells pay the async calendar-queue loop on top of the raw slot
    // count (timing_weight_factor), so shards balanced by this weight
    // no longer under-provision the async cells. Closed-loop (workload)
    // cells run to completion, so their window is a lower bound. On top
    // comes the cell's amortized share of its topology's route-compile
    // cost -- at large N a dense O(N^2) compile dwarfs the simulation
    // window, and a shard holding one such cell must be charged for it.
    const std::int64_t weight =
        static_cast<std::int64_t>(
            static_cast<double>(
                spec.topologies[cell.topology].processor_count() *
                (spec.warmup_slots + spec.measure_slots)) *
            timing_weight_factor(cell.timing)) +
        route_compile_cost(spec.topologies[cell.topology], cell.routes) /
            topology_cells[cell.topology];
    const char* status = "pending";
    if (cell.index % options.shard_count != options.shard_index) {
      status = "other-shard";
      ++other_shard;
    } else if (completed.count(cell.id) > 0) {
      status = "done";
      ++done;
    } else {
      ++pending;
      pending_weight += weight;
    }
    std::cout << cell.index << "\t" << status << "\t"
              << otis::sim::engine_name(cell.engine) << "\t" << weight
              << "\t" << cell.id << "\n";
  }
  std::cout << "[campaign] " << spec.name << ": " << cells.size()
            << " cells, " << pending << " pending (weight "
            << pending_weight << ")";
  if (options.shard_count > 1) {
    std::cout << " in shard " << options.shard_index << "/"
              << options.shard_count << " (" << other_shard
              << " left to other shards)";
  }
  if (options.resume) {
    std::cout << ", " << done << " done per manifest";
  }
  std::cout << " -- dry run, nothing simulated\n";
  return 0;
}

/// Parses "I/N" into (shard_index, shard_count). Strict: both parts
/// must be pure decimal numbers -- a typo'd shard spec must fail, not
/// run a plausible-looking subset of the grid on the wrong machine.
std::pair<int, int> parse_shard(const std::string& text) {
  const auto parse_part = [&](const std::string& part) {
    if (part.empty() || part.size() > 9 ||
        part.find_first_not_of("0123456789") != std::string::npos) {
      throw otis::core::Error("--shard expects I/N with "
                              "decimal I and N, got \"" +
                              text + "\"");
    }
    return std::stoi(part);
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw otis::core::Error("--shard expects I/N, got \"" +
                            text + "\"");
  }
  const int index = parse_part(text.substr(0, slash));
  const int count = parse_part(text.substr(slash + 1));
  if (count < 1 || index >= count) {
    throw otis::core::Error("--shard needs 0 <= I < N");
  }
  return {index, count};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const otis::core::Args args(
        argc, argv,
        {"spec", "out", "threads", "resume", "shard", "no-jsonl", "no-csv",
         "progress", "checkpoint-stop", "list-cells", "help"});
    if (args.has("help")) {
      print_usage(std::cout);
      return 0;
    }
    const std::string spec_path = args.get("spec", "");
    if (spec_path.empty()) {
      print_usage(std::cerr);
      return 2;
    }

    otis::campaign::CampaignSpec spec =
        otis::campaign::load_campaign_spec(spec_path);

    otis::campaign::CampaignOptions options;
    options.threads = static_cast<int>(args.get_int("threads", 1));
    options.out_dir = args.get("out", "");
    options.resume = args.has("resume");
    options.write_jsonl = !args.has("no-jsonl");
    options.write_csv = !args.has("no-csv");
    options.progress = args.has("progress");
    if (args.has("checkpoint-stop")) {
      options.checkpoint_stop = args.get_int("checkpoint-stop", -1);
    }
    if (args.has("shard")) {
      std::tie(options.shard_index, options.shard_count) =
          parse_shard(args.get("shard", ""));
    }
    if (args.has("list-cells")) {
      return list_cells(spec, options);
    }

    std::cout << "[campaign] " << spec.name << ": " << spec.cell_count()
              << " cells (" << spec.topologies.size() << " topologies x "
              << spec.arbitrations.size() << " arbitrations x "
              << spec.traffics.size() << " traffics x " << spec.loads.size()
              << " loads x " << spec.wavelengths.size() << " wavelengths x "
              << spec.route_tables.size() << " route tables x "
              << spec.timings.size() << " timings x "
              << spec.workloads.size() << " workloads x "
              << spec.seeds.size() << " seeds), engine "
              << otis::sim::engine_name(spec.engine) << "\n";
    if (options.shard_count > 1) {
      std::cout << "[campaign] shard " << options.shard_index << "/"
                << options.shard_count << "\n";
    }

    auto aggregate = std::make_shared<otis::campaign::AggregateSink>();
    otis::campaign::CampaignRunner runner(std::move(spec));
    runner.add_sink(aggregate);
    if (options.resume && !options.out_dir.empty()) {
      refold_completed_cells(options.out_dir, *aggregate);
    }
    const otis::campaign::CampaignReport report = runner.run(options);

    std::cout << "[campaign] completed " << report.completed_cells << "/"
              << report.total_cells << " cells ("
              << report.skipped_cells << " resumed from manifest, "
              << report.out_of_shard_cells << " left to other shards";
    if (report.interrupted_cells > 0) {
      std::cout << ", " << report.interrupted_cells
                << " checkpointed and interrupted";
    }
    std::cout << "), "
              << report.topologies_compiled
              << " routing tables compiled, ";
    if (report.runtime_rows > 0) {
      std::cout << report.runtime_rows << " runtime rows, ";
    }
    std::cout
              << otis::core::format_double(report.elapsed_seconds, 2)
              << " s";
    if (report.elapsed_seconds > 0.0 && report.completed_cells > 0) {
      std::cout << " ("
                << otis::core::format_double(
                       static_cast<double>(report.completed_cells) /
                           report.elapsed_seconds,
                       1)
                << " cells/s)";
    }
    std::cout << "\n\n";

    if (!aggregate->groups().empty()) {
      otis::core::Table table({"topology", "arb", "load", "W", "trials",
                               "thr/node", "thr sd", "latency", "lat sd",
                               "p95", "delivered"});
      for (const otis::campaign::AggregateSink::Group& g :
           aggregate->groups()) {
        table.add(g.topology, g.arbitration,
                  otis::core::format_double(g.load, 2), g.wavelengths,
                  g.point.trials,
                  otis::core::format_double(g.point.throughput_per_node, 4),
                  otis::core::format_double(g.point.throughput_stddev, 4),
                  otis::core::format_double(g.point.mean_latency, 3),
                  otis::core::format_double(g.point.mean_latency_stddev, 3),
                  otis::core::format_double(g.point.p95_latency, 1),
                  otis::core::format_double(g.point.delivered_fraction, 4));
      }
      table.print(std::cout);
    }

    if (!options.out_dir.empty()) {
      const std::string aggregate_path = options.out_dir + "/aggregate.csv";
      aggregate->write_csv(aggregate_path);
      std::cout << "\noutputs in " << options.out_dir << ": "
                << otis::campaign::CampaignRunner::kJsonlFile << ", "
                << otis::campaign::CampaignRunner::kCsvFile
                << ", aggregate.csv, "
                << otis::campaign::CampaignRunner::kManifestFile << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "campaign_runner: " << e.what() << "\n";
    return 1;
  }
}
