#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// Simulation experiments must be reproducible across runs and platforms,
/// so otisnet ships its own xoshiro256** generator (public-domain
/// algorithm by Blackman & Vigna) seeded through splitmix64 instead of
/// relying on implementation-defined std::default_random_engine behaviour.

#include <array>
#include <cstdint>
#include <vector>

namespace otis::core {

/// splitmix64 step; used for seeding and for hashing seeds into streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can
/// drive <random> distributions, but the helpers below avoid distribution
/// portability issues entirely.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Creates an independent stream for (seed, stream) pairs; used by the
  /// experiment runner to give each trial its own generator.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value. Inline (with the bounded helpers below):
  /// these are the innermost draws of every simulation hot loop, and an
  /// out-of-line call per draw costs more than the xoshiro step itself.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased); bound == 0 is
  /// treated as "any 64-bit value".
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return (*this)();
    }
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept {
    if (lo >= hi) {
      return lo;
    }
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap: 0 == full range
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  [[nodiscard]] double uniform_real() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return uniform_real() < p;
  }

  /// Fills draws[i] = uniform(start_bound - i) for i in [0, count): the
  /// descending-bound draw sequence of a partial Fisher-Yates, whose
  /// bounds depend only on the list length -- never on the swaps -- so
  /// the whole batch can be drawn ahead of the swap loop. Consumes
  /// exactly the raw values the equivalent uniform() calls would, in
  /// the same order (bit-identical sequences); batching keeps the
  /// generator state in registers across the run of draws instead of
  /// re-loading it between swap iterations. `start_bound` must be
  /// >= count.
  void uniform_descending(std::uint64_t start_bound, std::size_t count,
                          std::uint64_t* draws) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
      draws[i] = uniform(start_bound - static_cast<std::uint64_t>(i));
    }
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// The four xoshiro lanes, for engine checkpointing: a generator
  /// restored via set_state() continues the exact draw sequence.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  /// Random permutation of {0, .., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// k distinct values sampled uniformly from {0, .., n-1} (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

 private:
  static std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace otis::core
