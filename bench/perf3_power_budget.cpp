// Perf F3: power-budget feasibility vs stacking factor. The paper's
// technology premise (low-loss OPS couplers [14,20], free-space optics
// beating wires on power [12]) turns into an architectural bound: each
// multi-OPS hop costs fixed insertion losses plus 10*log10(s) dB of
// splitting, so the OPS degree s is capped by the link budget. Sweeps s,
// reports the canonical hop loss, and cross-checks the analytic loss
// against a real traced SK(s,2,2) design for small s.

#include <iostream>

#include "core/table.hpp"
#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "optics/power.hpp"

int main() {
  std::cout << "[Perf F3] link budget vs stacking factor s\n\n";
  otis::optics::LossModel model;
  otis::optics::PowerBudget nominal;          // 0 dBm, -30 dBm, 3 dB margin
  otis::optics::PowerBudget strong{3, -35, 3};   // better laser + detector
  otis::optics::PowerBudget weak{-3, -22, 3};    // lossy, cheap parts

  otis::core::Table table({"s", "hop loss dB", "nominal ok", "strong ok",
                           "weak ok"});
  for (std::int64_t s : {1, 2, 4, 6, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double loss = otis::optics::canonical_hop_loss_db(model, s);
    table.add(s, otis::core::format_double(loss, 2), nominal.feasible(loss),
              strong.feasible(loss), weak.feasible(loss));
  }
  table.print(std::cout);

  const std::int64_t s_nominal =
      otis::optics::max_stacking_factor(nominal, model);
  const std::int64_t s_strong =
      otis::optics::max_stacking_factor(strong, model);
  const std::int64_t s_weak = otis::optics::max_stacking_factor(weak, model);
  std::cout << "\nmax feasible s: weak budget " << s_weak << ", nominal "
            << s_nominal << ", strong " << s_strong << "\n";

  // Cross-check the analytic hop loss against traced designs.
  bool ok = s_weak <= s_nominal && s_nominal <= s_strong && s_nominal > 0;
  for (std::int64_t s : {1, 2, 4}) {
    otis::designs::NetworkDesign design =
        otis::designs::stack_kautz_design(s, 2, 2);
    otis::designs::VerificationResult v =
        otis::designs::verify_design(design, model);
    const double analytic = otis::optics::canonical_hop_loss_db(model, s);
    const bool match = v.ok && std::abs(v.max_loss_db - analytic) < 1e-9;
    std::cout << "traced SK(" << s << ",2,2) max loss "
              << otis::core::format_double(v.max_loss_db, 3)
              << " dB vs analytic "
              << otis::core::format_double(analytic, 3) << " dB: "
              << (match ? "match" : "MISMATCH") << "\n";
    ok = ok && match;
  }
  std::cout << "budget model consistent with traced designs: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
