// Tests for the runtime-introspection channel (obs/runtime_stats):
//  - the two-channel contract: with an ACTIVE runtime session attached,
//    the deterministic channel stays byte-identical across worker
//    counts and RunMetrics stay bit-exact against the uninstrumented
//    run -- wall-clock collection must never leak into simulation
//    outputs;
//  - a default-config session is inert: active() false, zero rows;
//  - shard rows are internally consistent: phased-sharded windows equal
//    the slot horizon, lookahead_used <= lookahead_available, and the
//    async-sharded mailbox conservation law (total sends == total
//    replays) holds in open-loop and workload modes;
//  - the cell_summary stall attribution is a valid distribution
//    (stall_share in [0,1], blame normalized);
//  - WorkStealingPool worker counters add up: items sum to the batch
//    size, steals never exceed items, and busy+idle+steal stays within
//    the pool's wall clock.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/work_pool.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "obs/probe.hpp"
#include "obs/runtime_stats.hpp"
#include "obs/telemetry.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/trace.hpp"

namespace {

using namespace otis;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_rt_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
}

constexpr std::int64_t kWarmup = 50;
constexpr std::int64_t kMeasure = 400;

/// One SK(4,3,2) run with optional telemetry + runtime sessions.
sim::RunMetrics run_sk(sim::Engine engine, int threads,
                       std::shared_ptr<obs::Telemetry> telemetry,
                       std::shared_ptr<obs::RuntimeStats> runtime,
                       std::uint64_t seed = 42) {
  hypergraph::StackKautz sk(4, 3, 2);
  sim::SimConfig config;
  config.warmup_slots = kWarmup;
  config.measure_slots = kMeasure;
  config.seed = seed;
  config.engine = engine;
  config.threads = threads;
  config.telemetry = std::move(telemetry);
  config.runtime_stats = std::move(runtime);
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.35),
      config);
  return sim.run();
}

workload::Trace record_small_trace() {
  hypergraph::StackKautz sk(4, 3, 2);
  auto recorder =
      std::make_shared<workload::TraceRecorder>(sk.processor_count());
  sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 120;
  config.seed = 7;
  config.recorder = recorder;
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.4),
      config);
  sim.run();
  return recorder->trace();
}

sim::RunMetrics run_workload(sim::Engine engine, int threads,
                             const workload::Trace& trace,
                             std::shared_ptr<obs::RuntimeStats> runtime) {
  hypergraph::StackKautz sk(4, 3, 2);
  sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: workload runs go to completion
  config.seed = 7;
  config.engine = engine;
  config.threads = threads;
  config.workload = std::make_shared<workload::TraceWorkload>(trace);
  config.runtime_stats = std::move(runtime);
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.0),
      config);
  return sim.run();
}

/// An active session counting rows without touching the filesystem.
std::shared_ptr<obs::RuntimeStats> counting_session() {
  obs::RuntimeStatsConfig config;
  config.collect = true;
  return obs::RuntimeStats::create(config);
}

/// Parses a runtime JSONL file into per-type row lists.
struct RuntimeRows {
  std::vector<core::Json> schema;
  std::vector<core::Json> shard;
  std::vector<core::Json> workers;
  std::vector<core::Json> cell_summary;
};

RuntimeRows parse_runtime(const std::filesystem::path& path) {
  RuntimeRows rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const core::Json row = core::Json::parse(line);
    const std::string type = row.at("type").as_string();
    if (type == "schema") {
      rows.schema.push_back(row);
    } else if (type == "shard") {
      rows.shard.push_back(row);
    } else if (type == "workers") {
      rows.workers.push_back(row);
    } else if (type == "cell_summary") {
      rows.cell_summary.push_back(row);
    }
  }
  return rows;
}

TEST(RuntimeStats, DefaultConfigSessionIsInert) {
  const auto session = obs::RuntimeStats::create({});
  EXPECT_FALSE(session->active());
  const sim::RunMetrics off =
      run_sk(sim::Engine::kSharded, 2, nullptr, nullptr);
  const sim::RunMetrics on =
      run_sk(sim::Engine::kSharded, 2, nullptr, session);
  expect_identical(off, on);
  EXPECT_EQ(session->rows(), 0);
  EXPECT_EQ(session->stall_summary().shards, 0);
}

TEST(RuntimeStats, ActiveSessionKeepsMetricsExactOnEveryShardedEngine) {
  for (const sim::Engine engine :
       {sim::Engine::kSharded, sim::Engine::kAsyncSharded}) {
    SCOPED_TRACE(sim::engine_name(engine));
    const sim::RunMetrics off = run_sk(engine, 3, nullptr, nullptr);
    const auto session = counting_session();
    const sim::RunMetrics on = run_sk(engine, 3, nullptr, session);
    expect_identical(off, on);
    session->finish();
    // Schema + one row per shard + the cell summary.
    EXPECT_EQ(session->rows(), 1 + 3 + 1);
  }
}

TEST(RuntimeStats, DeterministicChannelIsThreadCountInvariantWithStatsOn) {
  // The two-channel contract, end to end: the timeseries bytes and the
  // merged probe values must not move when the runtime channel is
  // collecting, whatever the worker count.
  ScratchDir scratch("invariance");
  const sim::RunMetrics off =
      run_sk(sim::Engine::kSharded, 1, nullptr, nullptr);

  std::string reference_bytes;
  std::vector<std::int64_t> reference_probes;
  for (const int threads : {1, 2, 5, 8}) {
    SCOPED_TRACE(threads);
    obs::TelemetryConfig tcfg;
    tcfg.sample_period = 64;
    const std::filesystem::path ts_path =
        scratch.path() / ("ts_" + std::to_string(threads) + ".jsonl");
    tcfg.timeseries_path = ts_path.string();
    const auto tel = obs::Telemetry::create(tcfg);
    const auto session = counting_session();
    const sim::RunMetrics on =
        run_sk(sim::Engine::kSharded, threads, tel, session);
    expect_identical(off, on);
    session->finish();
    EXPECT_GT(session->rows(), 0);

    std::vector<std::int64_t> probes;
    const obs::ProbeRegistry& reg = tel->probes();
    for (obs::ProbeId id = 0; id < reg.probe_count(); ++id) {
      if (reg.kind(id) == obs::ProbeKind::kHistogram) {
        for (std::size_t i = 0; i < reg.bucket_count(id); ++i) {
          probes.push_back(reg.bucket(id, i));
        }
      } else {
        probes.push_back(reg.value(id));
      }
    }
    tel->close();
    const std::string bytes = read_file(ts_path);
    EXPECT_GT(bytes.size(), 0u);
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
      reference_probes = probes;
    } else {
      EXPECT_EQ(bytes, reference_bytes)
          << "deterministic channel must not depend on the worker count "
             "even while the runtime channel collects";
      EXPECT_EQ(probes, reference_probes);
    }
  }
}

TEST(RuntimeStats, PhasedShardRowsAreInternallyConsistent) {
  ScratchDir scratch("phased");
  const std::filesystem::path path = scratch.path() / "runtime.jsonl";
  obs::RuntimeStatsConfig config;
  config.path = path.string();
  const auto session = obs::RuntimeStats::create(config);
  run_sk(sim::Engine::kSharded, 3, nullptr, session);
  session->finish();
  session->close();

  const RuntimeRows rows = parse_runtime(path);
  ASSERT_EQ(rows.schema.size(), 1u);
  EXPECT_EQ(rows.schema[0].at("channel").as_string(), "runtime");
  ASSERT_EQ(rows.shard.size(), 3u);
  for (const core::Json& shard : rows.shard) {
    EXPECT_EQ(shard.at("engine").as_string(), "phased_sharded");
    EXPECT_EQ(shard.at("mode").as_string(), "open_loop");
    EXPECT_EQ(shard.at("shards").as_int(), 3);
    // The phased loop runs one barrier cycle per slot, and slot engines
    // count 1/1 lookahead per slot.
    EXPECT_EQ(shard.at("windows").as_int(), kWarmup + kMeasure);
    EXPECT_EQ(shard.at("lookahead_used").as_int(), kWarmup + kMeasure);
    EXPECT_EQ(shard.at("lookahead_available").as_int(),
              kWarmup + kMeasure);
    EXPECT_GE(shard.at("barrier_wait_ns").as_int(), 0);
    EXPECT_GE(shard.at("work_ns").as_int(), 0);
    EXPECT_GT(shard.at("wall_ns").as_int(), 0);
    // The phased engine shares state through merged arenas, never
    // through the async mailboxes.
    EXPECT_EQ(shard.at("mailbox_msgs_sent").as_int(), 0);
    EXPECT_EQ(shard.at("mailbox_msgs_replayed").as_int(), 0);
  }
  ASSERT_EQ(rows.cell_summary.size(), 1u);
  const core::Json& summary = rows.cell_summary[0];
  EXPECT_EQ(summary.at("shards").as_int(), 3);
  const double stall = summary.at("stall_share").as_number();
  EXPECT_GE(stall, 0.0);
  EXPECT_LE(stall, 1.0);
  const double blamed = summary.at("blamed_share").as_number();
  EXPECT_GE(blamed, summary.at("blamed_shard").as_int() >= 0 ? 1.0 / 3.0
                                                             : 0.0);
  EXPECT_LE(blamed, 1.0);
}

TEST(RuntimeStats, AsyncShardedMailboxSendsEqualReplays) {
  // Mailbox conservation: every cross-shard arrival is counted once at
  // its producer (outbox drain before the window barrier) and once at
  // its consumer (calendar replay); over a completed run the totals
  // match exactly. Lookahead use can be clipped by the horizon but
  // never exceeds what the conservative window offered.
  for (const int threads : {2, 5}) {
    SCOPED_TRACE(threads);
    const auto session = counting_session();
    run_sk(sim::Engine::kAsyncSharded, threads, nullptr, session);
    session->finish();
    const obs::RuntimeStats::StallSummary summary =
        session->stall_summary();
    EXPECT_EQ(summary.shards, threads);
  }

  ScratchDir scratch("async");
  const std::filesystem::path path = scratch.path() / "runtime.jsonl";
  obs::RuntimeStatsConfig config;
  config.path = path.string();
  const auto session = obs::RuntimeStats::create(config);
  run_sk(sim::Engine::kAsyncSharded, 4, nullptr, session);
  session->finish();
  session->close();

  const RuntimeRows rows = parse_runtime(path);
  ASSERT_EQ(rows.shard.size(), 4u);
  std::int64_t sent = 0;
  std::int64_t replayed = 0;
  for (const core::Json& shard : rows.shard) {
    EXPECT_EQ(shard.at("engine").as_string(), "async_sharded");
    sent += shard.at("mailbox_msgs_sent").as_int();
    replayed += shard.at("mailbox_msgs_replayed").as_int();
    EXPECT_LE(shard.at("lookahead_used").as_int(),
              shard.at("lookahead_available").as_int());
    EXPECT_GT(shard.at("windows").as_int(), 0);
    EXPECT_GE(shard.at("calendar_peak").as_int(), 0);
  }
  EXPECT_EQ(sent, replayed) << "mailbox sends and replays must balance";
  EXPECT_GT(sent, 0) << "SK(4,3,2) over 4 shards must cross shards";
}

TEST(RuntimeStats, WorkloadModeKeepsMetricsAndMailboxInvariants) {
  const workload::Trace trace = record_small_trace();
  ScratchDir scratch("workload");
  for (const sim::Engine engine :
       {sim::Engine::kSharded, sim::Engine::kAsyncSharded}) {
    SCOPED_TRACE(sim::engine_name(engine));
    const sim::RunMetrics off = run_workload(engine, 3, trace, nullptr);
    const std::filesystem::path path =
        scratch.path() / (std::string(sim::engine_name(engine)) + ".jsonl");
    obs::RuntimeStatsConfig config;
    config.path = path.string();
    const auto session = obs::RuntimeStats::create(config);
    const sim::RunMetrics on = run_workload(engine, 3, trace, session);
    expect_identical(off, on);
    session->finish();
    session->close();

    const RuntimeRows rows = parse_runtime(path);
    ASSERT_EQ(rows.shard.size(), 3u);
    std::int64_t sent = 0;
    std::int64_t replayed = 0;
    for (const core::Json& shard : rows.shard) {
      EXPECT_EQ(shard.at("mode").as_string(), "workload");
      sent += shard.at("mailbox_msgs_sent").as_int();
      replayed += shard.at("mailbox_msgs_replayed").as_int();
    }
    EXPECT_EQ(sent, replayed);
  }
}

TEST(RuntimeStats, SharedWriterTagsEachSessionsRows) {
  ScratchDir scratch("shared");
  const std::filesystem::path path = scratch.path() / "runtime.jsonl";
  const auto writer =
      std::make_shared<obs::RuntimeStatsWriter>(path.string());
  for (const std::string label : {"cell-a", "cell-b"}) {
    const auto session = obs::RuntimeStats::attach(writer, label);
    EXPECT_TRUE(session->active());
    run_sk(sim::Engine::kSharded, 2, nullptr, session);
    session->finish();
  }
  writer->close();

  const RuntimeRows rows = parse_runtime(path);
  EXPECT_EQ(rows.schema.size(), 2u);  // one per session label
  ASSERT_EQ(rows.shard.size(), 4u);
  EXPECT_EQ(rows.cell_summary.size(), 2u);
  EXPECT_EQ(rows.shard[0].at("cell").as_string(), "cell-a");
  EXPECT_EQ(rows.shard[2].at("cell").as_string(), "cell-b");
}

TEST(RuntimeStats, PoolWorkerCountersAddUp) {
  constexpr int kWorkers = 3;
  constexpr std::size_t kItems = 64;
  core::WorkStealingPool pool(kWorkers);
  pool.enable_stats();
  std::atomic<std::int64_t> sink{0};
  pool.run(kItems, [&](std::size_t item) {
    // Enough work per item that busy time is visible next to the
    // bookkeeping around it.
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < 20'000; ++i) {
      acc += static_cast<std::int64_t>(item) ^ i;
    }
    sink.fetch_add(acc, std::memory_order_relaxed);
  });

  const std::vector<core::WorkStealingPool::WorkerStats> stats =
      pool.stats();
  ASSERT_EQ(stats.size(), static_cast<std::size_t>(kWorkers));
  const std::int64_t wall = pool.stats_wall_ns();
  EXPECT_GT(wall, 0);
  std::int64_t items = 0;
  std::int64_t busy = 0;
  for (const core::WorkStealingPool::WorkerStats& w : stats) {
    items += w.items;
    busy += w.busy_ns;
    EXPECT_GE(w.busy_ns, 0);
    EXPECT_GE(w.idle_ns, 0);
    EXPECT_GE(w.steal_ns, 0);
    EXPECT_LE(w.steals, w.items) << "a steal is an executed item";
    // busy + idle + steal is measured against the pool's lifetime;
    // uncovered slivers (mutex handoffs) only make the sum smaller.
    EXPECT_LE(w.busy_ns + w.idle_ns + w.steal_ns, wall + wall / 2);
  }
  EXPECT_EQ(items, static_cast<std::int64_t>(kItems))
      << "every item executes exactly once";
  EXPECT_GT(busy, 0);

  // Stats stay monotone across batches on the same pool.
  pool.run(kItems, [&](std::size_t) {});
  std::int64_t items_after = 0;
  for (const core::WorkStealingPool::WorkerStats& w : pool.stats()) {
    items_after += w.items;
  }
  EXPECT_EQ(items_after, static_cast<std::int64_t>(2 * kItems));
}

TEST(RuntimeStats, StatsDisabledPoolCountsNothing) {
  core::WorkStealingPool pool(2);
  pool.run(16, [](std::size_t) {});
  for (const core::WorkStealingPool::WorkerStats& w : pool.stats()) {
    EXPECT_EQ(w.items, 0);
    EXPECT_EQ(w.busy_ns, 0);
    EXPECT_EQ(w.idle_ns, 0);
  }
}

}  // namespace
