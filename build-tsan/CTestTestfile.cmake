# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_collectives "/root/repo/build-tsan/test_collectives")
set_tests_properties(test_collectives PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-tsan/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_designs "/root/repo/build-tsan/test_designs")
set_tests_properties(test_designs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_engine_equivalence "/root/repo/build-tsan/test_engine_equivalence")
set_tests_properties(test_engine_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_geometry "/root/repo/build-tsan/test_geometry")
set_tests_properties(test_geometry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build-tsan/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_hypergraph "/root/repo/build-tsan/test_hypergraph")
set_tests_properties(test_hypergraph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build-tsan/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_optics "/root/repo/build-tsan/test_optics")
set_tests_properties(test_optics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_otis "/root/repo/build-tsan/test_otis")
set_tests_properties(test_otis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_routing "/root/repo/build-tsan/test_routing")
set_tests_properties(test_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build-tsan/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_table_routing "/root/repo/build-tsan/test_table_routing")
set_tests_properties(test_table_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_topology "/root/repo/build-tsan/test_topology")
set_tests_properties(test_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
