// Perf F8 (async timing extension): how much of the paper's
// slot-synchronous throughput survives realistic hardware skew? The
// paper assumes statically-tuned transmitters and equal fiber lengths
// (Sec. 2.2); this bench sweeps transmitter tuning latency (and one
// per-level propagation-skew profile) on the async calendar-queue
// engine and prints throughput/latency-vs-skew curves next to the
// slot-aligned baseline -- the full-scale grid is specs/async_skew.json.
//
// The timing axis is a campaign sweep on the paper's SK(4,3,2): the
// routing table is compiled once and shared across every skew cell, and
// the "none" row doubles as the parity anchor (the async engine is
// bit-identical to the phased engine there, so the curve starts exactly
// at the paper's operating point).
//
// Headline shape: *stacking hides tuning dead time*. A coupler is fed
// by s VOQs, so round-robin arbitration covers a transmitter's re-tune
// gap as long as tuning <= (s-1) slots -- the throughput curve stays
// flat while latency creeps up, then drops sharply once tuning exceeds
// what the coupler's other feeds can cover (s = 4 here: the knee is at
// 4 slots of tuning).

#include <iostream>
#include <memory>
#include <vector>

#include "campaign/runner.hpp"
#include "core/table.hpp"
#include "sim/timing_model.hpp"

int main() {
  std::cout << "[Perf F8] async skew: tuning latency / propagation skew "
               "vs slotted throughput on SK(4,3,2) (campaign API)\n\n";

  const std::vector<otis::sim::SimTime> tuning_sweep{256, 512, 1024, 2048,
                                                     4096};
  otis::campaign::CampaignSpec spec;
  spec.name = "perf8-async-skew";
  spec.topologies = {otis::campaign::TopologySpec::stack_kautz(4, 3, 2)};
  spec.loads = {0.6};
  spec.seeds = {31, 32, 33};
  spec.warmup_slots = 200;
  spec.measure_slots = 1000;
  spec.engine = otis::sim::Engine::kAsync;

  spec.timings.clear();
  spec.timings.push_back(otis::sim::TimingConfig{});  // slot-aligned anchor
  for (otis::sim::SimTime tuning : tuning_sweep) {
    otis::sim::TimingConfig config;
    config.profile = otis::sim::SkewProfile::kConstant;
    config.tuning_ticks = tuning;
    config.propagation_ticks = 128;
    spec.timings.push_back(config);
  }
  {
    otis::sim::TimingConfig leveled;
    leveled.profile = otis::sim::SkewProfile::kPerLevel;
    leveled.tuning_ticks = 256;
    leveled.propagation_ticks = 64;
    leveled.level_skew_ticks = 256;
    spec.timings.push_back(leveled);
  }

  auto aggregate = std::make_shared<otis::campaign::AggregateSink>();
  otis::campaign::CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  otis::campaign::CampaignOptions options;
  options.threads = 0;
  runner.run(options);

  otis::core::Table table({"timing", "tuning slots", "thr/node", "thr sd",
                           "latency", "p95", "vs aligned"});
  double aligned = 0.0;
  std::vector<double> throughputs;
  // Groups appear in timing-axis order (the only swept axis above seeds).
  for (std::size_t i = 0; i < aggregate->groups().size(); ++i) {
    const otis::campaign::AggregateSink::Group& group =
        aggregate->groups()[i];
    const double thr = group.point.throughput_per_node;
    if (group.timing == "none") {
      aligned = thr;
    }
    throughputs.push_back(thr);
    table.add(group.timing,
              otis::core::format_double(
                  static_cast<double>(spec.timings[i].tuning_ticks) /
                      static_cast<double>(otis::sim::kTicksPerSlot),
                  2),
              otis::core::format_double(thr, 4),
              otis::core::format_double(group.point.throughput_stddev, 4),
              otis::core::format_double(group.point.mean_latency, 2),
              otis::core::format_double(group.point.p95_latency, 1),
              otis::core::format_double(aligned > 0 ? thr / aligned : 0.0,
                                        3));
  }
  table.print(std::cout);

  // Shapes: the slot-aligned row is the ceiling; throughput degrades
  // monotonically (within noise) as tuning latency grows, and latency
  // grows with it. A modest quarter-slot tuning must cost well under
  // half the throughput -- the paper's operating point is robust.
  bool ok = aligned > 0.0;
  for (std::size_t i = 1; i + 1 < throughputs.size(); ++i) {
    ok = ok && throughputs[i] <= aligned + 0.01;
  }
  // tuning = 256 ticks = 1/4 slot: degradation bounded.
  ok = ok && throughputs.size() > 1 && throughputs[1] > 0.5 * aligned;
  // tuning = 4096 ticks = 4 slots: must hurt visibly.
  ok = ok && throughputs[tuning_sweep.size()] < throughputs[1];
  std::cout << "\naligned row is the ceiling, quarter-slot tuning keeps "
               ">50% throughput, multi-slot tuning visibly degrades: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
