#include "campaign/manifest.hpp"

#include "core/error.hpp"

namespace otis::campaign {

Manifest::Manifest(const std::string& path, bool resume)
    : out_(path, resume ? (std::ios::out | std::ios::app)
                        : (std::ios::out | std::ios::trunc)) {
  OTIS_REQUIRE(out_.good(), "Manifest: cannot open " + path);
}

std::unordered_set<std::string> Manifest::load(const std::string& path) {
  std::unordered_set<std::string> completed;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty()) {
      completed.insert(line);
    }
  }
  return completed;
}

void Manifest::record(const std::string& cell_id) {
  out_ << cell_id << "\n";
  out_.flush();
}

}  // namespace otis::campaign
