#include "routing/generic_stack_routing.hpp"

#include "core/error.hpp"

namespace otis::routing {

GenericStackRouter::GenericStackRouter(
    const hypergraph::StackGraph& network)
    : network_(network), table_(network.base()) {}

graph::ArcId GenericStackRouter::arc_between(graph::Vertex from,
                                             graph::Vertex to) const {
  const graph::Digraph& base = network_.base();
  for (graph::ArcId a = base.out_begin(from); a < base.out_end(from); ++a) {
    if (base.head(a) == to) {
      return a;
    }
  }
  OTIS_REQUIRE(false, "GenericStackRouter: no base arc between groups");
  return -1;
}

std::int64_t GenericStackRouter::distance(hypergraph::Node source,
                                          hypergraph::Node target) const {
  if (source == target) {
    return 0;
  }
  const graph::Vertex gs = network_.project(source);
  const graph::Vertex gt = network_.project(target);
  if (gs == gt) {
    return 1;  // loop coupler
  }
  const std::int64_t d = table_.distance(gs, gt);
  OTIS_REQUIRE(d >= 0, "GenericStackRouter: target group unreachable");
  return d;
}

hypergraph::HyperarcId GenericStackRouter::next_coupler(
    hypergraph::Node current, hypergraph::Node target) const {
  OTIS_REQUIRE(current != target,
               "GenericStackRouter::next_coupler: already delivered");
  const graph::Vertex gc = network_.project(current);
  const graph::Vertex gt = network_.project(target);
  if (gc == gt) {
    return network_.coupler_of_arc(arc_between(gc, gc));
  }
  const graph::Vertex next = table_.next_hop(gc, gt);
  OTIS_REQUIRE(next >= 0, "GenericStackRouter: unreachable target group");
  return network_.coupler_of_arc(arc_between(gc, next));
}

hypergraph::Node GenericStackRouter::relay_on(
    hypergraph::HyperarcId coupler, hypergraph::Node target) const {
  const auto& arc = network_.hypergraph().hyperarc(coupler);
  OTIS_ASSERT(!arc.targets.empty(),
              "GenericStackRouter: coupler has no targets");
  const graph::Vertex group = network_.project(arc.targets.front());
  if (group == network_.project(target)) {
    return target;
  }
  return network_.node_of(group, network_.copy_index(target));
}

}  // namespace otis::routing
