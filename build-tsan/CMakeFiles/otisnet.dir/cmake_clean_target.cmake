file(REMOVE_RECURSE
  "libotisnet.a"
)
