// Parallel async engine (Engine::kAsyncSharded) tests:
//  - randomized differential stress of CalendarQueue ordering under
//    concurrent per-shard queues: keyed pushes plus simulated mailbox
//    handoffs, k-way merged across shards, must reproduce a single
//    reference queue's (time, seq) pop order exactly;
//  - the feed-local shard partition is sane (couplers never split);
//  - THE invariance suite: open-loop kAsyncSharded results are
//    bit-identical across thread counts {1, 2, 3, 5, 8}, equal the
//    sharded phased engine in the slot-aligned limit, and stay
//    invariant under constant / per-level skew, guard bands, finite
//    queues, WDM and drain;
//  - workload (closed-loop) runs are bit-identical to the SERIAL async
//    engine for every thread count, policy, table and skew profile,
//    with and without background traffic;
//  - telemetry: probe values and timeseries bytes do not depend on the
//    worker count, and attaching a session never changes the metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "obs/telemetry.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/timing_model.hpp"
#include "sim/traffic.hpp"
#include "workload/schedule_workload.hpp"
#include "collectives/stack_kautz_collectives.hpp"

namespace otis::sim {
namespace {

constexpr int kThreadCounts[] = {1, 2, 3, 5, 8};

constexpr Arbitration kAllPolicies[] = {Arbitration::kTokenRoundRobin,
                                        Arbitration::kRandomWinner,
                                        Arbitration::kSlottedAloha};

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.makespan_slots, b.makespan_slots);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

TimingConfig constant_timing(SimTime tuning, SimTime propagation,
                             SimTime guard = 0) {
  TimingConfig config;
  config.profile = SkewProfile::kConstant;
  config.tuning_ticks = tuning;
  config.propagation_ticks = propagation;
  config.guard_ticks = guard;
  return config;
}

TimingConfig level_timing(SimTime tuning, SimTime propagation,
                          SimTime level_skew) {
  TimingConfig config;
  config.profile = SkewProfile::kPerLevel;
  config.tuning_ticks = tuning;
  config.propagation_ticks = propagation;
  config.level_skew_ticks = level_skew;
  return config;
}

// --------------------------------------- sharded calendar differential

// The engine's cross-shard protocol in miniature: events carry explicit
// global (time, seq) keys, land in the shard queue owning their target,
// and "mailed" events are held back and keyed-pushed one window later.
// Popping the shards as a k-way merge on (time, seq) must reproduce one
// reference queue holding every event -- whatever the partition, the
// push interleaving or the mailbox delays.
TEST(ShardedCalendarStress, KeyedShardQueuesMergeToReferenceOrder) {
  for (const std::size_t shard_count : {2u, 3u, 5u, 8u}) {
    SCOPED_TRACE(shard_count);
    core::Rng rng(1234 + shard_count);
    std::vector<CalendarQueue<std::uint64_t>> shards(shard_count);
    CalendarQueue<std::uint64_t> reference;

    struct Mail {
      SimTime time;
      std::uint64_t seq;
      std::uint64_t payload;
      std::size_t shard;
    };
    std::vector<Mail> mailbox;

    std::uint64_t next_payload = 0;
    constexpr SimTime kWindow = 4 * kTicksPerSlot;
    constexpr int kWindows = 64;
    for (int w = 0; w < kWindows; ++w) {
      const SimTime window_start = w * kWindow;

      // Mail from the previous window arrives first (the barrier).
      for (const Mail& m : mailbox) {
        shards[m.shard].push_keyed(m.time, m.seq, m.payload);
      }
      mailbox.clear();

      // Produce events for strictly-later windows; unique random seq
      // values model the engine's (slot, coupler, winner) keys, which
      // need not be dense or contiguous per shard.
      const std::size_t produced = 8 + rng.uniform(24);
      for (std::size_t i = 0; i < produced; ++i) {
        const SimTime at = window_start + kWindow +
                           static_cast<SimTime>(rng.uniform(4 * kWindow));
        const std::uint64_t seq =
            (static_cast<std::uint64_t>(w) << 32) + (rng.uniform(1u << 20));
        const std::size_t target = rng.uniform(shard_count);
        const std::uint64_t payload = next_payload++;
        reference.push_keyed(at, seq, payload);
        if (rng.uniform(2) == 0) {
          mailbox.push_back(Mail{at, seq, payload, target});
        } else {
          shards[target].push_keyed(at, seq, payload);
        }
      }

      // Drain this window as the engines do: k-way merge on (time, seq)
      // across the shard queues, in lockstep with the reference.
      const SimTime window_end = window_start + kWindow;
      for (;;) {
        std::size_t best = shard_count;
        for (std::size_t s = 0; s < shard_count; ++s) {
          if (shards[s].empty() || shards[s].peek().time >= window_end) {
            continue;
          }
          if (best == shard_count ||
              shards[s].peek().time < shards[best].peek().time ||
              (shards[s].peek().time == shards[best].peek().time &&
               shards[s].peek().seq < shards[best].peek().seq)) {
            best = s;
          }
        }
        if (best == shard_count) {
          break;
        }
        const auto got = shards[best].pop();
        ASSERT_FALSE(reference.empty());
        const auto want = reference.pop();
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.payload, want.payload);
      }
    }

    // Final flush: undelivered mail lands first (the engines drain every
    // outbox before flushing), then everything merges in reference order.
    for (const Mail& m : mailbox) {
      shards[m.shard].push_keyed(m.time, m.seq, m.payload);
    }
    mailbox.clear();
    for (;;) {
      std::size_t best = shard_count;
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (shards[s].empty()) {
          continue;
        }
        if (best == shard_count ||
            shards[s].peek().time < shards[best].peek().time ||
            (shards[s].peek().time == shards[best].peek().time &&
             shards[s].peek().seq < shards[best].peek().seq)) {
          best = s;
        }
      }
      if (best == shard_count) {
        break;
      }
      const auto got = shards[best].pop();
      ASSERT_FALSE(reference.empty());
      const auto want = reference.pop();
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.payload, want.payload);
    }
    EXPECT_TRUE(reference.empty());
  }
}

// --------------------------------------------------- open-loop parity

enum class Table { kDense, kCompressed };

template <class Network, class CompileDense, class CompileCompressed>
RunMetrics run_case(Network& network, CompileDense compile_dense,
                    CompileCompressed compile_compressed,
                    std::int64_t processors, Engine engine, int threads,
                    Arbitration arb, Table table, const TimingConfig& timing,
                    std::vector<std::int64_t>* successes,
                    std::int64_t queue_capacity = 0,
                    std::int64_t wavelengths = 1, bool drain = false) {
  SimConfig config;
  config.arbitration = arb;
  config.warmup_slots = 40;
  config.measure_slots = 400;
  config.seed = 23;
  config.engine = engine;
  config.threads = threads;
  config.queue_capacity = queue_capacity;
  config.wavelengths = wavelengths;
  config.drain = drain;
  config.timing = timing;
  auto traffic = std::make_unique<UniformTraffic>(processors, 0.45);
  RunMetrics metrics;
  if (table == Table::kDense) {
    OpsNetworkSim sim(network.stack(), compile_dense(), std::move(traffic),
                      config);
    metrics = sim.run();
    if (successes != nullptr) {
      *successes = sim.coupler_successes();
    }
  } else {
    OpsNetworkSim sim(network.stack(), compile_compressed(),
                      std::move(traffic), config);
    metrics = sim.run();
    if (successes != nullptr) {
      *successes = sim.coupler_successes();
    }
  }
  return metrics;
}

/// 0 = SK(4,3,2), 1 = POPS(6,12), 2 = SII(4,2,12).
RunMetrics run_topology(int topology, Engine engine, int threads,
                        Arbitration arb, Table table,
                        const TimingConfig& timing = {},
                        std::vector<std::int64_t>* successes = nullptr,
                        std::int64_t queue_capacity = 0,
                        std::int64_t wavelengths = 1, bool drain = false) {
  switch (topology) {
    case 0: {
      hypergraph::StackKautz sk(4, 3, 2);
      return run_case(
          sk, [&] { return routing::compile_stack_kautz_routes(sk); },
          [&] { return routing::compress_stack_kautz_routes(sk); },
          sk.processor_count(), engine, threads, arb, table, timing,
          successes, queue_capacity, wavelengths, drain);
    }
    case 1: {
      hypergraph::Pops pops(6, 12);
      return run_case(
          pops, [&] { return routing::compile_pops_routes(pops); },
          [&] { return routing::compress_pops_routes(pops); },
          pops.processor_count(), engine, threads, arb, table, timing,
          successes, queue_capacity, wavelengths, drain);
    }
    default: {
      hypergraph::StackImaseItoh sii(4, 2, 12);
      return run_case(
          sii, [&] { return routing::compile_stack_imase_itoh_routes(sii); },
          [&] { return routing::compress_stack_imase_itoh_routes(sii); },
          sii.processor_count(), engine, threads, arb, table, timing,
          successes, queue_capacity, wavelengths, drain);
    }
  }
}

TEST(AsyncShardedParity, SlotAlignedMatchesShardedPhasedAcrossThreads) {
  const char* names[] = {"SK(4,3,2)", "POPS(6,12)", "SII(4,2,12)"};
  for (int topology = 0; topology < 3; ++topology) {
    for (Arbitration arb : kAllPolicies) {
      for (Table table : {Table::kDense, Table::kCompressed}) {
        SCOPED_TRACE(std::string(names[topology]) + "/" +
                     arbitration_name(arb) + "/" +
                     (table == Table::kDense ? "dense" : "compressed"));
        std::vector<std::int64_t> want_successes;
        const RunMetrics want =
            run_topology(topology, Engine::kSharded, 1, arb, table, {},
                         &want_successes);
        for (const int threads : kThreadCounts) {
          SCOPED_TRACE(threads);
          std::vector<std::int64_t> got_successes;
          const RunMetrics got =
              run_topology(topology, Engine::kAsyncSharded, threads, arb,
                           table, {}, &got_successes);
          expect_identical(want, got);
          EXPECT_EQ(want_successes, got_successes);
        }
      }
    }
  }
}

TEST(AsyncShardedParity, SkewedRunsAreThreadCountInvariant) {
  // Constant skew with >1 slot of propagation exercises lookahead
  // windows of several slots; the per-level profile mixes lookahead-1
  // couplers with distant ones; the guarded variant exercises the
  // eligibility gate. The single-thread run is the reference -- every
  // other worker count must reproduce it bit-for-bit.
  const TimingConfig timings[] = {
      constant_timing(256, 3 * kTicksPerSlot + 200, 64),
      level_timing(256, 700, 1400),
  };
  for (int topology = 0; topology < 3; ++topology) {
    for (const TimingConfig& timing : timings) {
      for (Arbitration arb : kAllPolicies) {
        SCOPED_TRACE(std::string("topology ") + std::to_string(topology) +
                     "/" + timing.label() + "/" + arbitration_name(arb));
        std::vector<std::int64_t> want_successes;
        const RunMetrics want =
            run_topology(topology, Engine::kAsyncSharded, 1, arb,
                         Table::kDense, timing, &want_successes);
        EXPECT_GT(want.offered_packets, 0);
        EXPECT_GT(want.delivered_packets, 0);
        for (const int threads : {2, 3, 5, 8}) {
          SCOPED_TRACE(threads);
          std::vector<std::int64_t> got_successes;
          const RunMetrics got =
              run_topology(topology, Engine::kAsyncSharded, threads, arb,
                           Table::kDense, timing, &got_successes);
          expect_identical(want, got);
          EXPECT_EQ(want_successes, got_successes);
        }
      }
    }
  }
}

TEST(AsyncShardedParity, QueuesWdmAndDrainStayInvariantUnderSkew) {
  const TimingConfig timing = constant_timing(200, 2 * kTicksPerSlot, 100);
  for (int topology = 0; topology < 3; ++topology) {
    SCOPED_TRACE(topology);
    const RunMetrics want = run_topology(
        topology, Engine::kAsyncSharded, 1, Arbitration::kTokenRoundRobin,
        Table::kCompressed, timing, nullptr, /*queue_capacity=*/3,
        /*wavelengths=*/2, /*drain=*/true);
    EXPECT_EQ(want.backlog, 0) << "drain must empty the network";
    for (const int threads : {2, 5, 8}) {
      SCOPED_TRACE(threads);
      const RunMetrics got = run_topology(
          topology, Engine::kAsyncSharded, threads,
          Arbitration::kTokenRoundRobin, Table::kCompressed, timing, nullptr,
          3, 2, true);
      expect_identical(want, got);
    }
  }
}

// ---------------------------------------------------- workload parity

struct WorkloadResult {
  RunMetrics metrics;
  std::vector<std::int64_t> coupler_success;
};

WorkloadResult run_gossip(Engine engine, int threads, Arbitration arb,
                          double background, const TimingConfig& timing,
                          bool compressed) {
  hypergraph::StackKautz sk(4, 3, 2);
  SimConfig config;
  config.engine = engine;
  config.threads = threads;
  config.arbitration = arb;
  config.seed = 99;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: run to completion
  config.timing = timing;
  config.workload = std::shared_ptr<workload::Workload>(
      workload::schedule_workload(sk.stack(),
                                  collectives::stack_kautz_gossip(sk)));
  auto traffic =
      std::make_unique<UniformTraffic>(sk.processor_count(), background);
  WorkloadResult result;
  if (compressed) {
    OpsNetworkSim sim(sk.stack(), routing::compress_stack_kautz_routes(sk),
                      std::move(traffic), config);
    result.metrics = sim.run();
    result.coupler_success = sim.coupler_successes();
  } else {
    OpsNetworkSim sim(sk.stack(), routing::compile_stack_kautz_routes(sk),
                      std::move(traffic), config);
    result.metrics = sim.run();
    result.coupler_success = sim.coupler_successes();
  }
  return result;
}

TEST(AsyncShardedWorkload, BitIdenticalToSerialAsyncAcrossThreads) {
  // THE closed-loop acceptance property: a workload-driven parallel run
  // equals the serial async engine exactly -- same streams, same ids,
  // same per-queue (time, seq) order -- for every worker count.
  for (Arbitration arb : kAllPolicies) {
    for (const double background : {0.0, 0.4}) {
      SCOPED_TRACE(std::string(arbitration_name(arb)) + "/bg=" +
                   std::to_string(background));
      const WorkloadResult want =
          run_gossip(Engine::kAsync, 1, arb, background, {}, false);
      EXPECT_EQ(want.metrics.backlog, 0);
      for (const bool compressed : {false, true}) {
        for (const int threads : kThreadCounts) {
          SCOPED_TRACE(std::string(compressed ? "compressed" : "dense") +
                       "/t=" + std::to_string(threads));
          const WorkloadResult got = run_gossip(
              Engine::kAsyncSharded, threads, arb, background, {}, compressed);
          expect_identical(want.metrics, got.metrics);
          EXPECT_EQ(want.coupler_success, got.coupler_success);
        }
      }
    }
  }
}

TEST(AsyncShardedWorkload, BitIdenticalToSerialAsyncUnderSkew) {
  // Skew stretches the collective's critical path; the parallel engine
  // must still track the serial one exactly, makespan included.
  const TimingConfig timing = constant_timing(256, 3 * kTicksPerSlot, 64);
  const WorkloadResult want = run_gossip(
      Engine::kAsync, 1, Arbitration::kTokenRoundRobin, 0.4, timing, false);
  EXPECT_GT(want.metrics.makespan_slots, 0);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const WorkloadResult got =
        run_gossip(Engine::kAsyncSharded, threads,
                   Arbitration::kTokenRoundRobin, 0.4, timing, false);
    expect_identical(want.metrics, got.metrics);
    EXPECT_EQ(want.coupler_success, got.coupler_success);
  }
}

// ------------------------------------------------ telemetry invariance

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_async_parallel_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

RunMetrics run_sk_telemetry(int threads, const TimingConfig& timing,
                            std::shared_ptr<obs::Telemetry> telemetry) {
  hypergraph::StackKautz sk(4, 3, 2);
  SimConfig config;
  config.warmup_slots = 50;
  config.measure_slots = 400;
  config.seed = 42;
  config.engine = Engine::kAsyncSharded;
  config.threads = threads;
  config.timing = timing;
  config.telemetry = std::move(telemetry);
  OpsNetworkSim sim(
      sk.stack(), routing::compile_stack_kautz_routes(sk),
      std::make_unique<UniformTraffic>(sk.processor_count(), 0.35), config);
  return sim.run();
}

TEST(AsyncShardedTelemetry, SamplingIsThreadCountInvariantToTheByte) {
  // Skewed timing makes the lookahead window several slots wide, so
  // sample boundaries fall mid-window: the per-slot frame/backlog
  // snapshots must still reconstruct the exact serial probe values.
  const TimingConfig timing = constant_timing(200, 3 * kTicksPerSlot, 0);
  ScratchDir scratch("bytes");
  const RunMetrics off = run_sk_telemetry(1, timing, nullptr);

  std::string reference_bytes;
  std::vector<std::int64_t> reference_probes;
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const std::filesystem::path path =
        scratch.path() / ("ts_" + std::to_string(threads) + ".jsonl");
    obs::TelemetryConfig tconfig;
    tconfig.sample_period = 64;
    tconfig.timeseries_path = path.string();
    const auto tel = obs::Telemetry::create(tconfig);
    const RunMetrics on = run_sk_telemetry(threads, timing, tel);
    expect_identical(off, on);

    std::vector<std::int64_t> probes;
    const obs::ProbeRegistry& reg = tel->probes();
    for (obs::ProbeId id = 0; id < reg.probe_count(); ++id) {
      if (reg.kind(id) == obs::ProbeKind::kHistogram) {
        for (std::size_t i = 0; i < reg.bucket_count(id); ++i) {
          probes.push_back(reg.bucket(id, i));
        }
      } else {
        probes.push_back(reg.value(id));
      }
    }
    tel->close();
    const std::string bytes = read_file(path);
    EXPECT_GT(bytes.size(), 0u);
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
      reference_probes = probes;
    } else {
      EXPECT_EQ(bytes, reference_bytes)
          << "timeseries bytes must not depend on the worker count";
      EXPECT_EQ(probes, reference_probes);
    }
  }
}

}  // namespace
}  // namespace otis::sim
